//! Cluster routing: the versioned [`ClusterMap`], jump-consistent-hash
//! object routing, the server-side per-shard state ([`ShardRuntime`]),
//! and the shard-aware [`ClusterClient`].
//!
//! A cluster is N `scaddard` shards, each running its own engine,
//! scaling log, and monitor over a *partition* of the object catalog.
//! Which shard owns which object is a pure function of the
//! [`ClusterMap`]: objects route by jump consistent hash (Lamping &
//! Veach) over the map's sorted shard list, so the map is the only
//! state a client needs — no per-object directory, no rebalancing
//! metadata. Adding a shard (always with a fresh highest id, hence the
//! last jump bucket) moves an expected `1/(n+1)` of objects, the
//! cluster-level analogue of the paper's low-`z_j` reorganization
//! guarantee; removing the *newest* shard moves exactly its own
//! residents, while removing an older shard also reshuffles every
//! later bucket (the map's [`expected_move_fraction`] is the honest
//! analytic cost either way, and the `cluster-migration-delta`
//! invariant holds the orchestrator to it).
//!
//! The map is versioned, and the version doubles as the **cluster
//! epoch**: every topology change bumps it. Shards answer requests for
//! objects they do not own with [`Frame::WrongShard`] carrying their
//! map version — the piggyback that tells a stale client to refresh
//! ([`Frame::FetchMap`]) before retrying. A shard that has been drained
//! out of the serving set answers [`Frame::StaleMap`].
//!
//! During a handoff both the old and the new owner are alive, and the
//! protocol keeps service single-homed per object:
//!
//! 1. The new map (version `v+1`) is installed everywhere with the
//!    moving objects marked `handoff_out` on the source and
//!    `pending_in` on the target.
//! 2. The source keeps serving a `handoff_out` object even though the
//!    map no longer names it; the target answers `WrongShard{owner:
//!    source}` for a `pending_in` object even though the map *does*
//!    name it.
//! 3. Per migrated object the flip is source-first: the source stops
//!    serving (drops `handoff_out` + its engine entry) strictly before
//!    the target starts (drops `pending_in`). At no instant do two
//!    shards serve the same object — the `cluster-epoch-single`
//!    invariant. A request landing in the flip window bounces with
//!    `WrongShard` and succeeds on retry.
//!
//! [`expected_move_fraction`]: ClusterMap::expected_move_fraction

use crate::client::{ClientConfig, ClientError, NetClient};
use crate::wire::Frame;
use scaddar_obs::{SpanGuard, TraceContext, Tracer};
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Jump consistent hash (Lamping & Veach, 2014): maps `key` to a bucket
/// in `0..buckets` with the property that growing from `n` to `n+1`
/// buckets re-routes only an expected `1/(n+1)` of keys — and those
/// keys all land in the *new* bucket.
///
/// O(ln n) expected time, zero state. Panics on `buckets == 0` (an
/// empty cluster routes nothing).
pub fn jump_hash(mut key: u64, buckets: u32) -> u32 {
    assert!(buckets > 0, "jump_hash over zero buckets");
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = ((b.wrapping_add(1) as f64) * ((1i64 << 31) as f64 / ((key >> 33) + 1) as f64)) as i64;
    }
    b as u32
}

/// The versioned shard topology: who serves, where, and since when.
///
/// `version` doubles as the cluster epoch — every topology change
/// (shard add/remove, restart re-address) produces a *new* map with
/// `version + 1`; maps are never mutated in place. Shard entries are
/// `(id, "host:port")`, kept sorted by id; the sorted *index* is the
/// jump-hash bucket, so routing is stable under address changes and
/// only topology changes move objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMap {
    /// Map version — the cluster epoch.
    pub version: u64,
    /// `(shard id, net address)`, strictly ascending by id.
    pub shards: Vec<(u32, String)>,
}

impl ClusterMap {
    /// A version-1 map over `shards` (sorted by id; ids must be
    /// unique).
    pub fn new(shards: Vec<(u32, String)>) -> ClusterMap {
        let mut shards = shards;
        shards.sort_by_key(|(id, _)| *id);
        assert!(
            shards.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate shard ids"
        );
        ClusterMap { version: 1, shards }
    }

    /// Number of serving shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no shard serves (routing is impossible).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard id that owns `object`, by jump hash over the sorted
    /// shard list. `None` on an empty map.
    pub fn route(&self, object: u64) -> Option<u32> {
        if self.shards.is_empty() {
            return None;
        }
        let idx = jump_hash(object, self.shards.len() as u32) as usize;
        Some(self.shards[idx].0)
    }

    /// The net address of `shard`, if it serves.
    pub fn addr_of(&self, shard: u32) -> Option<&str> {
        self.shards
            .iter()
            .find(|(id, _)| *id == shard)
            .map(|(_, addr)| addr.as_str())
    }

    /// Sorted position of `shard` (its jump bucket), if it serves.
    pub fn bucket_of(&self, shard: u32) -> Option<usize> {
        self.shards.iter().position(|(id, _)| *id == shard)
    }

    /// The next map after adding a shard. `id` must exceed every
    /// current id — new shards always take the last jump bucket, which
    /// is what keeps the expected migration delta at `1/(n+1)`.
    pub fn add_shard(&self, id: u32, addr: String) -> ClusterMap {
        assert!(
            self.shards.last().is_none_or(|(last, _)| *last < id),
            "shard ids must grow monotonically (got {id})"
        );
        let mut shards = self.shards.clone();
        shards.push((id, addr));
        ClusterMap {
            version: self.version + 1,
            shards,
        }
    }

    /// The next map after removing `shard`.
    pub fn remove_shard(&self, shard: u32) -> ClusterMap {
        let shards: Vec<_> = self
            .shards
            .iter()
            .filter(|(id, _)| *id != shard)
            .cloned()
            .collect();
        assert!(shards.len() < self.shards.len(), "shard {shard} not in map");
        ClusterMap {
            version: self.version + 1,
            shards,
        }
    }

    /// The next map after a shard restarts on a new address. Routing is
    /// id-based so no objects move, but the version still bumps — every
    /// client must learn the new address through the same refresh path.
    pub fn readdress(&self, shard: u32, addr: String) -> ClusterMap {
        let mut shards = self.shards.clone();
        let entry = shards
            .iter_mut()
            .find(|(id, _)| *id == shard)
            .unwrap_or_else(|| panic!("shard {shard} not in map"));
        entry.1 = addr;
        ClusterMap {
            version: self.version + 1,
            shards,
        }
    }

    /// Expected fraction of objects whose route changes between `self`
    /// and `next` (analytic, not sampled). Adding a shard costs
    /// `1/(n+1)`; removing the shard in sorted bucket `i` of `n`
    /// re-routes everything in buckets `i..n` — `(n-i)/n` — because
    /// every later bucket shifts down by one. Address-only changes cost
    /// nothing.
    pub fn expected_move_fraction(&self, next: &ClusterMap) -> f64 {
        let old: Vec<u32> = self.shards.iter().map(|(id, _)| *id).collect();
        let new: Vec<u32> = next.shards.iter().map(|(id, _)| *id).collect();
        if old == new {
            return 0.0;
        }
        if new.len() == old.len() + 1 && new[..old.len()] == old[..] {
            return 1.0 / new.len() as f64;
        }
        if old.len() == new.len() + 1 {
            if let Some(i) = (0..old.len()).find(|&i| !new.contains(&old[i])) {
                if old.iter().filter(|id| **id != old[i]).eq(new.iter()) {
                    return (old.len() - i) as f64 / old.len() as f64;
                }
            }
        }
        // Arbitrary topology change: no closed form, assume the worst.
        1.0
    }

    /// This map as its wire frame.
    pub fn to_frame(&self) -> Frame {
        Frame::MapUpdate {
            version: self.version,
            shards: self.shards.clone(),
        }
    }
}

/// What a sharded server should do with a request for `object`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// This shard serves the object; the value is the shard-local
    /// object id to hand the engine.
    Serve(u64),
    /// Another shard owns it (or is still authoritative mid-handoff).
    WrongShard {
        /// This shard's map version (the refresh piggyback).
        map_version: u64,
        /// The shard currently authoritative for the object.
        owner: u32,
    },
    /// This shard is retired from the serving set.
    StaleMap {
        /// The last map version this shard held.
        map_version: u64,
    },
    /// This shard owns the route but has no such object.
    UnknownObject,
}

/// Per-shard cluster state a sharded [`Scaddard`](crate::Scaddard)
/// consults on every lookup: the shard's current map, the global→local
/// object-id table, and the handoff gates.
///
/// The orchestrator (`scaddar-cluster`) mutates this from outside the
/// serving threads; every method takes one short mutex hold, so the
/// data plane never blocks behind a migration batch.
#[derive(Debug)]
pub struct ShardRuntime {
    self_id: u32,
    inner: Mutex<ShardView>,
}

#[derive(Debug)]
struct ShardView {
    map: ClusterMap,
    /// Global object id → shard-local engine object id.
    objects: HashMap<u64, u64>,
    /// Objects this shard keeps serving although the map routes them
    /// elsewhere (it is the still-authoritative handoff source).
    handoff_out: HashSet<u64>,
    /// Objects the map routes here but whose listed source shard is
    /// still authoritative (copied, not yet flipped).
    pending_in: HashMap<u64, u32>,
    /// Forwarding pointers for objects this shard handed off: a shard
    /// whose (possibly stale) map still names it owner answers
    /// `WrongShard{owner: target}` instead of "unknown object", so a
    /// client that routed here by the same stale map still converges.
    /// Pruned on every newer map install (once the map itself routes
    /// the object elsewhere the pointer is redundant).
    departed: HashMap<u64, u32>,
    /// True once the shard has been drained out of the serving set.
    retired: bool,
}

impl ShardRuntime {
    /// Fresh runtime for shard `self_id` holding `map`.
    pub fn new(self_id: u32, map: ClusterMap) -> ShardRuntime {
        ShardRuntime {
            self_id,
            inner: Mutex::new(ShardView {
                map,
                objects: HashMap::new(),
                handoff_out: HashSet::new(),
                pending_in: HashMap::new(),
                departed: HashMap::new(),
                retired: false,
            }),
        }
    }

    /// This shard's id.
    pub fn self_id(&self) -> u32 {
        self.self_id
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardView> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Routes one global object id. The serving threads call this for
    /// every `Locate`/`LocateBatch` before touching the engine.
    pub fn decide(&self, object: u64) -> RouteDecision {
        let v = self.lock();
        if v.retired {
            return RouteDecision::StaleMap {
                map_version: v.map.version,
            };
        }
        let Some(owner) = v.map.route(object) else {
            return RouteDecision::StaleMap {
                map_version: v.map.version,
            };
        };
        if owner == self.self_id {
            if let Some(&source) = v.pending_in.get(&object) {
                // Mid-handoff: the listed source still serves.
                return RouteDecision::WrongShard {
                    map_version: v.map.version,
                    owner: source,
                };
            }
            match v.objects.get(&object) {
                Some(&local) => RouteDecision::Serve(local),
                // A stale map can name this shard owner of an object it
                // already handed off — forward to where it went.
                None => match v.departed.get(&object) {
                    Some(&target) => RouteDecision::WrongShard {
                        map_version: v.map.version,
                        owner: target,
                    },
                    None => RouteDecision::UnknownObject,
                },
            }
        } else if v.handoff_out.contains(&object) {
            match v.objects.get(&object) {
                Some(&local) => RouteDecision::Serve(local),
                None => RouteDecision::UnknownObject,
            }
        } else {
            RouteDecision::WrongShard {
                map_version: v.map.version,
                owner,
            }
        }
    }

    /// A clone of the current map (what `FetchMap` answers with).
    pub fn map(&self) -> ClusterMap {
        self.lock().map.clone()
    }

    /// Current map version.
    pub fn map_version(&self) -> u64 {
        self.lock().map.version
    }

    /// Installs `map` if it is newer than the held one; returns whether
    /// it was adopted (a partitioned shard simply never receives the
    /// call and keeps routing by its stale map).
    pub fn install_map(&self, map: ClusterMap) -> bool {
        let mut v = self.lock();
        if map.version > v.map.version {
            v.map = map;
            // Forwarding pointers are only needed while the map still
            // (wrongly) routes the object here.
            let departed = std::mem::take(&mut v.departed);
            v.departed = departed
                .into_iter()
                .filter(|(object, _)| v.map.route(*object) == Some(self.self_id))
                .collect();
            true
        } else {
            false
        }
    }

    /// Registers a global→local object binding (ingest or migration
    /// copy-in).
    pub fn register_object(&self, object: u64, local: u64) {
        let mut v = self.lock();
        v.departed.remove(&object);
        v.objects.insert(object, local);
    }

    /// Marks `objects` as still-served-here through the handoff,
    /// although the (new) map routes them elsewhere.
    pub fn begin_handoff_out(&self, objects: impl IntoIterator<Item = u64>) {
        let mut v = self.lock();
        v.handoff_out.extend(objects);
    }

    /// Marks incoming `objects` (with their still-authoritative source
    /// shard) as not-yet-served here.
    pub fn begin_pending_in(&self, objects: impl IntoIterator<Item = (u64, u32)>) {
        let mut v = self.lock();
        v.pending_in.extend(objects);
    }

    /// Source side of the per-object flip: stop serving `object`,
    /// keeping a forwarding pointer to `target` for clients (or this
    /// shard's own stale map) that still route here. Returns the local
    /// engine id to evict, if the object was resident.
    pub fn complete_handoff_out(&self, object: u64, target: u32) -> Option<u64> {
        let mut v = self.lock();
        v.handoff_out.remove(&object);
        v.departed.insert(object, target);
        v.objects.remove(&object)
    }

    /// Target side of the flip: start serving `object`. Must run after
    /// [`complete_handoff_out`](Self::complete_handoff_out) on the
    /// source — the ordering is the `cluster-epoch-single` guarantee.
    pub fn activate_pending(&self, object: u64) {
        self.lock().pending_in.remove(&object);
    }

    /// Marks the shard drained: every future request answers
    /// `StaleMap`.
    pub fn retire(&self) {
        self.lock().retired = true;
    }

    /// True once [`retire`](Self::retire) ran.
    pub fn is_retired(&self) -> bool {
        self.lock().retired
    }

    /// `(resident objects, handoff_out, pending_in)` counts, for
    /// status displays and invariant probes.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        let v = self.lock();
        (v.objects.len(), v.handoff_out.len(), v.pending_in.len())
    }

    /// Sorted global object ids resident on this shard.
    pub fn resident_objects(&self) -> Vec<u64> {
        let v = self.lock();
        let mut ids: Vec<u64> = v.objects.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The shard-local id bound to global `object`, if resident.
    pub fn local_id(&self, object: u64) -> Option<u64> {
        self.lock().objects.get(&object).copied()
    }
}

/// Cumulative [`ClusterClient`] routing counters — the load harness and
/// the CI gate read these to assert "zero routing errors".
#[derive(Debug, Default)]
pub struct ClusterClientStats {
    /// Requests answered by the first shard tried.
    pub direct_hits: AtomicU64,
    /// `WrongShard` bounces followed (each one retried at the named
    /// owner).
    pub wrong_shard_bounces: AtomicU64,
    /// `StaleMap` answers absorbed (each one forced a map refresh).
    pub stale_map_hits: AtomicU64,
    /// Map refreshes performed (fetches that adopted a newer version).
    pub map_refreshes: AtomicU64,
    /// Requests that exhausted their routing retries — the routing
    /// errors the cluster-smoke gate requires to be zero.
    pub routing_errors: AtomicU64,
}

impl ClusterClientStats {
    fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.direct_hits.load(Ordering::Relaxed),
            self.wrong_shard_bounces.load(Ordering::Relaxed),
            self.stale_map_hits.load(Ordering::Relaxed),
            self.map_refreshes.load(Ordering::Relaxed),
            self.routing_errors.load(Ordering::Relaxed),
        )
    }
}

/// One successful cluster lookup, tagged with both epochs that scope
/// it: the shard's scaling epoch and the cluster map version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterAnswer {
    /// Shard-local scaling epoch the lookup was served at.
    pub epoch: u64,
    /// Disk count on the answering shard at that epoch.
    pub disks: u32,
    /// The block's physical disk on the answering shard.
    pub disk: u64,
    /// The shard that answered.
    pub shard: u32,
    /// The client's map version when the answer landed.
    pub map_version: u64,
}

/// A batch analogue of [`ClusterAnswer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterBatchAnswer {
    /// Shard-local scaling epoch the whole batch was served at.
    pub epoch: u64,
    /// Disk count on the answering shard at that epoch.
    pub disks: u32,
    /// Physical disk per requested block, in request order.
    pub locations: Vec<u64>,
    /// The shard that answered.
    pub shard: u32,
}

/// Shard-aware client: routes per object by the cluster map, fans
/// batches out per shard, and chases `WrongShard`/`StaleMap` answers by
/// refreshing the map and retrying.
#[derive(Debug)]
pub struct ClusterClient {
    config: ClientConfig,
    /// Routing retries per request (each bounce or refresh consumes
    /// one).
    max_hops: u32,
    state: Mutex<ClientMapState>,
    /// Routing counters (monotone; safe to read concurrently).
    pub stats: ClusterClientStats,
    tracing: Option<ClientTracing>,
}

/// Client-side distributed-trace state: the flight recorder the root
/// spans land in, plus the deterministic id stream. Trace ids are
/// `TraceContext::root(seed, sequence)` draws, so two runs with the
/// same seed issue identical traces — the harness's byte-identity
/// invariant leans on this.
#[derive(Debug)]
struct ClientTracing {
    tracer: Tracer,
    seed: u64,
    sequence: AtomicU64,
}

#[derive(Debug)]
struct ClientMapState {
    map: ClusterMap,
    clients: HashMap<u32, NetClient>,
}

impl ClusterClient {
    /// Connects by fetching the cluster map from the first responsive
    /// seed address.
    pub fn connect(seeds: &[SocketAddr]) -> Result<ClusterClient, ClientError> {
        ClusterClient::with_config(seeds, ClientConfig::default(), 8)
    }

    /// Connects with explicit per-shard client tuning and a routing
    /// retry budget.
    pub fn with_config(
        seeds: &[SocketAddr],
        config: ClientConfig,
        max_hops: u32,
    ) -> Result<ClusterClient, ClientError> {
        let mut last_err: Option<ClientError> = None;
        for seed in seeds {
            let probe = NetClient::with_config(*seed, config.clone());
            match fetch_map(&probe, 0) {
                Ok(map) => {
                    return Ok(ClusterClient {
                        config,
                        max_hops,
                        state: Mutex::new(ClientMapState {
                            map,
                            clients: HashMap::new(),
                        }),
                        stats: ClusterClientStats::default(),
                        tracing: None,
                    })
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(ClientError::DeadlineExceeded))
    }

    /// Turns on distributed tracing: every subsequent
    /// [`locate`](Self::locate)/[`locate_batch`](Self::locate_batch)
    /// opens a root span in `tracer`, and every hop it sends carries
    /// the trace context in the request trailer, so the shards'
    /// continuation spans stitch into one tree with this client's root.
    /// Root ids are deterministic draws from `seed`.
    pub fn enable_tracing(&mut self, tracer: Tracer, seed: u64) {
        self.tracing = Some(ClientTracing {
            tracer,
            seed,
            sequence: AtomicU64::new(0),
        });
    }

    /// The client-side tracer, when tracing is on.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracing.as_ref().map(|t| &t.tracer)
    }

    /// Opens the root span for one cluster request; `None` when
    /// tracing is off. The returned context is what every hop of the
    /// request sends on the wire.
    fn open_root(&self, name: &str) -> Option<(TraceContext, SpanGuard)> {
        let t = self.tracing.as_ref()?;
        let sequence = t.sequence.fetch_add(1, Ordering::Relaxed);
        let ctx = TraceContext::root(t.seed, sequence);
        Some((ctx, t.tracer.span_in(name, &ctx, 0)))
    }

    /// The client's current map version.
    pub fn map_version(&self) -> u64 {
        self.lock_state().map.version
    }

    /// A clone of the client's current map.
    pub fn map(&self) -> ClusterMap {
        self.lock_state().map.clone()
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, ClientMapState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adopts `map` if newer; prunes clients for departed shards.
    fn adopt(&self, map: ClusterMap) -> bool {
        let mut state = self.lock_state();
        if map.version <= state.map.version {
            return false;
        }
        state
            .clients
            .retain(|id, c| map.addr_of(*id).and_then(|a| a.parse().ok()) == Some(c.addr()));
        state.map = map;
        self.stats.map_refreshes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Fetches the map from every known shard until one answers with a
    /// newer version than we hold; adopts it.
    fn refresh(&self) -> Result<(), ClientError> {
        let (have, candidates): (u64, Vec<(u32, String)>) = {
            let state = self.lock_state();
            (state.map.version, state.map.shards.clone())
        };
        let mut last_err: Option<ClientError> = None;
        for (shard, addr) in candidates {
            let Ok(sock) = addr.parse::<SocketAddr>() else {
                continue;
            };
            let _ = shard;
            let probe = NetClient::with_config(sock, self.config.clone());
            match fetch_map(&probe, have) {
                Ok(map) => {
                    if self.adopt(map) {
                        return Ok(());
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        match last_err {
            // Every shard answered but none had a newer map: the view
            // is as fresh as the cluster's.
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Runs `op` against the client for `shard`, dialing on demand.
    fn with_shard<T>(
        &self,
        shard: u32,
        op: impl FnOnce(&NetClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let client = {
            let mut state = self.lock_state();
            let Some(addr) = state.map.addr_of(shard) else {
                return Err(ClientError::UnexpectedResponse { got: "wrong-shard" });
            };
            let sock: SocketAddr = addr.parse().map_err(|_| {
                ClientError::Io(std::io::Error::new(
                    ErrorKind::InvalidInput,
                    format!("bad shard address `{addr}`"),
                ))
            })?;
            match state.clients.get(&shard) {
                Some(existing) if existing.addr() == sock => {}
                _ => {
                    let fresh = NetClient::with_config(sock, self.config.clone());
                    state.clients.insert(shard, fresh);
                }
            }
            // NetClient is internally synchronized but we cannot hand a
            // reference out of the mutex; requests go through a
            // per-call clone of the handle state instead. Rebuilding a
            // client is cheap (the pool is inside), so take it out,
            // call, put it back.
            state.clients.remove(&shard).expect("just inserted")
        };
        let result = op(&client);
        let mut state = self.lock_state();
        if state.map.addr_of(shard).and_then(|a| a.parse().ok()) == Some(client.addr()) {
            state.clients.insert(shard, client);
        }
        result
    }

    /// Locates one block of global object `object`, chasing routing
    /// redirects up to the hop budget.
    pub fn locate(&self, object: u64, block: u64) -> Result<ClusterAnswer, ClientError> {
        let traced = self.open_root("cluster.locate");
        let ctx = traced.as_ref().map(|(ctx, _)| *ctx);
        let mut span = traced.map(|(_, span)| span);
        if let Some(span) = span.as_mut() {
            span.event("object", object);
        }
        let mut target: Option<u32> = None;
        let mut last_err: Option<ClientError> = None;
        for hop in 0..self.max_hops {
            let (shard, version) = {
                let state = self.lock_state();
                let Some(owner) = target.take().or_else(|| state.map.route(object)) else {
                    return Err(ClientError::UnexpectedResponse { got: "stale-map" });
                };
                (owner, state.map.version)
            };
            let outcome = self.with_shard(shard, |c| {
                c.request_traced(&Frame::Locate { object, block }, ctx.as_ref())
            });
            match outcome {
                Ok(Frame::Located { epoch, disks, disk }) => {
                    if hop == 0 {
                        self.stats.direct_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(span) = span.as_mut() {
                        span.event("served-by", shard);
                        span.event("hops", hop + 1);
                    }
                    return Ok(ClusterAnswer {
                        epoch,
                        disks,
                        disk,
                        shard,
                        map_version: version,
                    });
                }
                Ok(Frame::WrongShard { map_version, owner }) => {
                    self.stats
                        .wrong_shard_bounces
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(span) = span.as_mut() {
                        span.event("wrong-shard", format!("{shard}->{owner}"));
                    }
                    if map_version > version {
                        let _ = self.refresh();
                    }
                    target = Some(owner);
                }
                Ok(Frame::StaleMap { .. }) => {
                    self.stats.stale_map_hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(span) = span.as_mut() {
                        span.event("stale-map", shard);
                    }
                    self.refresh()?;
                }
                Ok(other) => {
                    return Err(ClientError::UnexpectedResponse {
                        got: other.endpoint(),
                    })
                }
                Err(e @ ClientError::Remote { .. }) => return Err(e),
                Err(e) => {
                    // Shard unreachable (killed/restarting): a newer map
                    // may re-address it.
                    if let Some(span) = span.as_mut() {
                        span.event("unreachable", shard);
                    }
                    last_err = Some(e);
                    let _ = self.refresh();
                }
            }
        }
        self.stats.routing_errors.fetch_add(1, Ordering::Relaxed);
        if let Some(span) = span.as_mut() {
            span.event("routing-error", self.max_hops);
        }
        Err(last_err.unwrap_or(ClientError::DeadlineExceeded))
    }

    /// Locates a batch of blocks of one object (single-shard, single
    /// epoch), with the same redirect chasing as [`locate`](Self::locate).
    pub fn locate_batch(
        &self,
        object: u64,
        blocks: &[u64],
    ) -> Result<ClusterBatchAnswer, ClientError> {
        let traced = self.open_root("cluster.locate-batch");
        let ctx = traced.as_ref().map(|(ctx, _)| *ctx);
        let mut span = traced.map(|(_, span)| span);
        if let Some(span) = span.as_mut() {
            span.event("object", object);
            span.event("blocks", blocks.len());
        }
        let mut target: Option<u32> = None;
        let mut last_err: Option<ClientError> = None;
        for _hop in 0..self.max_hops {
            let (shard, version) = {
                let state = self.lock_state();
                let Some(owner) = target.take().or_else(|| state.map.route(object)) else {
                    return Err(ClientError::UnexpectedResponse { got: "stale-map" });
                };
                (owner, state.map.version)
            };
            let outcome = self.with_shard(shard, |c| {
                c.request_traced(
                    &Frame::LocateBatch {
                        object,
                        blocks: blocks.to_vec(),
                    },
                    ctx.as_ref(),
                )
            });
            match outcome {
                Ok(Frame::BatchLocated {
                    epoch,
                    disks,
                    locations,
                }) => {
                    if let Some(span) = span.as_mut() {
                        span.event("served-by", shard);
                    }
                    return Ok(ClusterBatchAnswer {
                        epoch,
                        disks,
                        locations,
                        shard,
                    });
                }
                Ok(Frame::WrongShard { map_version, owner }) => {
                    self.stats
                        .wrong_shard_bounces
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(span) = span.as_mut() {
                        span.event("wrong-shard", format!("{shard}->{owner}"));
                    }
                    if map_version > version {
                        let _ = self.refresh();
                    }
                    target = Some(owner);
                }
                Ok(Frame::StaleMap { .. }) => {
                    self.stats.stale_map_hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(span) = span.as_mut() {
                        span.event("stale-map", shard);
                    }
                    self.refresh()?;
                }
                Ok(other) => {
                    return Err(ClientError::UnexpectedResponse {
                        got: other.endpoint(),
                    })
                }
                Err(e @ ClientError::Remote { .. }) => return Err(e),
                Err(e) => {
                    last_err = Some(e);
                    let _ = self.refresh();
                }
            }
        }
        self.stats.routing_errors.fetch_add(1, Ordering::Relaxed);
        Err(last_err.unwrap_or(ClientError::DeadlineExceeded))
    }

    /// Fans a multi-object batch out per shard: requests are grouped by
    /// owner, each group pipelined to its shard in one write, and
    /// stragglers that bounce (`WrongShard` mid-handoff) are re-routed
    /// individually. Answers come back in input order.
    pub fn locate_many(
        &self,
        items: &[(u64, Vec<u64>)],
    ) -> Result<Vec<ClusterBatchAnswer>, ClientError> {
        let map = self.map();
        let mut groups: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, (object, _)) in items.iter().enumerate() {
            let Some(owner) = map.route(*object) else {
                return Err(ClientError::UnexpectedResponse { got: "stale-map" });
            };
            groups.entry(owner).or_default().push(i);
        }
        let mut answers: Vec<Option<ClusterBatchAnswer>> = vec![None; items.len()];
        for (shard, indexes) in groups {
            let requests: Vec<Frame> = indexes
                .iter()
                .map(|&i| Frame::LocateBatch {
                    object: items[i].0,
                    blocks: items[i].1.clone(),
                })
                .collect();
            let responses = self.with_shard(shard, |c| c.pipeline(&requests));
            match responses {
                Ok(responses) => {
                    for (&i, response) in indexes.iter().zip(responses) {
                        match response {
                            Frame::BatchLocated {
                                epoch,
                                disks,
                                locations,
                            } => {
                                answers[i] = Some(ClusterBatchAnswer {
                                    epoch,
                                    disks,
                                    locations,
                                    shard,
                                })
                            }
                            // Bounced mid-handoff (or an error): retry
                            // this object on the slow path.
                            _ => answers[i] = Some(self.locate_batch(items[i].0, &items[i].1)?),
                        }
                    }
                }
                Err(_) => {
                    // Whole shard unreachable: slow-path every member.
                    for &i in &indexes {
                        answers[i] = Some(self.locate_batch(items[i].0, &items[i].1)?);
                    }
                }
            }
        }
        Ok(answers.into_iter().map(|a| a.expect("filled")).collect())
    }

    /// `(direct, bounces, stale, refreshes, routing_errors)` counters.
    pub fn stats_snapshot(&self) -> (u64, u64, u64, u64, u64) {
        self.stats.snapshot()
    }
}

use std::io::ErrorKind;

/// Typed `FetchMap` round-trip against one shard.
pub fn fetch_map(client: &NetClient, have_version: u64) -> Result<ClusterMap, ClientError> {
    match client.request(&Frame::FetchMap { have_version })? {
        Frame::MapUpdate { version, shards } => Ok(ClusterMap { version, shards }),
        other => Err(ClientError::UnexpectedResponse {
            got: other.endpoint(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_hash_matches_reference_properties() {
        // Monotone bucket growth: a key's bucket under n+1 buckets is
        // either unchanged or exactly n (the new bucket).
        for key in 0..10_000u64 {
            for n in 1..20u32 {
                let before = jump_hash(key, n);
                let after = jump_hash(key, n + 1);
                assert!(
                    after == before || after == n,
                    "key {key}: {before} -> {after} under {n}->{} buckets",
                    n + 1
                );
            }
        }
    }

    #[test]
    fn jump_hash_is_roughly_uniform() {
        const KEYS: u64 = 60_000;
        const BUCKETS: u32 = 6;
        let mut counts = [0u64; BUCKETS as usize];
        for key in 0..KEYS {
            counts[jump_hash(key, BUCKETS) as usize] += 1;
        }
        let expect = KEYS as f64 / BUCKETS as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {b}: {c} vs {expect} ({dev:.3})");
        }
    }

    #[test]
    fn map_routing_and_evolution() {
        let map = ClusterMap::new(vec![
            (0, "a:1".into()),
            (1, "b:1".into()),
            (2, "c:1".into()),
        ]);
        assert_eq!(map.version, 1);
        assert_eq!(map.len(), 3);
        for object in 0..1000u64 {
            let owner = map.route(object).unwrap();
            assert!(map.addr_of(owner).is_some());
        }
        let grown = map.add_shard(3, "d:1".into());
        assert_eq!(grown.version, 2);
        // Adding a shard only moves objects INTO the new shard.
        let mut moved = 0u64;
        for object in 0..10_000u64 {
            let before = map.route(object).unwrap();
            let after = grown.route(object).unwrap();
            if before != after {
                assert_eq!(after, 3);
                moved += 1;
            }
        }
        let frac = moved as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "moved {frac}");
        assert!((map.expected_move_fraction(&grown) - 0.25).abs() < 1e-12);

        // Removing the newest shard reverses exactly that delta.
        let shrunk = grown.remove_shard(3);
        assert_eq!(shrunk.version, 3);
        for object in 0..10_000u64 {
            assert_eq!(shrunk.route(object), map.route(object));
        }
        assert!((grown.expected_move_fraction(&shrunk) - 0.25).abs() < 1e-12);

        // Removing a middle shard re-routes every later bucket.
        let mid = map.remove_shard(1);
        let expect = map.expected_move_fraction(&mid);
        assert!((expect - 2.0 / 3.0).abs() < 1e-12);
        let moved = (0..10_000u64)
            .filter(|&o| map.route(o) != mid.route(o))
            .count();
        assert!(
            (moved as f64 / 10_000.0) <= expect + 0.03,
            "moved {moved} expected <= {expect}"
        );

        let readdr = map.readdress(1, "b:2".into());
        assert_eq!(readdr.version, 2);
        assert_eq!(map.expected_move_fraction(&readdr), 0.0);
        for object in 0..1000u64 {
            assert_eq!(readdr.route(object), map.route(object));
        }
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn reusing_a_shard_id_panics() {
        let map = ClusterMap::new(vec![(0, "a:1".into()), (5, "b:1".into())]);
        let _ = map.add_shard(3, "c:1".into());
    }

    #[test]
    fn shard_runtime_decisions_cover_the_handoff_protocol() {
        let map = ClusterMap::new(vec![(0, "a:1".into()), (1, "b:1".into())]);
        // Find an object each shard owns.
        let owned_by_0 = (0..).find(|&o| map.route(o) == Some(0)).unwrap();
        let owned_by_1 = (0..).find(|&o| map.route(o) == Some(1)).unwrap();

        let shard0 = ShardRuntime::new(0, map.clone());
        shard0.register_object(owned_by_0, 7);
        assert_eq!(shard0.decide(owned_by_0), RouteDecision::Serve(7));
        assert_eq!(
            shard0.decide(owned_by_1),
            RouteDecision::WrongShard {
                map_version: 1,
                owner: 1
            }
        );

        // Owned-but-unknown: typed as UnknownObject, not a misroute.
        let other_owned_by_0 = (owned_by_0 + 1..)
            .find(|&o| map.route(o) == Some(0))
            .unwrap();
        assert_eq!(
            shard0.decide(other_owned_by_0),
            RouteDecision::UnknownObject
        );

        // Handoff: a new shard 2 takes some of shard 0's objects.
        let grown = map.add_shard(2, "c:1".into());
        let moving = (0..5_000u64)
            .find(|&o| map.route(o) == Some(0) && grown.route(o) == Some(2))
            .unwrap();
        shard0.register_object(moving, 9);
        let shard2 = ShardRuntime::new(2, map.clone());
        assert!(shard0.install_map(grown.clone()));
        assert!(shard2.install_map(grown.clone()));
        assert!(!shard2.install_map(map.clone()), "older maps are refused");
        shard0.begin_handoff_out([moving]);
        shard2.register_object(moving, 0);
        shard2.begin_pending_in([(moving, 0u32)]);

        // Mid-handoff: source serves, target redirects to source.
        assert_eq!(shard0.decide(moving), RouteDecision::Serve(9));
        assert_eq!(
            shard2.decide(moving),
            RouteDecision::WrongShard {
                map_version: 2,
                owner: 0
            }
        );

        // Flip, source first.
        assert_eq!(shard0.complete_handoff_out(moving, 2), Some(9));
        assert_eq!(
            shard0.decide(moving),
            RouteDecision::WrongShard {
                map_version: 2,
                owner: 2
            }
        );
        shard2.activate_pending(moving);
        assert_eq!(shard2.decide(moving), RouteDecision::Serve(0));

        // A source whose map never advanced (partitioned through the
        // handoff) must forward via its departure pointer, not claim
        // the object is unknown.
        let stale_source = ShardRuntime::new(0, map.clone());
        stale_source.register_object(moving, 9);
        stale_source.begin_handoff_out([moving]);
        assert_eq!(stale_source.complete_handoff_out(moving, 2), Some(9));
        assert_eq!(
            stale_source.decide(moving),
            RouteDecision::WrongShard {
                map_version: map.version,
                owner: 2
            }
        );
        // Once a newer map routes the object elsewhere the pointer is
        // pruned but the answer stays WrongShard (now from the map).
        assert!(stale_source.install_map(grown.clone()));
        assert_eq!(
            stale_source.decide(moving),
            RouteDecision::WrongShard {
                map_version: grown.version,
                owner: 2
            }
        );

        // Retirement: everything answers StaleMap.
        shard0.retire();
        assert_eq!(
            shard0.decide(owned_by_0),
            RouteDecision::StaleMap { map_version: 2 }
        );
    }

    #[test]
    fn expected_move_fraction_worst_cases() {
        let a = ClusterMap::new(vec![(0, "a:1".into()), (1, "b:1".into())]);
        let b = ClusterMap::new(vec![(5, "x:1".into())]);
        assert_eq!(a.expected_move_fraction(&b), 1.0);
        assert_eq!(a.expected_move_fraction(&a), 0.0);
        // Removing the first bucket of n re-routes everything.
        let removed = a.remove_shard(0);
        assert_eq!(a.expected_move_fraction(&removed), 1.0);
    }
}
