//! The `scaddard` client: pooled connections, pipelining, and
//! deadline-aware retry.
//!
//! A [`NetClient`] owns a small pool of TCP connections to one server.
//! Each request checks a connection out, uses it, and returns it on
//! success; failed connections are dropped, never pooled. A pooled
//! connection that has sat idle past
//! [`idle_probe_after`](ClientConfig::idle_probe_after) is
//! **keepalive-probed** (one `Ping`/`Pong` round-trip) at checkout;
//! probe failures silently discard the stale connection and fall
//! through to the next pooled one or a fresh dial — so even
//! *non-retryable* mutations never land on a connection the server
//! already closed. Retry policy:
//!
//! * **Read-only requests** (`Locate`, `LocateBatch`, `Health`,
//!   `Stats`, `Ping`) are idempotent and retry on any I/O failure on a
//!   *fresh* connection, as long as the request deadline has not
//!   passed — the classic stale-pooled-connection recovery.
//! * **Mutating requests** (`Scale`, `Tick`) retry only when the
//!   failure happened before any request byte was written (a dead
//!   pooled connection detected at write time, or a connect failure).
//!   Once bytes are on the wire the server may have committed, so the
//!   error surfaces to the caller instead of risking a double-apply.
//!
//! [`NetClient::pipeline`] writes a whole slice of requests in one
//! buffer and then reads the responses back in order — the throughput
//! path the load generator uses. Pipelines are never retried.

use crate::wire::{decode_frame_limited, Frame, FrameError, StatsFormat, HARD_MAX_FRAME_LEN};
use scaddar_core::ScalingOp;
use scaddar_obs::{ProfileSnapshot, RegistrySnapshot, TraceContext};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning knobs for [`NetClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// End-to-end deadline per request (write + read, all retries).
    pub request_timeout: Duration,
    /// Idle connections kept for reuse.
    pub max_pool: usize,
    /// Extra attempts after the first (see the module retry policy).
    pub retries: u32,
    /// Largest accepted response frame.
    pub max_frame_len: u32,
    /// Pooled connections idle for at least this long are `Ping`-probed
    /// before reuse (dead ones are discarded, not handed to requests).
    /// `None` disables keepalive probing.
    pub idle_probe_after: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(5),
            max_pool: 4,
            retries: 2,
            max_frame_len: HARD_MAX_FRAME_LEN,
            idle_probe_after: Some(Duration::from_secs(10)),
        }
    }
}

/// Why a request failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (after any permitted retries).
    Io(std::io::Error),
    /// The response failed to decode.
    Frame(FrameError),
    /// The server answered with a typed `Error` frame.
    Remote {
        /// The server's error class.
        code: crate::wire::ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The request deadline passed before a response arrived.
    DeadlineExceeded,
    /// The server answered with a well-formed frame of the wrong type.
    UnexpectedResponse {
        /// Endpoint of the frame that arrived.
        got: &'static str,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Frame(e) => write!(f, "protocol: {e}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error [{}]: {message}", code.label())
            }
            ClientError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ClientError::UnexpectedResponse { got } => {
                write!(f, "unexpected response frame `{got}`")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One pooled connection with its partial-read buffer.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Bytes read past the last decoded frame (response pipelining).
    buf: Vec<u8>,
    /// When the connection went back into the pool (or was dialed).
    idle_since: Instant,
}

/// A pooled, pipelining client for one `scaddard` server.
#[derive(Debug)]
pub struct NetClient {
    addr: SocketAddr,
    config: ClientConfig,
    pool: Mutex<Vec<Conn>>,
}

impl NetClient {
    /// A client for the server at `addr` with default tuning.
    pub fn connect(addr: SocketAddr) -> NetClient {
        NetClient::with_config(addr, ClientConfig::default())
    }

    /// A client with explicit tuning.
    pub fn with_config(addr: SocketAddr, config: ClientConfig) -> NetClient {
        NetClient {
            addr,
            config,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn checkout(&self, deadline: Instant) -> Result<Conn, ClientError> {
        loop {
            let Some(mut conn) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop() else {
                break;
            };
            let needs_probe = self
                .config
                .idle_probe_after
                .is_some_and(|after| conn.idle_since.elapsed() >= after);
            if !needs_probe || self.probe(&mut conn, deadline) {
                return Ok(conn);
            }
            // Stale pooled connection: drop it and try the next.
        }
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(ClientError::DeadlineExceeded)?;
        let stream =
            TcpStream::connect_timeout(&self.addr, self.config.connect_timeout.min(remaining))?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            buf: Vec::new(),
            idle_since: Instant::now(),
        })
    }

    /// Keepalive probe: one `Ping` round-trip. `false` means the
    /// connection is dead (server closed it, half-open, or desynced)
    /// and must be discarded.
    fn probe(&self, conn: &mut Conn, deadline: Instant) -> bool {
        conn.buf.is_empty()
            && conn.stream.write_all(&Frame::Ping.to_bytes()).is_ok()
            && matches!(self.read_frame(conn, deadline), Ok(Frame::Pong { .. }))
    }

    fn checkin(&self, mut conn: Conn) {
        conn.idle_since = Instant::now();
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < self.config.max_pool {
            pool.push(conn);
        }
    }

    /// Reads one frame from `conn`, respecting `deadline`.
    fn read_frame(&self, conn: &mut Conn, deadline: Instant) -> Result<Frame, ClientError> {
        let mut chunk = [0u8; 4096];
        loop {
            match decode_frame_limited(&conn.buf, self.config.max_frame_len) {
                Ok((frame, used)) => {
                    conn.buf.drain(..used);
                    return Ok(frame);
                }
                Err(FrameError::Incomplete { .. }) => {}
                Err(e) => return Err(e.into()),
            }
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(ClientError::DeadlineExceeded)?;
            conn.stream.set_read_timeout(Some(remaining))?;
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(ClientError::DeadlineExceeded)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Sends one request and returns the server's response frame
    /// (`Error` frames surface as [`ClientError::Remote`]).
    pub fn request(&self, request: &Frame) -> Result<Frame, ClientError> {
        self.request_traced(request, None)
    }

    /// [`request`](Self::request) carrying a distributed-trace context
    /// in the frame's trailer, so the server can continue the trace in
    /// its own flight recorder. Retries re-send the same context (same
    /// logical hop, so the same span identity).
    pub fn request_traced(
        &self,
        request: &Frame,
        ctx: Option<&TraceContext>,
    ) -> Result<Frame, ClientError> {
        let deadline = Instant::now() + self.config.request_timeout;
        // Mutations may only be retried while nothing has hit the wire.
        let idempotent = !matches!(request, Frame::Scale { .. } | Frame::Tick { .. });
        let bytes = match ctx {
            Some(ctx) => request.to_bytes_traced(ctx),
            None => request.to_bytes(),
        };
        let mut last_err: Option<ClientError> = None;
        for _attempt in 0..=self.config.retries {
            if Instant::now() >= deadline {
                return Err(last_err.unwrap_or(ClientError::DeadlineExceeded));
            }
            let mut conn = match self.checkout(deadline) {
                Ok(conn) => conn,
                Err(e @ ClientError::DeadlineExceeded) => {
                    return Err(last_err.unwrap_or(e));
                }
                Err(e) => {
                    // Connect failures are always retryable.
                    last_err = Some(e);
                    continue;
                }
            };
            // A pooled connection must not answer before we ask; stale
            // bytes would desync request/response pairing.
            if !conn.buf.is_empty() {
                last_err = Some(ClientError::Frame(FrameError::TrailingBytes {
                    frame: "pool",
                    extra: conn.buf.len(),
                }));
                continue; // drop the poisoned connection
            }
            if let Err(e) = conn.stream.write_all(&bytes) {
                // Write failed: a stale pooled connection. The server
                // may or may not have seen bytes; only idempotent
                // requests (or an instantly-failed write on a fresh
                // dial) retry.
                last_err = Some(ClientError::Io(e));
                if idempotent {
                    continue;
                }
                return Err(last_err.expect("just set"));
            }
            match self.read_frame(&mut conn, deadline) {
                Ok(Frame::Error { code, message }) => {
                    self.checkin(conn);
                    return Err(ClientError::Remote { code, message });
                }
                Ok(frame) => {
                    self.checkin(conn);
                    return Ok(frame);
                }
                Err(ClientError::DeadlineExceeded) => {
                    return Err(ClientError::DeadlineExceeded);
                }
                Err(e) => {
                    last_err = Some(e);
                    if idempotent {
                        continue;
                    }
                    return Err(last_err.expect("just set"));
                }
            }
        }
        Err(last_err.unwrap_or(ClientError::DeadlineExceeded))
    }

    /// Writes every request in one buffer on one connection, then reads
    /// the responses back in order. `Error` frames come back in-band
    /// (position preserved) rather than aborting the pipeline.
    /// Pipelines are never retried: on an I/O error partway, the caller
    /// cannot know which requests executed.
    pub fn pipeline(&self, requests: &[Frame]) -> Result<Vec<Frame>, ClientError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let deadline = Instant::now() + self.config.request_timeout;
        let mut conn = self.checkout(deadline)?;
        if !conn.buf.is_empty() {
            return Err(ClientError::Frame(FrameError::TrailingBytes {
                frame: "pool",
                extra: conn.buf.len(),
            }));
        }
        let mut buf = Vec::with_capacity(requests.len() * 32);
        for r in requests {
            r.encode(&mut buf);
        }
        conn.stream.write_all(&buf)?;
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            responses.push(self.read_frame(&mut conn, deadline)?);
        }
        self.checkin(conn);
        Ok(responses)
    }

    // ---- typed convenience wrappers ----

    fn unexpected(frame: Frame) -> ClientError {
        ClientError::UnexpectedResponse {
            got: frame.endpoint(),
        }
    }

    /// Locates one block: `(epoch, disks, disk)`.
    pub fn locate(&self, object: u64, block: u64) -> Result<(u64, u32, u64), ClientError> {
        match self.request(&Frame::Locate { object, block })? {
            Frame::Located { epoch, disks, disk } => Ok((epoch, disks, disk)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Locates a batch under one epoch: `(epoch, disks, locations)`.
    pub fn locate_batch(
        &self,
        object: u64,
        blocks: &[u64],
    ) -> Result<(u64, u32, Vec<u64>), ClientError> {
        match self.request(&Frame::LocateBatch {
            object,
            blocks: blocks.to_vec(),
        })? {
            Frame::BatchLocated {
                epoch,
                disks,
                locations,
            } => Ok((epoch, disks, locations)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Commits a scaling operation: `(epoch, disks, queued_moves)`.
    pub fn scale(&self, op: ScalingOp) -> Result<(u64, u32, u64), ClientError> {
        match self.request(&Frame::Scale { op })? {
            Frame::Scaled {
                epoch,
                disks,
                queued,
            } => Ok((epoch, disks, queued)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Advances service rounds: returns the remaining backlog.
    pub fn tick(&self, rounds: u32) -> Result<u64, ClientError> {
        match self.request(&Frame::Tick { rounds })? {
            Frame::Ticked { backlog, .. } => Ok(backlog),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Fetches the health report: `(verdict 0|1|2, alerts, rendered)`.
    pub fn health(&self) -> Result<(u8, u64, String), ClientError> {
        match self.request(&Frame::Health)? {
            Frame::HealthStatus {
                verdict,
                alerts,
                report,
            } => Ok((verdict, alerts, report)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Fetches the server's telemetry rendering.
    pub fn stats(&self, format: StatsFormat) -> Result<String, ClientError> {
        match self.request(&Frame::Stats { format })? {
            Frame::StatsText { text, .. } => Ok(text),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Liveness probe: returns the server's current epoch.
    pub fn ping(&self) -> Result<u64, ClientError> {
        match self.request(&Frame::Ping)? {
            Frame::Pong { epoch } => Ok(epoch),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Scrapes the server's structured metrics snapshot for
    /// federation: `(epoch, health verdict 0|1|2, snapshot)`.
    pub fn scrape_stats(&self) -> Result<(u64, u8, RegistrySnapshot), ClientError> {
        match self.request(&Frame::ScrapeStats)? {
            Frame::StatsReply {
                epoch,
                verdict,
                snapshot,
            } => Ok((epoch, verdict, snapshot)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Fetches the daemon's cumulative profiler snapshot. Two dumps
    /// N seconds apart diffed with [`ProfileSnapshot::since`] give an
    /// interval profile without any server-side blocking.
    pub fn profile_dump(&self) -> Result<ProfileSnapshot, ClientError> {
        match self.request(&Frame::ProfileDump)? {
            Frame::ProfileReply { profile } => Ok(profile),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Begins an online rehash compaction (or joins the one already in
    /// flight) and returns the server's compaction status. The server
    /// answers an error when it must refuse — redistribution still
    /// draining, or failed disks present.
    pub fn compact(&self) -> Result<CompactionStatus, ClientError> {
        match self.request(&Frame::Compact)? {
            Frame::CompactStatus {
                active,
                generation,
                target_generation,
                migrated,
                total,
                backlog,
            } => Ok(CompactionStatus {
                active: active == 1,
                generation,
                target_generation,
                migrated,
                total,
                backlog,
            }),
            other => Err(Self::unexpected(other)),
        }
    }
}

/// A shard's compaction state as answered by [`NetClient::compact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStatus {
    /// True while a compaction migration is in flight.
    pub active: bool,
    /// The serving generation (the one being retired when active).
    pub generation: u64,
    /// The generation being migrated to (== `generation` when idle).
    pub target_generation: u64,
    /// Blocks already at their new-generation placement.
    pub migrated: u64,
    /// Blocks the compaction must account for.
    pub total: u64,
    /// Migration moves still queued in the executor.
    pub backlog: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetServerConfig, Scaddard};
    use cmsim::{CmServer, ServerConfig, SharedServer};
    use scaddar_obs::{MonotonicClock, Registry, Tracer};
    use std::sync::Arc;

    fn boot() -> (Scaddard, NetClient) {
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(5)).unwrap();
        server.add_object(10_000).unwrap();
        let registry = Registry::new();
        let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
        let daemon = Scaddard::bind(
            "127.0.0.1:0",
            Arc::new(SharedServer::new(server)),
            NetServerConfig::default(),
            &registry,
            tracer,
        )
        .unwrap();
        let client = NetClient::connect(daemon.local_addr());
        (daemon, client)
    }

    #[test]
    fn profile_dump_diffs_into_interval_profiles() {
        let (daemon, client) = boot();
        for block in 0..100 {
            client.locate(0, block).unwrap();
        }
        let first = client.profile_dump().unwrap();
        assert!(first.threads.iter().all(|t| t.conserves()));
        for block in 100..200 {
            client.locate(0, block).unwrap();
        }
        let second = client.profile_dump().unwrap();
        let interval = second.since(&first);
        assert_eq!(interval.rounds, second.rounds - first.rounds);
        assert!(interval.threads.iter().all(|t| t.conserves()));
        // Cumulative dumps never run backwards.
        assert!(second.rounds >= first.rounds);
        daemon.shutdown();
    }

    #[test]
    fn typed_wrappers_round_trip() {
        let (daemon, client) = boot();
        assert_eq!(client.ping().unwrap(), 0);
        let (epoch, disks, disk) = client.locate(0, 42).unwrap();
        assert_eq!((epoch, disks), (0, 4));
        assert!(disk < 4);
        let (epoch, disks, queued) = client.scale(ScalingOp::Add { count: 1 }).unwrap();
        assert_eq!((epoch, disks), (1, 5));
        assert!(queued > 0);
        assert_eq!(client.tick(10_000).unwrap(), 0);
        let (verdict, _alerts, report) = client.health().unwrap();
        assert_eq!(verdict, 0, "{report}");
        let stats = client.stats(StatsFormat::Prometheus).unwrap();
        assert!(stats.contains("net_server_requests_total"));
        daemon.shutdown();
    }

    #[test]
    fn compact_drives_a_generation_flip_over_the_wire() {
        let (daemon, client) = boot();
        let status = client.compact().unwrap();
        assert!(status.active);
        assert_eq!(status.generation, 0);
        assert_eq!(status.target_generation, 1);
        assert!(status.backlog > 0);
        let mut rounds = 0;
        while client.tick(8).unwrap() > 0 {
            // Lookups keep answering mid-cutover.
            let (_, _, disk) = client.locate(0, 42).unwrap();
            assert!(disk < 4);
            rounds += 1;
            assert!(rounds < 10_000, "migration never drains");
        }
        // A second `compact` starting from generation 1 is the proof
        // the first one flipped.
        let next = client.compact().unwrap();
        assert!(next.active);
        assert_eq!(next.generation, 1);
        assert_eq!(next.target_generation, 2);
        daemon.shutdown();
    }

    #[test]
    fn compact_refuses_while_redistribution_drains() {
        let (daemon, client) = boot();
        let (_, _, queued) = client.scale(ScalingOp::Add { count: 1 }).unwrap();
        assert!(queued > 0);
        let err = client.compact().unwrap_err();
        assert!(
            matches!(
                &err,
                ClientError::Remote {
                    code: crate::wire::ErrorCode::Engine,
                    ..
                }
            ),
            "{err}"
        );
        daemon.shutdown();
    }

    #[test]
    fn remote_engine_errors_surface_typed() {
        let (daemon, client) = boot();
        let err = client.locate(404, 0).unwrap_err();
        assert!(
            matches!(
                &err,
                ClientError::Remote {
                    code: crate::wire::ErrorCode::Engine,
                    ..
                }
            ),
            "{err}"
        );
        // The connection survives an in-band error and is reused.
        assert_eq!(client.ping().unwrap(), 0);
        daemon.shutdown();
    }

    #[test]
    fn pipeline_preserves_order_and_interleaves_errors() {
        let (daemon, client) = boot();
        let requests = vec![
            Frame::Locate {
                object: 0,
                block: 1,
            },
            Frame::Locate {
                object: 404,
                block: 0,
            }, // engine error in-band
            Frame::Ping,
        ];
        let responses = client.pipeline(&requests).unwrap();
        assert_eq!(responses.len(), 3);
        assert!(matches!(responses[0], Frame::Located { .. }));
        assert!(matches!(responses[1], Frame::Error { .. }));
        assert!(matches!(responses[2], Frame::Pong { .. }));
        assert!(client.pipeline(&[]).unwrap().is_empty());
        daemon.shutdown();
    }

    #[test]
    fn stale_pooled_connections_recover_on_idempotent_requests() {
        let (daemon, client) = boot();
        assert_eq!(client.ping().unwrap(), 0); // pools one connection
        let addr = daemon.local_addr();
        daemon.shutdown(); // kills the pooled connection server-side

        // Re-boot a fresh server on the same address.
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(5)).unwrap();
        server.add_object(10_000).unwrap();
        let registry = Registry::new();
        let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
        let daemon2 = Scaddard::bind(
            addr,
            Arc::new(SharedServer::new(server)),
            NetServerConfig::default(),
            &registry,
            tracer,
        )
        .expect("rebind the same port");
        // The pooled connection is dead; the idempotent request must
        // reconnect transparently.
        assert_eq!(client.ping().unwrap(), 0);
        daemon2.shutdown();
    }

    #[test]
    fn idle_probe_lets_mutations_survive_a_stale_pool() {
        // Mutations never retry once bytes hit the wire — without the
        // keepalive probe, a `scale` after a server bounce would fail
        // on the dead pooled connection. With `idle_probe_after` at
        // zero, checkout probes first and dials fresh instead.
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(5)).unwrap();
        server.add_object(10_000).unwrap();
        let registry = Registry::new();
        let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
        let daemon = Scaddard::bind(
            "127.0.0.1:0",
            Arc::new(SharedServer::new(server)),
            NetServerConfig::default(),
            &registry,
            tracer,
        )
        .unwrap();
        let addr = daemon.local_addr();
        let client = NetClient::with_config(
            addr,
            ClientConfig {
                idle_probe_after: Some(Duration::ZERO),
                retries: 0,
                ..ClientConfig::default()
            },
        );
        assert_eq!(client.ping().unwrap(), 0); // pools one connection
        daemon.shutdown(); // kills it server-side

        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(5)).unwrap();
        server.add_object(10_000).unwrap();
        let registry = Registry::new();
        let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
        let daemon2 = Scaddard::bind(
            addr,
            Arc::new(SharedServer::new(server)),
            NetServerConfig::default(),
            &registry,
            tracer,
        )
        .expect("rebind the same port");
        let (epoch, disks, _) = client
            .scale(ScalingOp::Add { count: 1 })
            .expect("probe must discard the dead connection before the mutation");
        assert_eq!((epoch, disks), (1, 5));
        daemon2.shutdown();
    }

    #[test]
    fn idle_probe_keeps_live_connections_pooled() {
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(5)).unwrap();
        server.add_object(10_000).unwrap();
        let registry = Registry::new();
        let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
        let daemon = Scaddard::bind(
            "127.0.0.1:0",
            Arc::new(SharedServer::new(server)),
            NetServerConfig::default(),
            &registry,
            tracer,
        )
        .unwrap();
        let client = NetClient::with_config(
            daemon.local_addr(),
            ClientConfig {
                idle_probe_after: Some(Duration::ZERO),
                ..ClientConfig::default()
            },
        );
        // Every request after the first probes the pooled connection;
        // a healthy one passes the probe and is reused, not re-dialed.
        for _ in 0..4 {
            assert_eq!(client.ping().unwrap(), 0);
        }
        let stats = client.stats(StatsFormat::Json).unwrap();
        // One client connection (+ this stats request may reuse it too).
        assert!(
            !stats.is_empty(),
            "stats endpoint must answer on a probed connection"
        );
        daemon.shutdown();
    }

    #[test]
    fn scrape_stats_returns_a_structured_snapshot() {
        let (daemon, client) = boot();
        client.ping().unwrap();
        let (epoch, verdict, snapshot) = client.scrape_stats().unwrap();
        assert_eq!(epoch, 0);
        assert!(verdict <= 2);
        assert!(
            snapshot
                .counter_value("net_server_requests_total{endpoint=\"ping\"}")
                .unwrap_or(0)
                >= 1,
            "scraped snapshot missing the ping counter"
        );
        daemon.shutdown();
    }

    #[test]
    fn traced_requests_continue_the_trace_server_side() {
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(5)).unwrap();
        server.add_object(10_000).unwrap();
        let registry = Registry::new();
        let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
        let daemon = Scaddard::bind(
            "127.0.0.1:0",
            Arc::new(SharedServer::new(server)),
            NetServerConfig::default(),
            &registry,
            tracer.clone(),
        )
        .unwrap();
        let client = NetClient::connect(daemon.local_addr());
        let ctx = TraceContext::root(42, 0);
        let response = client
            .request_traced(
                &Frame::Locate {
                    object: 0,
                    block: 1,
                },
                Some(&ctx),
            )
            .unwrap();
        assert!(matches!(response, Frame::Located { .. }));
        let spans = tracer.spans_for_trace(ctx.trace_id);
        assert_eq!(spans.len(), 1, "server recorded one continuation span");
        assert_eq!(spans[0].name, "serve.locate");
        assert_eq!(spans[0].parent_id, ctx.span_id);
        assert_eq!(spans[0].span_id, ctx.child(0).span_id);
        // An unsampled context propagates ids but records no span.
        let quiet = TraceContext {
            sampled: false,
            ..TraceContext::root(42, 1)
        };
        client
            .request_traced(
                &Frame::Locate {
                    object: 0,
                    block: 2,
                },
                Some(&quiet),
            )
            .unwrap();
        assert!(tracer.spans_for_trace(quiet.trace_id).is_empty());
        daemon.shutdown();
    }

    #[test]
    fn deadline_exceeded_when_no_server_listens() {
        // Bind a listener and never accept: connects succeed (backlog)
        // but no response ever arrives.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let client = NetClient::with_config(
            listener.local_addr().unwrap(),
            ClientConfig {
                request_timeout: Duration::from_millis(200),
                retries: 0,
                ..ClientConfig::default()
            },
        );
        let err = client.ping().unwrap_err();
        assert!(matches!(err, ClientError::DeadlineExceeded), "{err}");
    }
}
