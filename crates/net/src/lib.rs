//! # scaddar-net — the networked serving layer
//!
//! The paper's deployment target is a continuous-media *server*
//! answering block-location queries for many concurrent clients while
//! scaling operations commit online (§1, AO1). Everything below this
//! crate — [`cmsim::SharedServer`], the CLI, the harness — is
//! in-process; this crate puts the lookup path behind a real socket
//! with real backpressure, deadlines, and per-endpoint telemetry:
//!
//! * [`wire`] — the versioned, length-prefixed binary protocol
//!   ([`Frame`], [`FrameError`]): a zero-copy encoder and a hardened
//!   decoder that answers truncated/oversized/garbage input with typed
//!   errors, never a panic.
//! * [`server`] — `scaddard` ([`Scaddard`]): the serving daemon over a
//!   [`cmsim::SharedServer`] with a bounded accept policy (max
//!   connections, per-request read/write deadlines, graceful drain on
//!   shutdown) and per-endpoint `obs` counters/latency histograms plus
//!   `net.*` spans. Two cores behind one bind call ([`ServerMode`]):
//!   the default readiness-based event loop and the thread-per-
//!   connection reference kept for A/B runs.
//! * [`reactor`] — the event-loop core: nonblocking sockets driven by
//!   epoll/poll(2) (via the vendored `polling` shim), a slab of
//!   per-connection states with reusable buffers, cross-connection
//!   request coalescing into single [`cmsim::SharedServer`] read-lock
//!   acquisitions, batched writes with graceful EAGAIN handling, and
//!   the PR 5 deadline/backpressure policy preserved.
//! * [`client`] — [`NetClient`]: connection pooling, request
//!   pipelining, and deadline-aware retry-on-reconnect.
//! * [`load`] — a deterministic loopback load generator (seeded
//!   open/closed-loop workloads) whose measurements feed
//!   `BENCH_net.json` via `bench_report`.
//! * [`cluster`] — the sharded-topology layer: the versioned
//!   [`ClusterMap`] with jump-consistent-hash object routing, the
//!   server-side [`ShardRuntime`] handoff gates, and the shard-aware
//!   [`ClusterClient`] that chases `WrongShard`/`StaleMap` redirects by
//!   refreshing the map.
//!
//! The crate is std-only (`std::net` + threads), consistent with the
//! workspace's vendored-shim policy: no async runtime, no serde.
//!
//! ## The invariant that crosses the wire
//!
//! Every response that depends on placement carries the scaling epoch
//! it was served at (`Located`, `BatchLocated`, `Scaled`, even `Pong`),
//! and every batch is served under **one** lock acquisition
//! ([`cmsim::SharedServer::locate_batch_read`]) — so a remote client
//! observes the same "entirely pre-op or entirely post-op, never torn"
//! guarantee that `cmsim`'s in-process tests pin down, now across the
//! socket boundary (`tests/loopback_concurrent.rs` holds the line with
//! 64 concurrent clients through mid-run `Scale` commits).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod load;
pub mod reactor;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, ClientError, CompactionStatus, NetClient};
pub use cluster::{
    fetch_map, jump_hash, ClusterAnswer, ClusterBatchAnswer, ClusterClient, ClusterClientStats,
    ClusterMap, RouteDecision, ShardRuntime,
};
pub use load::{run_load, LatencySummary, LoadConfig, LoadReport, LoopMode};
pub use server::{
    depth_bucket, NetServerConfig, PhaseStats, Scaddard, ServerMode, ENGINE_DEPTH_BUCKETS,
};
pub use wire::{
    decode_frame, decode_frame_limited, ErrorCode, Frame, FrameError, StatsFormat,
    MAX_PROFILE_STATES,
};
