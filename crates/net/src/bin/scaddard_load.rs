//! Loopback load harness: boots `scaddard` in-process and measures the
//! serving layer end-to-end, emitting criterion-shim-compatible JSON
//! that `bench_report` condenses into `BENCH_net.json`.
//!
//! Per server mode (`--mode event-loop`, `--mode threaded`, or the
//! default `--mode both` for the A/B table), three passes:
//!
//! 1. **Mixed closed-loop** — the full configuration (per-endpoint
//!    histograms, spans) under the seeded locate/batch/scale mixture;
//!    this pass supplies the round-trip latency percentiles and
//!    error/consistency counts.
//! 2. **Pipelined throughput** — a locate-heavy pipelined workload
//!    (windowed, many frames in flight per connection) that gives the
//!    event loop's cross-connection coalescing something to coalesce;
//!    this pass supplies the throughput headline and the amortized
//!    per-request p999.
//! 3. **Overhead** (primary mode only) — a locate-only closed loop,
//!    instrumented vs bare; the mean ns-per-request pair feeds the
//!    instrumented/bare overhead ratio gated at ≤ 1.10 (same
//!    discipline as BENCH_obs and BENCH_monitor).
//!
//! ```text
//! cargo run --release -p scaddar-net --bin scaddard-load -- \
//!     [--mode event-loop|threaded|both] [--seed N] [--clients N] \
//!     [--requests N] [--scale-ops N] [--window N] [--out PATH]
//! cargo run -p scaddar-bench --bin bench_report
//! ```
//!
//! The event-loop rows keep the historical `net_load/*` names (the
//! headline); threaded rows land under `net_load_threaded/*` so
//! `bench_report` can print the A/B speedup.
//!
//! Exits nonzero on any protocol error or epoch-consistency violation
//! in any pass, so CI's net-smoke job can gate directly on the run.

use scaddar_net::{LoadConfig, LoadReport, LoopMode, NetServerConfig, Scaddard, ServerMode};
use scaddar_obs::{MonotonicClock, Registry, Tracer};
use std::fmt::Write as _;
use std::sync::Arc;

/// Blocks in the served object for every pass.
const OBJECT_BLOCKS: u64 = 50_000;

fn boot(mode: ServerMode, instrument: bool) -> Scaddard {
    let mut server = cmsim::CmServer::new(cmsim::ServerConfig::new(4).with_catalog_seed(0xBEEF))
        .expect("server");
    server.add_object(OBJECT_BLOCKS).expect("object");
    let registry = Registry::new();
    let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 256);
    Scaddard::bind(
        "127.0.0.1:0",
        Arc::new(cmsim::SharedServer::new(server)),
        NetServerConfig {
            instrument,
            ..NetServerConfig::default()
        }
        .with_mode(mode),
        &registry,
        tracer,
    )
    .expect("bind loopback")
}

/// Mean service nanoseconds per completed locate request.
fn mean_locate_ns(report: &LoadReport) -> f64 {
    if report.locate.count == 0 {
        return 0.0;
    }
    report.locate.mean as f64
}

fn push_result(out: &mut String, group: &str, bench: &str, ns: f64, iterations: u64) {
    if !out.is_empty() {
        out.push_str(",\n");
    }
    write!(
        out,
        "    {{\"group\": \"{group}\", \"bench\": \"{bench}\", \"ns_per_iter\": {ns:.3}, \"iterations\": {iterations}}}"
    )
    .expect("write to string");
}

fn mode_label(mode: ServerMode) -> &'static str {
    match mode {
        ServerMode::EventLoop => "event-loop",
        ServerMode::Threaded => "threaded",
    }
}

struct ModeMeasurement {
    mixed: LoadReport,
    pipelined: LoadReport,
}

/// Passes 1 and 2 for one server mode.
fn measure_mode(
    mode: ServerMode,
    seed: u64,
    clients: usize,
    requests: u64,
    scale_ops: u32,
    window: usize,
) -> ModeMeasurement {
    let daemon = boot(mode, true);
    let mixed = scaddar_net::run_load(
        daemon.local_addr(),
        &LoadConfig {
            seed,
            clients,
            requests_per_client: requests,
            object_blocks: OBJECT_BLOCKS,
            scale_ops,
            ..LoadConfig::default()
        },
    );
    daemon.shutdown();
    println!(
        "{} mixed: {} requests in {:?} ({:.0} rps), locate p50/p95/p99/p999 = {}/{}/{}/{} ns, \
         epochs {}, errors {}, protocol errors {}, torn reads {}",
        mode_label(mode),
        mixed.requests,
        mixed.elapsed,
        mixed.throughput_rps,
        mixed.locate.p50,
        mixed.locate.p95,
        mixed.locate.p99,
        mixed.locate.p999,
        mixed.epochs_observed,
        mixed.errors,
        mixed.protocol_errors,
        mixed.consistency_violations,
    );

    // Throughput pass: pipelined windows, locate-heavy (one batch per
    // 32 requests keeps the mixture honest without letting batch
    // payloads dominate the byte counts).
    let daemon = boot(mode, true);
    let pipelined = scaddar_net::run_load(
        daemon.local_addr(),
        &LoadConfig {
            seed,
            clients,
            requests_per_client: requests.saturating_mul(8),
            object_blocks: OBJECT_BLOCKS,
            scale_ops,
            batch_every: 32,
            mode: LoopMode::Pipelined { window },
            ..LoadConfig::default()
        },
    );
    daemon.shutdown();
    println!(
        "{} pipelined (window {window}): {} requests in {:?} ({:.0} rps), amortized locate \
         p50/p999 = {}/{} ns, errors {}, protocol errors {}, torn reads {}",
        mode_label(mode),
        pipelined.requests,
        pipelined.elapsed,
        pipelined.throughput_rps,
        pipelined.locate.p50,
        pipelined.locate.p999,
        pipelined.errors,
        pipelined.protocol_errors,
        pipelined.consistency_violations,
    );
    ModeMeasurement { mixed, pipelined }
}

fn clean(report: &LoadReport) -> bool {
    report.protocol_errors == 0 && report.consistency_violations == 0
}

fn main() {
    let mut seed = 0xC0FFEEu64;
    let mut clients = 8usize;
    let mut requests = 600u64;
    let mut scale_ops = 2u32;
    let mut window = 64usize;
    let mut modes: Vec<ServerMode> = vec![ServerMode::EventLoop, ServerMode::Threaded];
    // Its own stem (not `net.json`, which the codec bench owns):
    // `bench_report` reads one file per stem.
    let mut out_path = "target/criterion-json/net_load.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => seed = value("--seed").parse().expect("numeric --seed"),
            "--clients" => clients = value("--clients").parse().expect("numeric --clients"),
            "--requests" => requests = value("--requests").parse().expect("numeric --requests"),
            "--scale-ops" => scale_ops = value("--scale-ops").parse().expect("numeric --scale-ops"),
            "--window" => window = value("--window").parse().expect("numeric --window"),
            "--mode" => {
                modes = match value("--mode").as_str() {
                    "event-loop" => vec![ServerMode::EventLoop],
                    "threaded" => vec![ServerMode::Threaded],
                    "both" => vec![ServerMode::EventLoop, ServerMode::Threaded],
                    other => panic!("--mode must be event-loop, threaded, or both (got {other})"),
                }
            }
            "--out" => out_path = value("--out"),
            other => {
                eprintln!(
                    "unknown argument `{other}`\nusage: scaddard-load \
                     [--mode event-loop|threaded|both] [--seed N] [--clients N] [--requests N] \
                     [--scale-ops N] [--window N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut results = String::new();
    let mut all_clean = true;
    let primary_mode = modes[0];
    for &mode in &modes {
        let m = measure_mode(mode, seed, clients, requests, scale_ops, window);
        all_clean &= clean(&m.mixed) && clean(&m.pipelined);
        // Event-loop rows keep the historical headline names; the
        // threaded reference gets its own group for the A/B speedup.
        let group = match mode {
            ServerMode::EventLoop => "net_load",
            ServerMode::Threaded => "net_load_threaded",
        };
        for (bench, ns) in [
            ("locate_p50", m.mixed.locate.p50 as f64),
            ("locate_p95", m.mixed.locate.p95 as f64),
            ("locate_p99", m.mixed.locate.p99 as f64),
            ("locate_p999", m.mixed.locate.p999 as f64),
            ("batch_p99", m.mixed.locate_batch.p99 as f64),
            ("pipelined_p50", m.pipelined.locate.p50 as f64),
            ("pipelined_p999", m.pipelined.locate.p999 as f64),
        ] {
            push_result(&mut results, group, bench, ns, m.mixed.requests);
        }
        // Non-latency facts ride in `ns_per_iter` too: the shim format
        // has one numeric field, and bench_report copies it through
        // verbatim.
        for (bench, v) in [
            ("throughput_rps", m.pipelined.throughput_rps),
            ("closed_loop_rps", m.mixed.throughput_rps),
            ("requests", (m.mixed.requests + m.pipelined.requests) as f64),
            ("errors", (m.mixed.errors + m.pipelined.errors) as f64),
            (
                "protocol_errors",
                (m.mixed.protocol_errors + m.pipelined.protocol_errors) as f64,
            ),
            (
                "consistency_violations",
                (m.mixed.consistency_violations + m.pipelined.consistency_violations) as f64,
            ),
            ("epochs_observed", m.mixed.epochs_observed as f64),
        ] {
            push_result(&mut results, group, bench, v, 1);
        }
    }

    // Overhead pass (primary mode): locate-only closed loop,
    // instrumented vs bare. Same seed, same shape, only `instrument`
    // differs. Loopback round-trips are scheduler-noisy, so each
    // configuration runs three alternating passes and keeps its
    // *minimum* mean — the min is the least-disturbed run, and both
    // sides get the same treatment.
    let overhead_config = LoadConfig {
        seed,
        clients: clients.min(4),
        requests_per_client: requests,
        object_blocks: OBJECT_BLOCKS,
        scale_ops: 0,
        batch_every: 0,
        ..LoadConfig::default()
    };
    let mut bare_runs = Vec::new();
    let mut inst_runs = Vec::new();
    for _ in 0..3 {
        let daemon = boot(primary_mode, false);
        bare_runs.push(scaddar_net::run_load(daemon.local_addr(), &overhead_config));
        daemon.shutdown();
        let daemon = boot(primary_mode, true);
        inst_runs.push(scaddar_net::run_load(daemon.local_addr(), &overhead_config));
        daemon.shutdown();
    }
    let best = |runs: &[LoadReport]| {
        runs.iter()
            .map(mean_locate_ns)
            .fold(f64::INFINITY, f64::min)
    };
    let (bare_ns, inst_ns) = (best(&bare_runs), best(&inst_runs));
    all_clean &= bare_runs.iter().chain(inst_runs.iter()).all(clean);
    println!(
        "overhead ({}): bare {bare_ns:.0} ns/locate, instrumented {inst_ns:.0} ns/locate \
         (ratio {:.4})",
        mode_label(primary_mode),
        if bare_ns > 0.0 {
            inst_ns / bare_ns
        } else {
            0.0
        },
    );
    push_result(
        &mut results,
        "net_locate_overhead",
        "bare",
        bare_ns,
        bare_runs[0].locate.count,
    );
    push_result(
        &mut results,
        "net_locate_overhead",
        "instrumented",
        inst_ns,
        inst_runs[0].locate.count,
    );

    let json = format!("{{\"bench\": \"net_load\", \"results\": [\n{results}\n]}}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write report");
    println!("scaddard-load: wrote {out_path}");

    if !all_clean {
        eprintln!("scaddard-load: FAILED (protocol errors or torn epochs observed)");
        std::process::exit(1);
    }
}
