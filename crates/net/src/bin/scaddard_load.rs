//! Loopback load harness: boots `scaddard` in-process and measures the
//! serving layer end-to-end, emitting criterion-shim-compatible JSON
//! that `bench_report` condenses into `BENCH_net.json`.
//!
//! Two passes:
//!
//! 1. **Instrumented** — the full configuration (per-endpoint
//!    histograms, spans) under the seeded locate/batch/scale mixture;
//!    this pass supplies the latency percentiles, throughput, and error
//!    counts.
//! 2. **Bare** — the same server with `instrument: false` under a
//!    locate-only closed loop, paired with an instrumented locate-only
//!    pass; the mean ns-per-request pair feeds the instrumented/bare
//!    overhead ratio gated at ≤ 1.10 (same discipline as BENCH_obs and
//!    BENCH_monitor).
//!
//! ```text
//! cargo run --release -p scaddar-net --bin scaddard-load -- \
//!     [--seed N] [--clients N] [--requests N] [--scale-ops N] [--out PATH]
//! cargo run -p scaddar-bench --bin bench_report
//! ```
//!
//! Exits nonzero on any protocol error or epoch-consistency violation,
//! so CI's net-smoke job can gate directly on the run.

use scaddar_net::{LoadConfig, LoadReport, NetServerConfig, Scaddard};
use scaddar_obs::{MonotonicClock, Registry, Tracer};
use std::fmt::Write as _;
use std::sync::Arc;

/// Blocks in the served object for every pass.
const OBJECT_BLOCKS: u64 = 50_000;

fn boot(instrument: bool) -> Scaddard {
    let mut server = cmsim::CmServer::new(cmsim::ServerConfig::new(4).with_catalog_seed(0xBEEF))
        .expect("server");
    server.add_object(OBJECT_BLOCKS).expect("object");
    let registry = Registry::new();
    let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 256);
    Scaddard::bind(
        "127.0.0.1:0",
        Arc::new(cmsim::SharedServer::new(server)),
        NetServerConfig {
            instrument,
            ..NetServerConfig::default()
        },
        &registry,
        tracer,
    )
    .expect("bind loopback")
}

/// Mean service nanoseconds per completed locate request.
fn mean_locate_ns(report: &LoadReport) -> f64 {
    if report.locate.count == 0 {
        return 0.0;
    }
    report.locate.mean as f64
}

fn push_result(out: &mut String, group: &str, bench: &str, ns: f64, iterations: u64) {
    if !out.is_empty() {
        out.push_str(",\n");
    }
    write!(
        out,
        "    {{\"group\": \"{group}\", \"bench\": \"{bench}\", \"ns_per_iter\": {ns:.3}, \"iterations\": {iterations}}}"
    )
    .expect("write to string");
}

fn main() {
    let mut seed = 0xC0FFEEu64;
    let mut clients = 8usize;
    let mut requests = 600u64;
    let mut scale_ops = 2u32;
    // Its own stem (not `net.json`, which the codec bench owns):
    // `bench_report` reads one file per stem.
    let mut out_path = "target/criterion-json/net_load.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => seed = value("--seed").parse().expect("numeric --seed"),
            "--clients" => clients = value("--clients").parse().expect("numeric --clients"),
            "--requests" => requests = value("--requests").parse().expect("numeric --requests"),
            "--scale-ops" => scale_ops = value("--scale-ops").parse().expect("numeric --scale-ops"),
            "--out" => out_path = value("--out"),
            other => {
                eprintln!(
                    "unknown argument `{other}`\nusage: scaddard-load [--seed N] [--clients N] \
                     [--requests N] [--scale-ops N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    // Pass 1: the full mixture against the instrumented server.
    let daemon = boot(true);
    let mixed = scaddar_net::run_load(
        daemon.local_addr(),
        &LoadConfig {
            seed,
            clients,
            requests_per_client: requests,
            object_blocks: OBJECT_BLOCKS,
            scale_ops,
            ..LoadConfig::default()
        },
    );
    daemon.shutdown();
    println!(
        "mixed: {} requests in {:?} ({:.0} rps), locate p50/p95/p99/p999 = {}/{}/{}/{} ns, \
         epochs {}, errors {}, protocol errors {}, torn reads {}",
        mixed.requests,
        mixed.elapsed,
        mixed.throughput_rps,
        mixed.locate.p50,
        mixed.locate.p95,
        mixed.locate.p99,
        mixed.locate.p999,
        mixed.epochs_observed,
        mixed.errors,
        mixed.protocol_errors,
        mixed.consistency_violations,
    );

    // Pass 2: locate-only closed loop, instrumented vs bare, for the
    // overhead ratio. Same seed, same shape, only `instrument` differs.
    // Loopback round-trips are scheduler-noisy, so each configuration
    // runs three alternating passes and keeps its *minimum* mean —
    // the min is the least-disturbed run, and both sides get the same
    // treatment.
    let overhead_config = LoadConfig {
        seed,
        clients: clients.min(4),
        requests_per_client: requests,
        object_blocks: OBJECT_BLOCKS,
        scale_ops: 0,
        batch_every: 0,
        ..LoadConfig::default()
    };
    let mut bare_runs = Vec::new();
    let mut inst_runs = Vec::new();
    for _ in 0..3 {
        let daemon = boot(false);
        bare_runs.push(scaddar_net::run_load(daemon.local_addr(), &overhead_config));
        daemon.shutdown();
        let daemon = boot(true);
        inst_runs.push(scaddar_net::run_load(daemon.local_addr(), &overhead_config));
        daemon.shutdown();
    }
    let best = |runs: &[LoadReport]| {
        runs.iter()
            .map(mean_locate_ns)
            .fold(f64::INFINITY, f64::min)
    };
    let (bare_ns, inst_ns) = (best(&bare_runs), best(&inst_runs));
    let bare = bare_runs.remove(0);
    let instrumented = inst_runs.remove(0);
    let clean_overhead = bare_runs
        .iter()
        .chain(inst_runs.iter())
        .chain([&bare, &instrumented])
        .all(|r| r.protocol_errors == 0);
    println!(
        "overhead: bare {bare_ns:.0} ns/locate, instrumented {inst_ns:.0} ns/locate (ratio {:.4})",
        if bare_ns > 0.0 {
            inst_ns / bare_ns
        } else {
            0.0
        },
    );

    let mut results = String::new();
    for (bench, ns) in [
        ("locate_p50", mixed.locate.p50 as f64),
        ("locate_p95", mixed.locate.p95 as f64),
        ("locate_p99", mixed.locate.p99 as f64),
        ("locate_p999", mixed.locate.p999 as f64),
        ("batch_p99", mixed.locate_batch.p99 as f64),
    ] {
        push_result(&mut results, "net_load", bench, ns, mixed.requests);
    }
    // Non-latency facts ride in `ns_per_iter` too: the shim format has
    // one numeric field, and bench_report copies it through verbatim.
    for (bench, v) in [
        ("throughput_rps", mixed.throughput_rps),
        ("requests", mixed.requests as f64),
        ("errors", mixed.errors as f64),
        ("protocol_errors", mixed.protocol_errors as f64),
        (
            "consistency_violations",
            mixed.consistency_violations as f64,
        ),
        ("epochs_observed", mixed.epochs_observed as f64),
    ] {
        push_result(&mut results, "net_load", bench, v, 1);
    }
    push_result(
        &mut results,
        "net_locate_overhead",
        "bare",
        bare_ns,
        bare.locate.count,
    );
    push_result(
        &mut results,
        "net_locate_overhead",
        "instrumented",
        inst_ns,
        instrumented.locate.count,
    );
    let json = format!("{{\"bench\": \"net_load\", \"results\": [\n{results}\n]}}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write report");
    println!("scaddard-load: wrote {out_path}");

    let clean = mixed.protocol_errors == 0 && mixed.consistency_violations == 0 && clean_overhead;
    if !clean {
        eprintln!("scaddard-load: FAILED (protocol errors or torn epochs observed)");
        std::process::exit(1);
    }
}
