//! Corruption sweep for the wire decoder, mirroring the snapshot
//! sweep idiom in `scaddar-core`'s `persist` tests
//! (`rejects_corruption_everywhere` / `rejects_truncation_everywhere`):
//! every truncation point, every length-prefix class, every unknown
//! tag, and a bit-flip at every byte of every frame type must come back
//! as a typed [`FrameError`] (or a well-formed decode) — never a panic,
//! never an out-of-bounds read, never a silent desync.

use proptest::prelude::*;
use scaddar_core::ScalingOp;
use scaddar_net::wire::{
    decode_frame, decode_frame_limited, decode_frame_traced, ErrorCode, Frame, FrameError,
    StatsFormat, FRAME_HEADER_LEN, HARD_MAX_FRAME_LEN, PROTOCOL_VERSION, TRACE_TRAILER_V1_LEN,
    TRACE_TRAILER_VERSION,
};
use scaddar_obs::{ProfileSnapshot, Registry, RegistrySnapshot, ThreadProfile, TraceContext};

/// A populated registry snapshot for the `StatsReply` exemplar, so the
/// corruption sweeps cover every section of the snapshot encoding.
fn sample_snapshot() -> RegistrySnapshot {
    let registry = Registry::new();
    registry
        .counter("net_requests_total", "requests accepted")
        .add(7);
    registry
        .counter("net_errors_total", "errored requests")
        .add(1);
    registry
        .gauge("net_active_connections", "open connections")
        .set(-2);
    let hist = registry.histogram("net_locate_ns", "locate latency");
    for v in [80, 900, 64_000, 3_000_000] {
        hist.record(v);
    }
    registry.snapshot()
}

/// One frame of every variant, with variable-length fields populated
/// (the in-crate unit tests have their own copy; integration tests
/// cannot see `#[cfg(test)]` items).
fn exemplars() -> Vec<Frame> {
    vec![
        Frame::Locate {
            object: 3,
            block: 77,
        },
        Frame::LocateBatch {
            object: 1,
            blocks: vec![0, 9, 1 << 40],
        },
        Frame::Scale {
            op: ScalingOp::Add { count: 2 },
        },
        Frame::Scale {
            op: ScalingOp::Remove {
                disks: vec![0, 3, 5],
            },
        },
        Frame::Tick { rounds: 16 },
        Frame::Health,
        Frame::Stats {
            format: StatsFormat::Prometheus,
        },
        Frame::Stats {
            format: StatsFormat::Json,
        },
        Frame::Ping,
        Frame::Located {
            epoch: 4,
            disks: 6,
            disk: 5,
        },
        Frame::BatchLocated {
            epoch: 2,
            disks: 8,
            locations: vec![1, 2, 3],
        },
        Frame::Scaled {
            epoch: 9,
            disks: 12,
            queued: 4242,
        },
        Frame::Ticked {
            rounds: 3,
            backlog: 17,
        },
        Frame::HealthStatus {
            verdict: 1,
            alerts: 2,
            report: "health: WARN — ro2 drift".into(),
        },
        Frame::StatsText {
            format: StatsFormat::Json,
            text: "{\"counters\": []}".into(),
        },
        Frame::Pong { epoch: 5 },
        Frame::Error {
            code: ErrorCode::Busy,
            message: "server at connection limit".into(),
        },
        // Cluster frames: map fetch/propagation and the redirect pair.
        Frame::FetchMap { have_version: 3 },
        Frame::MapUpdate {
            version: 7,
            shards: vec![
                (0, "127.0.0.1:7411".into()),
                (2, "127.0.0.1:7412".into()),
                (5, "10.0.0.9:7413".into()),
            ],
        },
        Frame::MapUpdate {
            version: 1,
            shards: vec![],
        },
        Frame::WrongShard {
            map_version: 8,
            owner: 2,
        },
        Frame::StaleMap { map_version: 9 },
        // Federation frames: the stats scrape and its snapshot reply.
        Frame::ScrapeStats,
        Frame::StatsReply {
            epoch: 3,
            verdict: 1,
            snapshot: sample_snapshot(),
        },
        Frame::StatsReply {
            epoch: 0,
            verdict: 0,
            snapshot: RegistrySnapshot::default(),
        },
        // Profiler frames: the dump request and its residency reply.
        Frame::ProfileDump,
        Frame::ProfileReply {
            profile: ProfileSnapshot {
                at_ns: 42_000,
                rounds: 500,
                threads: vec![
                    ThreadProfile {
                        name: "scaddard-worker-0".into(),
                        samples: 500,
                        counts: vec![5, 400, 30, 20, 25, 10, 10, 0],
                    },
                    ThreadProfile {
                        name: "scaddard-op".into(),
                        samples: 120,
                        counts: vec![100, 0, 0, 0, 0, 0, 0, 20],
                    },
                ],
            },
        },
        Frame::ProfileReply {
            profile: ProfileSnapshot {
                at_ns: 0,
                rounds: 0,
                threads: vec![],
            },
        },
    ]
}

#[test]
fn every_truncation_point_is_retryable_incomplete() {
    for frame in exemplars() {
        let bytes = frame.to_bytes();
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(FrameError::Incomplete { needed }) => {
                    assert!(
                        needed > cut && needed <= bytes.len(),
                        "{frame:?} cut at {cut}: needed {needed} out of range"
                    );
                }
                other => panic!("{frame:?} cut at {cut}: expected Incomplete, got {other:?}"),
            }
        }
        // The uncut frame still round-trips.
        let (decoded, used) = decode_frame(&bytes).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(used, bytes.len());
    }
}

/// Shrinks the length prefix so the frame *claims* to end mid-payload:
/// a complete-by-prefix frame whose payload runs out inside a field
/// must be a typed in-frame error, never `Incomplete` (the stream
/// offset is already decided) and never a panic.
#[test]
fn every_in_frame_truncation_is_a_typed_error() {
    for frame in exemplars() {
        let bytes = frame.to_bytes();
        let payload_len = bytes.len() - FRAME_HEADER_LEN;
        for keep in 0..payload_len {
            let mut cut = Vec::with_capacity(FRAME_HEADER_LEN + keep);
            cut.extend_from_slice(&(2 + keep as u32).to_le_bytes());
            cut.extend_from_slice(&bytes[4..FRAME_HEADER_LEN + keep]);
            match decode_frame(&cut) {
                Err(FrameError::Truncated { .. } | FrameError::Malformed { .. }) => {}
                other => panic!(
                    "{frame:?} with payload shrunk to {keep}/{payload_len}: \
                     expected Truncated/Malformed, got {other:?}"
                ),
            }
        }
    }
}

/// Grows the length prefix past the real payload (zero padding): the
/// decoder must notice the surplus, not mis-parse it into the next
/// frame's bytes.
#[test]
fn padded_frames_are_trailing_bytes_errors() {
    for frame in exemplars() {
        let mut bytes = frame.to_bytes();
        let padded_len = (bytes.len() - 4 + 3) as u32;
        bytes[..4].copy_from_slice(&padded_len.to_le_bytes());
        bytes.extend_from_slice(&[0, 0, 0]);
        match decode_frame(&bytes) {
            // Fixed-layout frames report the surplus; variable-length
            // frames may instead read the pad as part of a count/string
            // and fail that field — both are typed, neither is a desync.
            Err(
                FrameError::TrailingBytes { .. }
                | FrameError::Truncated { .. }
                | FrameError::Malformed { .. },
            ) => {}
            other => panic!("{frame:?} padded: expected a typed error, got {other:?}"),
        }
    }
}

#[test]
fn length_prefix_overflow_classes() {
    let header = |len: u32| {
        let mut b = len.to_le_bytes().to_vec();
        b.extend_from_slice(&[PROTOCOL_VERSION, 0x01]);
        b
    };
    // Over the hard ceiling, and over a configured cap.
    for len in [HARD_MAX_FRAME_LEN + 1, u32::MAX] {
        assert_eq!(
            decode_frame(&header(len)),
            Err(FrameError::Oversized {
                len,
                max: HARD_MAX_FRAME_LEN
            })
        );
    }
    assert_eq!(
        decode_frame_limited(&header(1024), 64),
        Err(FrameError::Oversized { len: 1024, max: 64 })
    );
    // Too short to hold version + tag.
    for len in [0u32, 1] {
        assert_eq!(
            decode_frame(&header(len)),
            Err(FrameError::Undersized { len })
        );
    }
}

#[test]
fn every_unknown_tag_and_version_byte_is_typed() {
    let known_requests = [
        0x01u8, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B,
    ];
    let known_responses = [
        0x81u8, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8A, 0x8B, 0x8C, 0x8D, 0xFF,
    ];
    for tag in 0u8..=255 {
        let buf = [2u8, 0, 0, 0, PROTOCOL_VERSION, tag];
        match decode_frame(&buf) {
            Err(FrameError::UnknownTag { tag: got }) => {
                assert_eq!(got, tag);
                assert!(
                    !known_requests.contains(&tag) && !known_responses.contains(&tag),
                    "known tag {tag:#04x} rejected as unknown"
                );
            }
            // Known empty-payload frames (Health, Ping) decode; known
            // tags with payloads report truncation — never a panic.
            Ok(_) | Err(FrameError::Truncated { .. } | FrameError::Malformed { .. }) => {
                assert!(
                    known_requests.contains(&tag) || known_responses.contains(&tag),
                    "unknown tag {tag:#04x} was not rejected"
                );
            }
            other => panic!("tag {tag:#04x}: unexpected {other:?}"),
        }
    }
    for version in (0u8..=255).filter(|v| *v != PROTOCOL_VERSION) {
        assert_eq!(
            decode_frame(&[2, 0, 0, 0, version, 0x01]),
            Err(FrameError::VersionMismatch { got: version })
        );
    }
}

/// Flips one bit in every byte of every frame: the decoder must answer
/// with a typed error or a clean decode of the *whole* mutated frame —
/// never a panic, and never a decode that leaves the stream offset
/// inconsistent with the bytes consumed.
#[test]
fn single_bit_flips_never_panic_or_desync() {
    for frame in exemplars() {
        let bytes = frame.to_bytes();
        for i in 0..bytes.len() {
            for mask in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] ^= mask;
                match decode_frame(&bad) {
                    Ok((_, used)) => {
                        assert!(
                            used <= bad.len(),
                            "{frame:?} flip {mask:#04x}@{i}: consumed {used} of {}",
                            bad.len()
                        );
                    }
                    Err(FrameError::Incomplete { needed }) => {
                        // Only a grown length prefix can make the frame
                        // incomplete — the flip must be in the prefix.
                        assert!(
                            i < 4,
                            "{frame:?} flip {mask:#04x}@{i}: Incomplete off-prefix"
                        );
                        assert!(needed > bad.len());
                    }
                    Err(_) => {} // typed rejection: the contract
                }
            }
        }
    }
}

/// A frame claiming a batch of `u32::MAX` elements must be rejected by
/// arithmetic, not by attempting the allocation. `0x88` (`MapUpdate`)
/// carries the hostile count as its shard-list length.
#[test]
fn hostile_counts_are_rejected_without_allocation() {
    for tag in [0x02u8, 0x82, 0x88] {
        let mut buf = Vec::new();
        // payload: object/epoch/version u64 + (disks u32 for 0x82) + count u32
        let payload_len = if tag == 0x82 { 8 + 4 + 4 } else { 8 + 4 };
        buf.extend_from_slice(&(2 + payload_len as u32).to_le_bytes());
        buf.push(PROTOCOL_VERSION);
        buf.push(tag);
        buf.extend_from_slice(&7u64.to_le_bytes());
        if tag == 0x82 {
            buf.extend_from_slice(&4u32.to_le_bytes());
        }
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(
            matches!(decode_frame(&buf), Err(FrameError::Malformed { .. })),
            "hostile count behind tag {tag:#04x} was not rejected"
        );
    }
}

/// Hostile `MapUpdate` payloads beyond the raw count: shard ids out of
/// order (which would silently scramble jump-hash buckets if accepted)
/// and an address string claiming to run past the payload. Both must be
/// typed rejections — a client never installs a malformed map.
#[test]
fn hostile_map_updates_are_typed_rejections() {
    let frame_bytes = |payload: &[u8]| {
        let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        buf.extend_from_slice(&(2 + payload.len() as u32).to_le_bytes());
        buf.push(PROTOCOL_VERSION);
        buf.push(0x88);
        buf.extend_from_slice(payload);
        buf
    };
    let entry = |id: u32, addr: &str| {
        let mut e = id.to_le_bytes().to_vec();
        e.extend_from_slice(&(addr.len() as u32).to_le_bytes());
        e.extend_from_slice(addr.as_bytes());
        e
    };

    // Descending and duplicate ids: both break the sorted-bucket rule.
    for ids in [[3u32, 1], [2, 2]] {
        let mut payload = 9u64.to_le_bytes().to_vec();
        payload.extend_from_slice(&2u32.to_le_bytes());
        for id in ids {
            payload.extend_from_slice(&entry(id, "127.0.0.1:1"));
        }
        assert!(
            matches!(
                decode_frame(&frame_bytes(&payload)),
                Err(FrameError::Malformed { .. })
            ),
            "unsorted shard ids {ids:?} were not rejected"
        );
    }

    // Address length prefix pointing past the end of the payload.
    let mut payload = 9u64.to_le_bytes().to_vec();
    payload.extend_from_slice(&1u32.to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes());
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // addr "length"
    assert!(
        matches!(
            decode_frame(&frame_bytes(&payload)),
            Err(FrameError::Truncated { .. } | FrameError::Malformed { .. })
        ),
        "runaway address length was not rejected"
    );
}

/// Trace trailers ride after every *request* payload. Sweep every
/// truncation boundary of every traced request: stream truncation must
/// stay retryable `Incomplete`, an in-frame cut through the trailer
/// must be a typed error, and the intact trailer must round-trip the
/// context exactly.
#[test]
fn trace_trailer_truncation_at_every_boundary_is_typed() {
    let ctx = TraceContext::root(0xC0FFEE, 1);
    for frame in exemplars().into_iter().filter(Frame::is_request) {
        let full = frame.to_bytes_traced(&ctx);
        let plain_len = frame.to_bytes().len();
        for cut in 0..full.len() {
            assert!(
                matches!(
                    decode_frame(&full[..cut]),
                    Err(FrameError::Incomplete { .. })
                ),
                "{frame:?} stream cut at {cut} was not retryable"
            );
        }
        // Shrink the length prefix so the frame *claims* to end inside
        // the trailer (cutting at `plain_len` exactly removes it — a
        // legal untraced frame).
        for cut in plain_len + 1..full.len() {
            let mut bytes = full[..cut].to_vec();
            let len = (bytes.len() - 4) as u32;
            bytes[..4].copy_from_slice(&len.to_le_bytes());
            match decode_frame(&bytes) {
                Err(FrameError::TrailingBytes { .. } | FrameError::Malformed { .. }) => {}
                other => panic!("{frame:?} trailer cut at {cut}: {other:?}"),
            }
        }
        let (decoded, got, used) =
            decode_frame_traced(&full, HARD_MAX_FRAME_LEN).expect("intact traced frame");
        assert_eq!(decoded, frame);
        assert_eq!(got, Some(ctx), "{frame:?} lost its context");
        assert_eq!(used, full.len());
    }
}

/// Every (claimed length, actual length) mismatch across the trailer
/// length byte's full range: nothing panics, nothing desyncs, and only
/// a self-consistent trailer ever decodes.
#[test]
fn hostile_trailer_lengths_never_panic_or_desync() {
    let base = Frame::Ping.to_bytes();
    for claim in 0u8..=255 {
        for actual in [0usize, 1, 3, 16, 17, 18, 32, 255] {
            let mut bytes = base.clone();
            bytes.push(TRACE_TRAILER_VERSION);
            bytes.push(claim);
            bytes.extend(std::iter::repeat_n(0x5Au8, actual));
            let len = (bytes.len() - 4) as u32;
            bytes[..4].copy_from_slice(&len.to_le_bytes());
            match decode_frame_traced(&bytes, HARD_MAX_FRAME_LEN) {
                Ok((frame, ctx, used)) => {
                    // Only the self-consistent v1 trailer parses to a
                    // context (0x5A body → non-zero trace id).
                    assert_eq!(usize::from(claim), actual, "inconsistent trailer accepted");
                    assert_eq!(claim, TRACE_TRAILER_V1_LEN, "wrong v1 length accepted");
                    assert_eq!(frame, Frame::Ping);
                    assert!(ctx.is_some());
                    assert_eq!(used, bytes.len());
                }
                Err(FrameError::TrailingBytes { .. } | FrameError::Malformed { .. }) => {}
                other => panic!("claim {claim} actual {actual}: {other:?}"),
            }
        }
    }
}

/// A structurally sound trailer of any *future* version must be
/// skipped, not rejected: an old server keeps serving a newer client.
/// Only the length-consistency rule is enforced.
#[test]
fn unknown_trailer_versions_are_skipped_not_rejected() {
    for version in (0u8..=255).filter(|v| *v != TRACE_TRAILER_VERSION) {
        for body_len in [0usize, 1, 17, 64, 255] {
            let mut bytes = Frame::Tick { rounds: 3 }.to_bytes();
            bytes.push(version);
            bytes.push(body_len as u8);
            bytes.extend(std::iter::repeat_n(0xEEu8, body_len));
            let len = (bytes.len() - 4) as u32;
            bytes[..4].copy_from_slice(&len.to_le_bytes());
            let (frame, ctx, used) = decode_frame_traced(&bytes, HARD_MAX_FRAME_LEN)
                .unwrap_or_else(|e| {
                    panic!("future trailer v{version} ({body_len}B) rejected: {e:?}")
                });
            assert_eq!(frame, Frame::Tick { rounds: 3 });
            assert_eq!(ctx, None, "uninterpretable trailer produced a context");
            assert_eq!(used, bytes.len());
        }
    }
}

proptest! {
    /// Arbitrary profiler snapshots round-trip exactly through the
    /// `ProfileReply` encoding (names, samples, and every count), and
    /// re-encoding is byte-identical — the canonical-form property the
    /// harness `profile-conserves` byte-identity check leans on.
    #[test]
    fn arbitrary_profile_replies_round_trip(
        at_ns in any::<u64>(),
        rounds in any::<u64>(),
        threads in proptest::collection::vec(
            ("[a-z0-9-]{1,24}", any::<u64>(), proptest::collection::vec(any::<u64>(), 0..12)),
            0..6,
        ),
    ) {
        let profile = ProfileSnapshot {
            at_ns,
            rounds,
            threads: threads
                .into_iter()
                .map(|(name, samples, counts)| ThreadProfile { name, samples, counts })
                .collect(),
        };
        let frame = Frame::ProfileReply { profile };
        let bytes = frame.to_bytes();
        let (decoded, used) = decode_frame(&bytes).expect("round trip");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(&decoded.to_bytes(), &bytes);
        prop_assert_eq!(decoded, frame);
    }

    /// Arbitrary byte soup: decode returns, never panics, and any
    /// successful decode consumes no more than the buffer.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok((_, used)) = decode_frame(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    /// Byte soup stamped with a valid header prefix reaches the payload
    /// parsers; they too must never panic.
    #[test]
    fn framed_byte_soup_never_panics(
        tag in 0u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        buf.extend_from_slice(&(2 + payload.len() as u32).to_le_bytes());
        buf.push(PROTOCOL_VERSION);
        buf.push(tag);
        buf.extend_from_slice(&payload);
        match decode_frame(&buf) {
            Ok((_, used)) => prop_assert_eq!(used, buf.len()),
            Err(FrameError::Incomplete { .. }) => {
                prop_assert!(false, "complete frame reported Incomplete");
            }
            Err(_) => {}
        }
    }
}
