//! Edge cases of the event-loop serving core that a thread-per-
//! connection server gets "for free" from blocking I/O and the reactor
//! must earn explicitly: partial frames trickling in across many
//! readiness events (slow loris), a peer vanishing mid-frame, and
//! response queues wedged behind a client that writes but does not
//! read (`EAGAIN` on write with a half-flushed queue).

use cmsim::{CmServer, ServerConfig, SharedServer};
use scaddar_net::{
    decode_frame_limited, ErrorCode, Frame, FrameError, NetClient, NetServerConfig, Scaddard,
    ServerMode,
};
use scaddar_obs::{MonotonicClock, Registry, Tracer};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn boot(config: NetServerConfig) -> Scaddard {
    let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(7)).unwrap();
    server.add_object(50_000).unwrap();
    let registry = Registry::new();
    let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
    Scaddard::bind(
        "127.0.0.1:0",
        Arc::new(SharedServer::new(server)),
        config.with_mode(ServerMode::EventLoop),
        &registry,
        tracer,
    )
    .unwrap()
}

/// Reads exactly one frame off a raw stream (no client-side timeout
/// management — callers set one on the socket when they need it).
fn read_one_frame(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<Frame, FrameError> {
    let mut chunk = [0u8; 4096];
    loop {
        match decode_frame_limited(buf, 16 << 20) {
            Ok((frame, used)) => {
                buf.drain(..used);
                return Ok(frame);
            }
            Err(FrameError::Incomplete { .. }) => {}
            Err(e) => return Err(e),
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(
            n > 0,
            "server closed mid-frame: {} buffered bytes",
            buf.len()
        );
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[test]
fn slow_loris_byte_at_a_time_still_gets_served() {
    let daemon = boot(NetServerConfig::default());
    let mut stream = TcpStream::connect(daemon.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let request = Frame::Locate {
        object: 0,
        block: 42,
    }
    .to_bytes();
    // One byte per write: every byte is its own readiness event, so the
    // decoder must resume from a buffered partial frame dozens of times.
    for byte in &request {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut buf = Vec::new();
    let frame = read_one_frame(&mut stream, &mut buf).unwrap();
    let Frame::Located { epoch, disks, disk } = frame else {
        panic!("expected Located, got {frame:?}");
    };
    assert_eq!((epoch, disks), (0, 4));
    assert!(disk < 4);
    daemon.shutdown();
}

#[test]
fn stalled_partial_frame_hits_the_read_deadline() {
    let daemon = boot(NetServerConfig {
        read_timeout: Duration::from_millis(150),
        ..NetServerConfig::default()
    });
    let mut stream = TcpStream::connect(daemon.local_addr()).unwrap();
    let request = Frame::Locate {
        object: 0,
        block: 42,
    }
    .to_bytes();
    // Send half a frame, then stall forever.
    stream.write_all(&request[..request.len() / 2]).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let start = Instant::now();
    // The server must give up on us: a best-effort BadRequest error
    // frame and/or a close, well before our own 5 s read timeout.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let closed = loop {
        match stream.read(&mut chunk) {
            Ok(0) => break true,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                break false
            }
            Err(e) if e.kind() == ErrorKind::ConnectionReset => break true,
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    assert!(closed, "server never closed the stalled connection");
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "deadline enforcement took {:?}",
        start.elapsed()
    );
    if let Ok((frame, _)) = decode_frame_limited(&buf, 16 << 20) {
        let Frame::Error { code, .. } = frame else {
            panic!("expected Error before close, got {frame:?}");
        };
        assert_eq!(code, ErrorCode::BadRequest);
    }
    daemon.shutdown();
}

#[test]
fn mid_frame_disconnect_leaves_the_server_healthy() {
    let daemon = boot(NetServerConfig::default());
    let addr = daemon.local_addr();
    for _ in 0..8 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = Frame::LocateBatch {
            object: 0,
            blocks: (0..512).collect(),
        }
        .to_bytes();
        stream.write_all(&request[..request.len() - 3]).unwrap();
        drop(stream); // vanish mid-frame
    }
    // The reactor must have reaped all eight without wedging a worker.
    let client = NetClient::connect(addr);
    assert_eq!(client.ping().expect("server still serving"), 0);
    let (_, _, locations) = client.locate_batch(0, &[1, 2, 3]).unwrap();
    assert_eq!(locations.len(), 3);
    daemon.shutdown();
}

#[test]
fn garbage_input_gets_a_protocol_error_then_a_close() {
    let daemon = boot(NetServerConfig::default());
    let mut stream = TcpStream::connect(daemon.local_addr()).unwrap();
    stream.write_all(&[0xFF; 64]).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = Vec::new();
    let frame = read_one_frame(&mut stream, &mut buf).unwrap();
    let Frame::Error { code, .. } = frame else {
        panic!("expected Error, got {frame:?}");
    };
    assert_eq!(code, ErrorCode::Protocol);
    // And then EOF: a framing error is unrecoverable mid-stream.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    daemon.shutdown();
}

#[test]
fn half_flushed_response_queue_survives_eagain_and_backpressure() {
    // Small frame cap so the reactor's write high-water mark
    // (4 × max_frame_len = 256 KiB) trips long before the kernel's
    // socket buffers could hide the backlog.
    let daemon = boot(NetServerConfig {
        max_frame_len: 1 << 16,
        ..NetServerConfig::default()
    });
    const REQUESTS: usize = 150;
    const BATCH: u64 = 2_048;
    let mut stream = TcpStream::connect(daemon.local_addr()).unwrap();
    let mut reader = stream.try_clone().unwrap();

    // Writer: pipeline ~150 × ≈16 KiB responses (≈2.4 MiB total)
    // without reading a byte. The server's write hits EAGAIN, queues
    // the rest, suspends reading from us past high water, and must
    // resume cleanly as we drain.
    let writer = std::thread::spawn(move || {
        for i in 0..REQUESTS as u64 {
            let start = (i * 97) % 40_000;
            let frame = Frame::LocateBatch {
                object: 0,
                blocks: (start..start + BATCH).collect(),
            };
            stream.write_all(&frame.to_bytes()).unwrap();
        }
        stream
    });

    // Let the response queue actually wedge before we start draining.
    std::thread::sleep(Duration::from_millis(100));
    let mut buf = Vec::new();
    let mut epochs = Vec::with_capacity(REQUESTS);
    for i in 0..REQUESTS {
        let frame = read_one_frame(&mut reader, &mut buf).unwrap();
        let Frame::BatchLocated {
            epoch, locations, ..
        } = frame
        else {
            panic!("response {i}: expected BatchLocated, got {frame:?}");
        };
        assert_eq!(locations.len(), BATCH as usize, "response {i} truncated");
        epochs.push(epoch);
    }
    let stream = writer.join().unwrap();
    drop(stream);
    // No interleaving corruption: every response complete, in order,
    // all at the same (unscaled) epoch.
    assert!(epochs.iter().all(|&e| e == 0));
    daemon.shutdown();
}
