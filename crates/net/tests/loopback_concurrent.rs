//! Extends `cmsim::concurrent`'s in-process guarantee across the
//! socket boundary: 64 client threads hammer `LocateBatch` over
//! loopback while an operator thread commits `Scale` ops mid-run, and
//! every response must be epoch-consistent — each batch served entirely
//! at one epoch, each epoch mapping to exactly one disk count, no
//! location outside that epoch's array, and per-connection epochs never
//! running backwards.

use cmsim::{CmServer, ServerConfig, SharedServer};
use scaddar_core::ScalingOp;
use scaddar_net::{NetClient, NetServerConfig, Scaddard};
use scaddar_obs::{MonotonicClock, Registry, Tracer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CLIENTS: usize = 64;
const BATCHES_PER_CLIENT: u64 = 24;
const BATCH_LEN: u64 = 16;
const OBJECT_BLOCKS: u64 = 20_000;
const SCALE_OPS: u64 = 2;

#[test]
fn sixty_four_clients_see_no_torn_epochs_through_scale_commits() {
    let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(0xD15C)).unwrap();
    server.add_object(OBJECT_BLOCKS).unwrap();
    let registry = Registry::new();
    let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
    let daemon = Scaddard::bind(
        "127.0.0.1:0",
        Arc::new(SharedServer::new(server)),
        NetServerConfig::default(),
        &registry,
        tracer,
    )
    .unwrap();
    let addr = daemon.local_addr();

    let progress = AtomicU64::new(0);
    let total = CLIENTS as u64 * BATCHES_PER_CLIENT;
    // (epoch, disks, max location) per response, gathered per thread.
    let observations: Vec<Vec<(u64, u32, u64)>> = std::thread::scope(|scope| {
        let progress = &progress;
        let operator = scope.spawn(move || {
            // Commit each op once a slice of the run has completed, so
            // scaling genuinely lands mid-traffic.
            let client = NetClient::connect(addr);
            for i in 0..SCALE_OPS {
                let gate = total * (i + 1) / (SCALE_OPS + 1);
                while progress.load(Ordering::Relaxed) < gate {
                    std::thread::yield_now();
                }
                let op = if i % 2 == 0 {
                    ScalingOp::Add { count: 2 }
                } else {
                    ScalingOp::Remove { disks: vec![1] }
                };
                client.scale(op).expect("scale commit");
                while client.tick(500).expect("tick") > 0 {}
            }
        });
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let client = NetClient::connect(addr);
                    let mut seen = Vec::with_capacity(BATCHES_PER_CLIENT as usize);
                    for i in 0..BATCHES_PER_CLIENT {
                        let start = (c as u64 * 131 + i * 17) % (OBJECT_BLOCKS - BATCH_LEN);
                        let blocks: Vec<u64> = (start..start + BATCH_LEN).collect();
                        let (epoch, disks, locations) =
                            client.locate_batch(0, &blocks).expect("batch");
                        assert_eq!(locations.len(), blocks.len());
                        let max = locations.iter().copied().max().unwrap();
                        seen.push((epoch, disks, max));
                        progress.fetch_add(1, Ordering::Relaxed);
                    }
                    seen
                })
            })
            .collect();
        let result = handles.into_iter().map(|h| h.join().unwrap()).collect();
        operator.join().unwrap();
        result
    });

    // Every location fits the disk count of the epoch it was served at.
    for (epoch, disks, max) in observations.iter().flatten() {
        assert!(
            max < &u64::from(*disks),
            "epoch {epoch}: location {max} outside {disks}-disk array"
        );
    }
    // One epoch, one array shape — a torn batch would pair an epoch
    // with the wrong disk count.
    let mut shape: HashMap<u64, u32> = HashMap::new();
    for (epoch, disks, _) in observations.iter().flatten() {
        let entry = shape.entry(*epoch).or_insert(*disks);
        assert_eq!(
            entry, disks,
            "epoch {epoch} served with both {entry} and {disks} disks"
        );
    }
    // Per connection, the serving epoch never runs backwards (requests
    // on one connection are handled in order under the shared lock).
    for per_client in &observations {
        for pair in per_client.windows(2) {
            assert!(
                pair[0].0 <= pair[1].0,
                "epoch ran backwards on one connection: {pair:?}"
            );
        }
    }
    // The scaling really happened mid-run: multiple epochs observed.
    assert!(
        shape.len() > 1,
        "only epochs {:?} observed — scale ops never landed mid-traffic",
        shape.keys().collect::<Vec<_>>()
    );
    daemon.shutdown();
}
