//! Extends `cmsim::concurrent`'s in-process guarantee across the
//! socket boundary: 64 client threads hammer `LocateBatch` over
//! loopback while an operator thread commits `Scale` ops mid-run, and
//! every response must be epoch-consistent — each batch served entirely
//! at one epoch, each epoch mapping to exactly one disk count, every
//! location a member of that epoch's *physical* disk set (ids are
//! stable across removals, so the set is not `0..disks`), and
//! per-connection epochs never running backwards.
//!
//! Runs against **both** serving cores: the thread-per-connection
//! reference and the event-loop reactor (whose cross-connection
//! coalescing must not reorder a connection's responses around a
//! `Scale` barrier).

use cmsim::{CmServer, ServerConfig, SharedServer};
use scaddar_core::ScalingOp;
use scaddar_net::{NetClient, NetServerConfig, Scaddard, ServerMode};
use scaddar_obs::{MonotonicClock, Registry, Tracer};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CLIENTS: usize = 64;
const BATCHES_PER_CLIENT: u64 = 24;
const BATCH_LEN: u64 = 16;
const OBJECT_BLOCKS: u64 = 20_000;
const SCALE_OPS: u64 = 2;

/// Physical disk ids live at each epoch of the fixed schedule: 4
/// initial disks, then `Add {count: 2}`, then `Remove {disks: [1]}`.
/// Additions mint fresh ids; removals drop the victim's *stable* id,
/// so epoch 2 is `{0, 2, 3, 4, 5}` — five disks whose max id is 5.
fn physical_set_at(epoch: u64) -> HashSet<u64> {
    match epoch {
        0 => (0..4).collect(),
        1 => (0..6).collect(),
        2 => [0, 2, 3, 4, 5].into_iter().collect(),
        _ => panic!("schedule has only {SCALE_OPS} ops, saw epoch {epoch}"),
    }
}

fn no_torn_epochs_through_scale_commits(mode: ServerMode) {
    let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(0xD15C)).unwrap();
    server.add_object(OBJECT_BLOCKS).unwrap();
    let registry = Registry::new();
    let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
    let daemon = Scaddard::bind(
        "127.0.0.1:0",
        Arc::new(SharedServer::new(server)),
        NetServerConfig::default().with_mode(mode),
        &registry,
        tracer,
    )
    .unwrap();
    let addr = daemon.local_addr();

    let progress = AtomicU64::new(0);
    let total = CLIENTS as u64 * BATCHES_PER_CLIENT;
    // (epoch, disks, locations) per response, gathered per thread.
    let observations: Vec<Vec<(u64, u32, Vec<u64>)>> = std::thread::scope(|scope| {
        let progress = &progress;
        let operator = scope.spawn(move || {
            // Commit each op once a slice of the run has completed, so
            // scaling genuinely lands mid-traffic.
            let client = NetClient::connect(addr);
            for i in 0..SCALE_OPS {
                let gate = total * (i + 1) / (SCALE_OPS + 1);
                while progress.load(Ordering::Relaxed) < gate {
                    std::thread::yield_now();
                }
                let op = if i % 2 == 0 {
                    ScalingOp::Add { count: 2 }
                } else {
                    ScalingOp::Remove { disks: vec![1] }
                };
                client.scale(op).expect("scale commit");
                while client.tick(500).expect("tick") > 0 {}
            }
        });
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let client = NetClient::connect(addr);
                    let mut seen = Vec::with_capacity(BATCHES_PER_CLIENT as usize);
                    for i in 0..BATCHES_PER_CLIENT {
                        let start = (c as u64 * 131 + i * 17) % (OBJECT_BLOCKS - BATCH_LEN);
                        let blocks: Vec<u64> = (start..start + BATCH_LEN).collect();
                        let (epoch, disks, locations) =
                            client.locate_batch(0, &blocks).expect("batch");
                        assert_eq!(locations.len(), blocks.len());
                        seen.push((epoch, disks, locations));
                        progress.fetch_add(1, Ordering::Relaxed);
                    }
                    seen
                })
            })
            .collect();
        let result = handles.into_iter().map(|h| h.join().unwrap()).collect();
        operator.join().unwrap();
        result
    });

    // Every location is a live physical disk of the epoch it was
    // served at — a torn batch would leak a location from the wrong
    // epoch's array (e.g. the removed disk, or an id past the old max).
    for (epoch, _, locations) in observations.iter().flatten() {
        let live = physical_set_at(*epoch);
        for loc in locations {
            assert!(
                live.contains(loc),
                "epoch {epoch}: location {loc} outside live set {live:?}"
            );
        }
    }
    // One epoch, one array shape — a torn batch would pair an epoch
    // with the wrong disk count.
    let mut shape: HashMap<u64, u32> = HashMap::new();
    for (epoch, disks, _) in observations.iter().flatten() {
        assert_eq!(
            *disks,
            physical_set_at(*epoch).len() as u32,
            "epoch {epoch} served with {disks} disks"
        );
        let entry = shape.entry(*epoch).or_insert(*disks);
        assert_eq!(
            entry, disks,
            "epoch {epoch} served with both {entry} and {disks} disks"
        );
    }
    // Per connection, the serving epoch never runs backwards (requests
    // on one connection are answered in order, even when the event loop
    // coalesces lookups across connections).
    for per_client in &observations {
        for pair in per_client.windows(2) {
            assert!(
                pair[0].0 <= pair[1].0,
                "epoch ran backwards on one connection: {:?} then {:?}",
                (pair[0].0, pair[0].1),
                (pair[1].0, pair[1].1),
            );
        }
    }
    // The scaling really happened mid-run: multiple epochs observed.
    assert!(
        shape.len() > 1,
        "only epochs {:?} observed — scale ops never landed mid-traffic",
        shape.keys().collect::<Vec<_>>()
    );
    daemon.shutdown();
}

#[test]
fn sixty_four_clients_see_no_torn_epochs_event_loop() {
    no_torn_epochs_through_scale_commits(ServerMode::EventLoop);
}

#[test]
fn sixty_four_clients_see_no_torn_epochs_threaded() {
    no_torn_epochs_through_scale_commits(ServerMode::Threaded);
}
