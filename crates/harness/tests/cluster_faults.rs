//! Cluster fault battery: seeded kill/partition/restart scenarios
//! against a real loopback multi-shard cluster, mirroring the
//! `reactor_edge` discipline — every scenario is deterministic, every
//! trace byte-identical per seed, and every claim checked against the
//! harness's independent jump-hash routing model.
//!
//! The named scenarios cover the four fault shapes the cluster design
//! calls out: a shard crash in the middle of a migration, a network
//! partition during map propagation, a stale-map client retry storm,
//! and a restart-from-snapshot rejoin.

use scaddar_cluster::{Cluster, ClusterConfig};
use scaddar_harness::cluster::{execute, minimize, ClusterMutation, ClusterScenario, ClusterStep};
use scaddar_net::ClusterClient;

/// Hand-built scenario: the executor normalizes picks against live
/// topology, so these step lists are exact.
fn scenario(seed: u64, shards: u32, objects: u64, steps: Vec<ClusterStep>) -> ClusterScenario {
    ClusterScenario {
        seed,
        initial_shards: shards,
        initial_objects: objects,
        steps,
    }
}

/// A shard dies, a scale-out runs *while it is down* (the migration
/// copies through the engines, which survive the daemon), and the dead
/// shard rejoins from its snapshot — invariants green throughout.
#[test]
fn shard_crash_mid_migration() {
    let s = scenario(
        0xC4A5,
        3,
        48,
        vec![
            ClusterStep::Load { requests: 11 },
            ClusterStep::Kill { pick: 1 },
            ClusterStep::AddShard,
            ClusterStep::Load { requests: 15 },
            ClusterStep::Restart,
            ClusterStep::Load { requests: 15 },
        ],
    );
    let outcome = execute(&s, ClusterMutation::None);
    assert!(outcome.passed(), "trace:\n{}", outcome.trace);
    assert!(outcome.trace.contains("shard 1 down"));
    assert!(outcome.trace.contains("joined"));
    assert!(outcome.trace.contains("shard 1 rejoined"));
}

/// A partitioned shard misses the map install for a scale-out: it
/// keeps serving its residents by the stale map, the rest of the
/// cluster routes by the new one, and no object is ever served twice.
/// After the heal it catches up to the current epoch.
#[test]
fn network_partition_during_map_propagation() {
    let s = scenario(
        0x9A87,
        3,
        40,
        vec![
            ClusterStep::Partition { pick: 0 },
            ClusterStep::AddShard,
            ClusterStep::Load { requests: 19 },
            ClusterStep::Heal,
            ClusterStep::Load { requests: 19 },
        ],
    );
    let outcome = execute(&s, ClusterMutation::None);
    assert!(outcome.passed(), "trace:\n{}", outcome.trace);
    assert!(outcome.trace.contains("partitioned"));
    assert!(outcome.trace.contains("healed"));
}

/// Stale-map retry storm, driven directly: a client connects, the
/// topology then changes twice behind its back (scale-out + drain of
/// an original shard), and a burst of lookups must all land via
/// `WrongShard`/`StaleMap` chasing — bounces and refreshes observed,
/// zero routing errors.
#[test]
fn stale_map_client_retry_storm() {
    let mut cluster = Cluster::boot(ClusterConfig {
        shards: 3,
        blocks_per_object: 300,
        catalog_seed: 0x57A1E,
        ..ClusterConfig::default()
    })
    .expect("boot");
    cluster.populate(48).expect("populate");
    let client = ClusterClient::connect(&cluster.seeds()).expect("connect");
    // Warm the client on the v1 map.
    for gid in cluster.object_ids().into_iter().take(8) {
        client.locate(gid, 0).expect("warm lookup");
    }
    let stale_version = client.map_version();

    // Topology churns behind the client's back.
    cluster.add_shard().expect("add shard");
    cluster.remove_shard(0).expect("drain shard 0");
    assert!(cluster.map().version > stale_version);

    // The storm: every object looked up through the stale map. Each
    // lookup must converge on the current owner.
    for gid in cluster.object_ids() {
        let answer = client.locate(gid, 2).expect("storm lookup");
        assert_eq!(
            Some(answer.shard),
            cluster.map().route(gid),
            "object {gid} landed on the wrong shard"
        );
        assert_ne!(answer.shard, 0, "drained shard must not serve");
    }
    let (_, bounces, stale, refreshes, errors) = client.stats_snapshot();
    assert!(
        bounces + stale > 0,
        "storm must have hit redirects (bounces={bounces}, stale={stale})"
    );
    assert!(refreshes >= 1, "client must have refreshed its map");
    assert_eq!(errors, 0, "no lookup may exhaust its retries");
    assert_eq!(client.map_version(), cluster.map().version);
    cluster.shutdown();
}

/// Kill → serve degraded → restart-from-snapshot → serve fully: the
/// rejoined shard answers with placements identical to before the
/// crash (same engine epoch, same disks), which the routed loads and
/// the epoch-single sweeps in the executor verify.
#[test]
fn restart_from_snapshot_rejoin() {
    let s = scenario(
        0xBEA7,
        2,
        32,
        vec![
            ClusterStep::Load { requests: 9 },
            ClusterStep::Kill { pick: 0 },
            ClusterStep::Load { requests: 9 },
            ClusterStep::Restart,
            ClusterStep::Load { requests: 21 },
            ClusterStep::Ingest { count: 3 },
            ClusterStep::Load { requests: 9 },
        ],
    );
    let outcome = execute(&s, ClusterMutation::None);
    assert!(outcome.passed(), "trace:\n{}", outcome.trace);
    assert!(outcome.trace.contains("down"));
    assert!(outcome.trace.contains("rejoined"));
}

/// Every named scenario, executed twice: the trace is byte-identical —
/// the property that makes a CI failure replayable from just the seed.
#[test]
fn fault_scenario_traces_are_byte_identical() {
    let scenarios = [
        scenario(
            0xC4A5,
            3,
            48,
            vec![
                ClusterStep::Kill { pick: 1 },
                ClusterStep::AddShard,
                ClusterStep::Restart,
                ClusterStep::Load { requests: 11 },
            ],
        ),
        scenario(
            0x9A87,
            3,
            40,
            vec![
                ClusterStep::Partition { pick: 0 },
                ClusterStep::AddShard,
                ClusterStep::Heal,
                ClusterStep::Load { requests: 7 },
            ],
        ),
    ];
    for s in &scenarios {
        let a = execute(s, ClusterMutation::None);
        let b = execute(s, ClusterMutation::None);
        assert_eq!(a.trace, b.trace, "seed {} trace must be stable", s.seed);
        assert!(a.passed(), "seed {}:\n{}", s.seed, a.trace);
    }
}

/// Generated seeds pass clean and reproduce byte-identically — the
/// randomized battery the CI cluster job runs wider.
#[test]
fn generated_cluster_seeds_pass_and_reproduce() {
    for seed in 40..44u64 {
        let s = ClusterScenario::generate(seed);
        let a = execute(&s, ClusterMutation::None);
        assert!(a.passed(), "seed {seed}:\n{}", a.trace);
        let b = execute(&s, ClusterMutation::None);
        assert_eq!(a.trace, b.trace, "seed {seed}");
    }
}

/// The acceptance criterion for the cluster shrinker: the planted
/// routing bug (model ignores the newest shard) is caught — by
/// `cluster-routing-agree` on a load step or by
/// `cluster-migration-delta` on a topology step, since the mutated
/// route perturbs both the lookup verdicts and the predicted delta —
/// and delta-debugged to a minimal reproducer with at most one
/// topology op and a handful of steps.
#[test]
fn planted_route_bug_is_caught_and_shrunk() {
    for seed in 0..24u64 {
        let s = ClusterScenario::generate(seed);
        let outcome = execute(&s, ClusterMutation::RouteIgnoreNewestShard);
        let Some(failure) = &outcome.failure else {
            continue; // this seed's loads never sampled a diverging object
        };
        assert!(
            failure.invariant == "cluster-routing-agree"
                || failure.invariant == "cluster-migration-delta",
            "seed {seed}: unexpected invariant {}",
            failure.invariant
        );
        let shrunk = minimize(
            &s,
            ClusterMutation::RouteIgnoreNewestShard,
            failure.invariant,
        );
        assert!(!shrunk.outcome.passed());
        assert!(
            shrunk.scenario.topology_ops() <= 1,
            "seed {seed}: shrunk to {} topology ops\n{}",
            shrunk.scenario.topology_ops(),
            shrunk.scenario.describe()
        );
        assert!(
            shrunk.scenario.steps.len() <= 3,
            "seed {seed}: shrunk to {} steps\n{}",
            shrunk.scenario.steps.len(),
            shrunk.scenario.describe()
        );
        return; // one full catch-and-shrink is plenty for CI time
    }
    panic!("no seed in 0..24 tripped the planted routing bug");
}
