//! Net-facing smoke scenario: boot a `scaddard` daemon on an ephemeral
//! loopback port, drive it with the seeded load generator (locate +
//! batch + mid-run scale commits), and assert the run was clean — zero
//! protocol errors, zero epoch-consistency violations, scaling observed
//! mid-traffic — and that the engine behind the socket still satisfies
//! the in-process invariants the harness pins down (residency
//! consistent, zero stream hiccups). Runs once per serving core: the
//! event-loop reactor (the default) and the thread-per-connection
//! reference. CI's `net-smoke` job runs the release-mode cousin of this
//! via `scaddard-load --mode both`.

use cmsim::{CmServer, ServerConfig, SharedServer};
use scaddar_net::{LoadConfig, NetServerConfig, Scaddard, ServerMode};
use scaddar_obs::{MonotonicClock, Registry, Tracer};
use std::sync::Arc;

fn smoke(mode: ServerMode) {
    let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(0x5E6E)).unwrap();
    server.add_object(10_000).unwrap();
    let shared = Arc::new(SharedServer::new(server));
    let registry = Registry::new();
    let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 128);
    let daemon = Scaddard::bind(
        "127.0.0.1:0",
        Arc::clone(&shared),
        NetServerConfig::default().with_mode(mode),
        &registry,
        tracer,
    )
    .unwrap();

    let report = scaddar_net::run_load(
        daemon.local_addr(),
        &LoadConfig {
            seed: 0x5E6E,
            clients: 8,
            requests_per_client: 120,
            object_blocks: 10_000,
            scale_ops: 2,
            ..LoadConfig::default()
        },
    );

    assert_eq!(report.protocol_errors, 0, "protocol errors over loopback");
    assert_eq!(report.errors, 0, "typed error responses during clean load");
    assert_eq!(
        report.consistency_violations, 0,
        "torn epochs observed across the socket"
    );
    assert!(
        report.epochs_observed > 1,
        "scale commits never landed mid-traffic"
    );
    assert_eq!(report.requests, 8 * 120);
    assert!(report.locate.count > 0 && report.locate_batch.count > 0);
    assert!(report.locate.p999 >= report.locate.p50);

    // The server-side ledger agrees with the client-side run.
    let text = registry.render_prometheus();
    assert!(text.contains("net_server_requests_total{endpoint=\"locate\"}"));
    assert!(text.contains("net_server_requests_total{endpoint=\"scale\"} 2"));
    assert!(text.contains("# TYPE net_server_request_ns histogram"));

    // Serving over a socket must not have bent the in-process story:
    // drain any leftover backlog, then the harness-grade invariants hold.
    daemon.shutdown();
    shared.with_write(|s| {
        while s.backlog() > 0 {
            s.tick();
        }
    });
    shared.with_read(|s| {
        assert!(
            s.residency_consistent(),
            "residency diverged from placement"
        );
        assert_eq!(s.metrics().total_hiccups(), 0, "streams hiccuped");
    });
}

#[test]
fn seeded_loopback_load_is_clean_and_preserves_engine_invariants() {
    smoke(ServerMode::EventLoop);
}

#[test]
fn seeded_loopback_load_is_clean_on_the_threaded_reference() {
    smoke(ServerMode::Threaded);
}
