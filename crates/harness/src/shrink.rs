//! Greedy scenario minimization: given a failing scenario, find a
//! smaller one that fails the *same* invariant.
//!
//! Delta-debugging over the scenario structure — drop step spans, drop
//! faults, simplify scaling operations, shrink sizes — using the
//! numeric/sequence candidate generators from the `proptest` shim
//! ([`proptest::shrink`]), so the harness and the property tests share
//! one shrinking vocabulary. Each candidate is re-executed; the first
//! one that still fails with the same invariant is adopted and the pass
//! restarts, until a fixpoint or the execution budget is reached.

use crate::exec::{self, Outcome};
use crate::scenario::{Mutation, Scenario, Step};
use proptest::shrink::{halvings, removal_spans};

/// Execution budget for one shrink run. Shrunk scenarios are small and
/// execute in milliseconds, so this stays well under the 60 s the
/// planted-bug acceptance criterion allows.
const BUDGET: usize = 600;

/// The result of minimizing a failing scenario.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimal scenario found (fails the same invariant).
    pub scenario: Scenario,
    /// Its outcome (kept so callers can print the failing trace).
    pub outcome: Outcome,
    /// Number of candidate executions spent.
    pub executions: usize,
    /// Number of adopted shrink steps.
    pub adopted: usize,
}

/// Minimizes `scenario`, which must fail under `mutation` with the
/// invariant named `invariant`.
pub fn minimize(scenario: &Scenario, mutation: Mutation, invariant: &str) -> Shrunk {
    let mut current = scenario.clone();
    let mut outcome = exec::execute(&current, mutation);
    let mut executions = 1usize;
    let mut adopted = 0usize;
    debug_assert!(
        matches(&outcome, invariant),
        "caller must pass a failing scenario"
    );

    // Everything after the failing step is dead weight.
    if let Some(fs) = outcome.failed_step {
        if fs + 1 < current.steps.len() {
            current.steps.truncate(fs + 1);
            outcome = exec::execute(&current, mutation);
            executions += 1;
            adopted += 1;
        }
    }

    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            if executions >= BUDGET {
                return Shrunk {
                    scenario: current,
                    outcome,
                    executions,
                    adopted,
                };
            }
            let o = exec::execute(&candidate, mutation);
            executions += 1;
            if matches(&o, invariant) {
                current = candidate;
                outcome = o;
                adopted += 1;
                improved = true;
                break; // restart the pass from the smaller scenario
            }
        }
        if !improved {
            return Shrunk {
                scenario: current,
                outcome,
                executions,
                adopted,
            };
        }
    }
}

fn matches(outcome: &Outcome, invariant: &str) -> bool {
    outcome
        .failure
        .as_ref()
        .is_some_and(|f| f.invariant == invariant)
}

/// All one-edit-smaller candidates, most aggressive first.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();

    // 1. Drop spans of steps (halves first, then single steps).
    for (start, end) in removal_spans(s.steps.len(), 0, 16) {
        let mut c = s.clone();
        c.steps.drain(start..end);
        out.push(c);
    }

    // 2. Simplify individual steps.
    for (i, step) in s.steps.iter().enumerate() {
        match step {
            Step::Scale { op, faults } => {
                if !faults.is_empty() {
                    let mut c = s.clone();
                    c.steps[i] = Step::Scale {
                        op: op.clone(),
                        faults: Vec::new(),
                    };
                    out.push(c);
                    for k in 0..faults.len() {
                        let mut kept = faults.clone();
                        kept.remove(k);
                        let mut c = s.clone();
                        c.steps[i] = Step::Scale {
                            op: op.clone(),
                            faults: kept,
                        };
                        out.push(c);
                    }
                }
                for simpler in op.shrink_candidates() {
                    let mut c = s.clone();
                    c.steps[i] = Step::Scale {
                        op: simpler,
                        faults: faults.clone(),
                    };
                    out.push(c);
                }
            }
            Step::AddObject { blocks } => {
                for b in halvings(1, *blocks) {
                    let mut c = s.clone();
                    c.steps[i] = Step::AddObject { blocks: b };
                    out.push(c);
                }
            }
            Step::RemoveObject { pick } => {
                for p in halvings(0, *pick) {
                    let mut c = s.clone();
                    c.steps[i] = Step::RemoveObject { pick: p };
                    out.push(c);
                }
            }
            Step::Workload { rounds } => {
                for r in halvings(0, u64::from(*rounds)) {
                    let mut c = s.clone();
                    c.steps[i] = Step::Workload { rounds: r as u32 };
                    out.push(c);
                }
            }
            Step::Compact { kill } => {
                if kill.is_some() {
                    let mut c = s.clone();
                    c.steps[i] = Step::Compact { kill: None };
                    out.push(c);
                }
            }
        }
    }

    // 3. Drop initial objects (keep one) and shrink their sizes.
    if s.objects.len() > 1 {
        for k in 0..s.objects.len() {
            let mut c = s.clone();
            c.objects.remove(k);
            out.push(c);
        }
    }
    for (k, &size) in s.objects.iter().enumerate() {
        for smaller in halvings(1, size) {
            let mut c = s.clone();
            c.objects[k] = smaller;
            out.push(c);
        }
    }

    // 4. Shrink the initial array (never below the executor's floor).
    for d in halvings(2, u64::from(s.initial_disks)) {
        let mut c = s.clone();
        c.initial_disks = d as u32;
        out.push(c);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion: a planted RO1 off-by-one is caught and
    /// shrunk to at most 3 scaling operations, well inside the budget.
    #[test]
    fn planted_ro1_bug_shrinks_to_three_ops_or_fewer() {
        let mut caught = 0;
        for seed in 0..64u64 {
            let scenario = Scenario::generate(seed);
            let outcome = exec::execute(&scenario, Mutation::Ro1AddOffByOne);
            let Some(failure) = &outcome.failure else {
                continue; // this seed's history never hit the boundary draw
            };
            assert_eq!(failure.invariant, "ro1-model", "seed {seed}");
            let shrunk = minimize(&scenario, Mutation::Ro1AddOffByOne, failure.invariant);
            assert!(
                shrunk.scenario.scale_ops() <= 3,
                "seed {seed}: shrunk to {} scale ops\n{}",
                shrunk.scenario.scale_ops(),
                shrunk.scenario.describe()
            );
            assert!(!shrunk.outcome.passed());
            caught += 1;
            if caught >= 3 {
                return; // three independent catches is plenty for CI time
            }
        }
        assert!(caught > 0, "no seed in 0..64 tripped the planted bug");
    }

    /// Delta-debugging composes with compaction: a failing scenario that
    /// also contains compact steps still minimizes (irrelevant compact
    /// steps drop out or lose their kill), and the reproducer still
    /// fails the same invariant.
    #[test]
    fn scenarios_with_compact_steps_still_shrink() {
        for seed in 0..200u64 {
            let scenario = Scenario::generate(seed);
            if !scenario
                .steps
                .iter()
                .any(|st| matches!(st, Step::Compact { .. }))
            {
                continue;
            }
            let outcome = exec::execute(&scenario, Mutation::Ro1AddOffByOne);
            let Some(failure) = &outcome.failure else {
                continue;
            };
            if failure.invariant != "ro1-model" {
                continue;
            }
            let shrunk = minimize(&scenario, Mutation::Ro1AddOffByOne, "ro1-model");
            assert!(!shrunk.outcome.passed());
            assert!(
                shrunk.scenario.scale_ops() <= 3,
                "seed {seed}: shrunk to {} scale ops\n{}",
                shrunk.scenario.scale_ops(),
                shrunk.scenario.describe()
            );
            return;
        }
        panic!("no failing seed with a compact step in 0..200");
    }

    /// Shrinking is deterministic: same input, same minimal scenario.
    #[test]
    fn minimization_is_deterministic() {
        for seed in 0..32u64 {
            let scenario = Scenario::generate(seed);
            let outcome = exec::execute(&scenario, Mutation::Ro1AddOffByOne);
            let Some(failure) = &outcome.failure else {
                continue;
            };
            let a = minimize(&scenario, Mutation::Ro1AddOffByOne, failure.invariant);
            let b = minimize(&scenario, Mutation::Ro1AddOffByOne, failure.invariant);
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.executions, b.executions);
            return;
        }
        panic!("no failing seed found in 0..32");
    }
}
