//! # scaddar-harness
//!
//! Deterministic seeded simulation tester for the SCADDAR stack, in the
//! FoundationDB style: one `u64` seed drives a generated scaling
//! history, object-catalog churn, workload phases, and an injected
//! fault plan; after every step an invariant catalog cross-checks the
//! engine against an independently evolved model, the reference REMAP
//! fold, the paper's RO1/RO2 guarantees, snapshot recovery, and the
//! concurrent server.
//!
//! On failure the scenario is shrunk to a minimal reproducer and the
//! report prints a one-line replay command:
//!
//! ```text
//! HARNESS_SEED=1234 cargo run --release -p scaddar-harness
//! ```
//!
//! Same seed, same binary → byte-identical trace. See `TESTING.md` at
//! the repository root for the invariant catalog and workflow.

pub mod cluster;
pub mod exec;
pub mod invariants;
pub mod model;
pub mod scenario;
pub mod shrink;

use exec::Outcome;
use scenario::{Mutation, Scenario};
use shrink::Shrunk;
use std::fmt::Write as _;

/// Everything one seed produced: the scenario, its outcome, and (on
/// failure) the minimized reproducer.
#[derive(Debug)]
pub struct RunReport {
    /// The driving seed.
    pub seed: u64,
    /// The generated scenario.
    pub scenario: Scenario,
    /// Execution outcome (trace + first failure).
    pub outcome: Outcome,
    /// Minimized reproducer, present iff the run failed.
    pub shrunk: Option<Shrunk>,
}

impl RunReport {
    /// Whether the seed passed every invariant.
    pub fn passed(&self) -> bool {
        self.outcome.passed()
    }

    /// Human-readable report. Deterministic for a given seed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(f) = &self.outcome.failure {
            let _ = writeln!(
                out,
                "seed {}: FAIL [{}] {}",
                self.seed, f.invariant, f.detail
            );
            let _ = writeln!(out, "full scenario:\n{}", self.scenario.describe());
            if let Some(shrunk) = &self.shrunk {
                let _ = writeln!(
                    out,
                    "minimal reproducer ({} executions, {} shrink steps, \
                     {} scale ops):\n{}",
                    shrunk.executions,
                    shrunk.adopted,
                    shrunk.scenario.scale_ops(),
                    shrunk.scenario.describe()
                );
                let _ = writeln!(out, "minimal trace:\n{}", shrunk.outcome.trace);
                let _ = writeln!(out, "minimal span timeline:\n{}", shrunk.outcome.spans);
            }
            let _ = writeln!(out, "span timeline:\n{}", self.outcome.spans);
            let _ = writeln!(
                out,
                "replay: HARNESS_SEED={} cargo run --release -p scaddar-harness",
                self.seed
            );
        } else {
            let _ = writeln!(
                out,
                "seed {}: PASS ({} steps, {} scale ops, {} health events, {} alerts)",
                self.seed,
                self.scenario.steps.len(),
                self.scenario.scale_ops(),
                self.outcome.health_events.lines().count(),
                self.outcome.health_alerts,
            );
        }
        out
    }
}

/// Runs one seed end to end: generate, execute, and (on failure)
/// minimize.
pub fn run_seed(seed: u64, mutation: Mutation) -> RunReport {
    let scenario = Scenario::generate(seed);
    let outcome = exec::execute(&scenario, mutation);
    let shrunk = outcome
        .failure
        .as_ref()
        .map(|f| shrink::minimize(&scenario, mutation, f.invariant));
    RunReport {
        seed,
        scenario,
        outcome,
        shrunk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_seed_is_bit_reproducible() {
        for seed in [0u64, 99, 31_337] {
            let a = run_seed(seed, Mutation::None);
            let b = run_seed(seed, Mutation::None);
            assert_eq!(a.outcome.trace, b.outcome.trace, "seed {seed}");
            assert_eq!(a.render(), b.render(), "seed {seed}");
        }
    }

    #[test]
    fn failing_seed_reports_replay_line_and_reproducer() {
        // Find a seed the planted bug trips on, then check the report
        // carries everything a developer needs.
        for seed in 0..64u64 {
            let report = run_seed(seed, Mutation::Ro1AddOffByOne);
            if report.passed() {
                continue;
            }
            let rendered = report.render();
            assert!(rendered.contains(&format!("HARNESS_SEED={seed}")));
            assert!(rendered.contains("minimal reproducer"));
            assert!(rendered.contains("ro1-model"));
            return;
        }
        panic!("no seed in 0..64 tripped the planted bug");
    }
}
