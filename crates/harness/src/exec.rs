//! Scenario execution: drives a standalone [`Scaddar`] engine, a
//! [`CmServer`], and the independent [`Model`] through one scenario,
//! injecting the fault plan and running the invariant catalog after
//! every step.
//!
//! Raw scenario values are normalized here against live state
//! (loose-generate/strict-execute): removal picks are reduced modulo
//! the disk count, sizes are clamped, steps that would be invalid are
//! *skipped with a trace note* instead of failing — so the shrinker can
//! drop or reduce any substructure and the scenario stays executable.
//!
//! Everything is deterministic: the same scenario and mutation produce
//! a byte-identical trace.

use crate::invariants::{self, Failure};
use crate::model::Model;
use crate::scenario::{Fault, Mutation, Scenario, Step};
use cmsim::{
    availability_census, CmServer, ServerConfig, ServerStats, SharedServer, Simulation,
    WorkloadConfig,
};
use scaddar_core::{
    plan_last_op, plan_last_op_parallel, BlockRef, DiskIndex, ObjectId, Scaddar, ScaddarConfig,
    ScalingOp,
};
use scaddar_monitor::{HealthMonitor, MonitorConfig};
use scaddar_obs::{Clock, Registry, SpanGuard, Tracer, VirtualClock};
use std::fmt::Write as _;
use std::sync::Arc;

/// Snapshot decode epsilon, shared by live config and every recovery.
const EPSILON: f64 = 0.05;
/// Disk-count band the normalizer enforces.
const MIN_DISKS: u32 = 2;
const MAX_DISKS: u32 = 64;
/// Safety bound on drain loops (a tick makes progress or the executor
/// reports a failure instead of spinning).
const MAX_TICKS: u32 = 200_000;

/// A durable event since the last persisted snapshot; crash recovery
/// replays these on top of the snapshot.
#[derive(Debug, Clone)]
enum Event {
    AddObject { blocks: u64 },
    RemoveObject(ObjectId),
    Scale(ScalingOp),
}

/// Span-recorder capacity: generous for any generated scenario, bounded
/// against pathological ones.
const SPAN_CAPACITY: usize = 512;

/// The result of executing one scenario.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Deterministic step-by-step trace (same seed → byte-identical).
    pub trace: String,
    /// Structured span timeline of the run, one line per step span,
    /// timed by a virtual clock the executor advances deterministically
    /// — same seed → byte-identical (attached to failure reports).
    pub spans: String,
    /// First invariant violation, if any.
    pub failure: Option<Failure>,
    /// Index of the step the failure surfaced at.
    pub failed_step: Option<usize>,
    /// The health monitor's structured event log, rendered as JSONL.
    /// Timestamps come from the executor's virtual clock, so the same
    /// seed produces byte-identical bytes.
    pub health_events: String,
    /// Alert events (warn/crit) the monitor emitted during the run.
    pub health_alerts: usize,
}

impl Outcome {
    /// Whether the run passed every check.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Executes `scenario` with the model running `mutation`.
pub fn execute(scenario: &Scenario, mutation: Mutation) -> Outcome {
    Executor::new(scenario, mutation).run()
}

struct Executor<'a> {
    scenario: &'a Scenario,
    mutation: Mutation,
    engine: Scaddar,
    server: CmServer,
    model: Model,
    last_snapshot: Vec<u8>,
    journal: Vec<Event>,
    trace: String,
    clock: Arc<VirtualClock>,
    tracer: Tracer,
    monitor: HealthMonitor,
}

impl<'a> Executor<'a> {
    fn new(scenario: &'a Scenario, mutation: Mutation) -> Self {
        let disks = scenario.initial_disks;
        let seed = scenario.seed;
        let engine = Scaddar::new(
            ScaddarConfig::new(disks)
                .with_catalog_seed(seed)
                .with_epsilon(EPSILON),
        )
        .expect("initial_disks >= 4 by generation");
        let mut server = CmServer::new(ServerConfig::new(disks).with_catalog_seed(seed))
            .expect("initial_disks >= 4 by generation");
        let last_snapshot = engine.snapshot();
        // A virtual clock only the executor advances: span timelines
        // count *work units* (blocks, rounds, moves), not wall time, so
        // the same seed always yields the same bytes.
        let clock = Arc::new(VirtualClock::new());
        let tracer = Tracer::new(clock.clone(), SPAN_CAPACITY);
        // The health monitor rides along on the same virtual clock, so
        // its JSONL event log is byte-identical run to run; the server's
        // per-disk gauges land in the same registry the monitor exports
        // its own gauges to.
        let registry = Registry::new();
        let stats = ServerStats::register(&registry, clock.clone() as Arc<dyn Clock>);
        server.attach_stats(stats);
        let mut monitor =
            HealthMonitor::for_engine(MonitorConfig::default(), clock.clone(), &engine);
        monitor.attach_registry(&registry);
        Executor {
            scenario,
            mutation,
            engine,
            server,
            model: Model::new(disks, mutation),
            last_snapshot,
            journal: Vec::new(),
            trace: String::new(),
            clock,
            tracer,
            monitor,
        }
    }

    fn run(mut self) -> Outcome {
        {
            let mut span = self.tracer.span("setup.ingest");
            span.event("objects", self.scenario.objects.len());
            for &blocks in &self.scenario.objects {
                if let Err(f) = self.add_object(blocks) {
                    span.event("failed", "exec");
                    drop(span);
                    return self.finish(Some(f), None);
                }
                self.clock.advance(blocks);
            }
        }
        if let Err(f) = self.check_invariants(None) {
            return self.finish(Some(f), None);
        }
        self.feed_monitor();
        for i in 0..self.scenario.steps.len() {
            let step = self.scenario.steps[i].clone();
            let mut span = self.tracer.span(step_name(&step));
            span.event("step", i);
            let result = self.run_step(i, &step, &mut span);
            if let Err(f) = result {
                span.event("failed", f.invariant);
                drop(span);
                let _ = writeln!(
                    self.trace,
                    "  step {i}: FAILED [{}] {}",
                    f.invariant, f.detail
                );
                return self.finish(Some(f), Some(i));
            }
        }
        if let Err(f) = self.check_health_outcome() {
            let _ = writeln!(
                self.trace,
                "  health: FAILED [{}] {}",
                f.invariant, f.detail
            );
            return self.finish(Some(f), None);
        }
        self.finish(None, None)
    }

    fn finish(mut self, failure: Option<Failure>, failed_step: Option<usize>) -> Outcome {
        let verdict = match &failure {
            None => "PASS".to_string(),
            Some(f) => format!("FAIL [{}]", f.invariant),
        };
        let _ = writeln!(self.trace, "  verdict: {verdict}");
        Outcome {
            trace: self.trace,
            spans: self.tracer.render_recent(SPAN_CAPACITY),
            failure,
            failed_step,
            health_events: self.monitor.events_jsonl(),
            health_alerts: self.monitor.alerts_emitted(),
        }
    }

    fn run_step(&mut self, i: usize, step: &Step, span: &mut SpanGuard) -> Result<(), Failure> {
        match step {
            Step::Scale { op, faults } => self.run_scale(i, op, faults, span)?,
            Step::AddObject { blocks } => {
                let blocks = (*blocks).clamp(1, 5_000);
                self.add_object(blocks)?;
                span.event("blocks", blocks);
                self.clock.advance(blocks);
                let _ = writeln!(self.trace, "  step {i}: add-object {blocks}");
            }
            Step::RemoveObject { pick } => self.run_remove_object(i, *pick, span)?,
            Step::Workload { rounds } => self.run_workload(i, *rounds, span)?,
            Step::Compact { kill } => self.run_compact(i, *kill, span)?,
        }
        self.check_invariants(if matches!(step, Step::Scale { .. }) {
            None // already checked with the plan in run_scale
        } else {
            Some(i)
        })?;
        self.feed_monitor();
        Ok(())
    }

    /// Feeds the health monitor one observation round: new movement
    /// records from the engine's RO1 audit trail, plus (when the server
    /// is at rest, the only time residency is comparable) the per-disk
    /// census for the streaming RO2 probes and the exact conformance
    /// check of store residency against the engine's derivation.
    fn feed_monitor(&mut self) {
        self.monitor.observe_engine(&self.engine);
        if self.server.backlog() == 0 {
            let actual = self.server.load_census();
            self.monitor.observe_census(&actual);
            let expected = self.engine.load_distribution();
            self.monitor.observe_conformance(&expected, &actual);
        }
    }

    /// End-of-run health verdict. Clean runs must have raised no RO1/RO2
    /// conformance alert; a [`Mutation::MisplaceBlock`] run plants silent
    /// data rot *after* the last step (so every placement invariant along
    /// the way stays meaningful) and then requires the monitor's exact
    /// conformance probe to catch it.
    fn check_health_outcome(&mut self) -> Result<(), Failure> {
        match self.mutation {
            Mutation::None => invariants::check_health_quiet(self.monitor.events()),
            // The model-divergence bug is caught (and shrunk) by the
            // placement invariants mid-run, not by the health phase.
            Mutation::Ro1AddOffByOne => Ok(()),
            Mutation::MisplaceBlock => {
                self.drain_server()?;
                let Some(id) = self.engine.catalog().objects().first().map(|o| o.id) else {
                    return Err(exec_failure("misplace mutation found no object".into()));
                };
                let block = BlockRef {
                    object: id,
                    block: 0,
                };
                let Some(from) = self.server.store().locate(block) else {
                    return Err(exec_failure(format!(
                        "misplace target {block:?} not resident"
                    )));
                };
                let Some(to) = self
                    .server
                    .disks()
                    .physical_ids()
                    .into_iter()
                    .find(|&d| d != from)
                else {
                    return Err(exec_failure("no second disk to misplace onto".into()));
                };
                if !self.server.inject_misplacement(block, to) {
                    return Err(exec_failure(format!(
                        "inject_misplacement({block:?}, {to:?}) refused"
                    )));
                }
                let _ = writeln!(
                    self.trace,
                    "  mutation: misplaced {block:?} {from:?} -> {to:?}"
                );
                self.clock.advance(1);
                self.feed_monitor();
                invariants::check_health_detects_misplacement(self.monitor.events())
            }
        }
    }

    // ---- steps -----------------------------------------------------

    fn add_object(&mut self, blocks: u64) -> Result<(), Failure> {
        let sid = self
            .server
            .add_object(blocks)
            .map_err(|e| exec_failure(format!("server.add_object({blocks}): {e:?}")))?;
        let eid = self.engine.add_object(blocks);
        if sid != eid {
            return Err(exec_failure(format!(
                "object id skew: server {sid:?} vs engine {eid:?}"
            )));
        }
        let obj = *self.engine.catalog().object(eid).expect("just added");
        let x0s = (0..blocks)
            .map(|b| self.engine.catalog().x0(&obj, b))
            .collect();
        self.model.add_object(eid, x0s);
        self.journal.push(Event::AddObject { blocks });
        Ok(())
    }

    fn run_remove_object(
        &mut self,
        i: usize,
        pick: u64,
        span: &mut SpanGuard,
    ) -> Result<(), Failure> {
        let live = self.engine.catalog().objects();
        if live.len() <= 1 {
            span.event("skipped", "catalog-floor");
            let _ = writeln!(
                self.trace,
                "  step {i}: remove-object skipped (catalog floor)"
            );
            return Ok(());
        }
        let id = live[(pick % live.len() as u64) as usize].id;
        if self.server.remove_object(id).is_err() {
            // Streams may pin the object; skip to keep all three in sync.
            span.event("skipped", "pinned");
            let _ = writeln!(
                self.trace,
                "  step {i}: remove-object {id:?} skipped (pinned)"
            );
            return Ok(());
        }
        self.engine
            .remove_object(id)
            .map_err(|e| exec_failure(format!("engine.remove_object({id:?}): {e:?}")))?;
        self.model.remove_object(id);
        self.journal.push(Event::RemoveObject(id));
        span.event("object", id.0);
        self.clock.advance(1);
        let _ = writeln!(self.trace, "  step {i}: remove-object {id:?}");
        Ok(())
    }

    fn run_workload(&mut self, i: usize, rounds: u32, span: &mut SpanGuard) -> Result<(), Failure> {
        let rounds = 1 + rounds % 5;
        let seed = self.scenario.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let dummy = CmServer::new(ServerConfig::new(MIN_DISKS)).expect("dummy server");
        let server = std::mem::replace(&mut self.server, dummy);
        let mut sim = Simulation::from_server(server, WorkloadConfig::interactive(2.0), seed);
        sim.run(rounds);
        self.server = sim.into_server();
        span.event("rounds", rounds);
        span.event("streams", self.server.active_streams());
        self.clock.advance(u64::from(rounds));
        let _ = writeln!(
            self.trace,
            "  step {i}: workload {rounds} rounds, {} active streams",
            self.server.active_streams()
        );
        Ok(())
    }

    /// One online rehash compaction: the server migrates to the next
    /// generation through its executor while the standalone engine
    /// flips offline; both must land on the same placement (same
    /// catalog seed, same history, same generation seed derivation).
    /// `kill` fails a disk mid-migration on a *clone* — the clone must
    /// still complete the flip without losing a block, while the real
    /// timeline stays fault-free and deterministic.
    fn run_compact(
        &mut self,
        i: usize,
        kill: Option<u64>,
        span: &mut SpanGuard,
    ) -> Result<(), Failure> {
        let from = self.engine.generation();
        let pre_catalog: Vec<(ObjectId, u64)> = self
            .engine
            .catalog()
            .objects()
            .iter()
            .map(|o| (o.id, o.blocks))
            .collect();
        let pre_resident: u64 = self.server.load_census().iter().sum();
        let backlog = match self.server.begin_compaction() {
            Ok(b) => b,
            Err(e) => {
                span.event("skipped", "refused");
                let _ = writeln!(self.trace, "  step {i}: compact skipped ({e:?})");
                return Ok(());
            }
        };
        let moved = self.engine.rehash_to_next_generation();
        if moved != backlog {
            return Err(exec_failure(format!(
                "compaction backlog skew: server queued {backlog}, \
                 engine re-placed {moved}"
            )));
        }
        self.monitor
            .note_compaction_started(from, from + 1, backlog);
        span.event("generation", format!("{from}->{}", from + 1));
        span.event("backlog", backlog);

        // A few migration rounds first, so an injected kill lands
        // mid-flight rather than before any move committed.
        let mut ticks = 0u32;
        for _ in 0..3 {
            if !self.server.compaction_active() {
                break;
            }
            self.server.tick();
            ticks += 1;
        }
        if let Some(pick) = kill {
            let victim = DiskIndex((pick % u64::from(self.engine.disks())) as u32);
            let mut clone = self.server.clone();
            clone.fail_disk(victim);
            let mut t = 0u32;
            while clone.compaction_active() {
                clone.tick();
                t += 1;
                if t > MAX_TICKS {
                    return Err(Failure {
                        invariant: "compaction-no-loss",
                        detail: format!(
                            "kill-during-compaction({victim:?}): migration wedged \
                             after {MAX_TICKS} ticks"
                        ),
                    });
                }
            }
            if clone.generation() != from + 1 || !clone.residency_consistent() {
                return Err(Failure {
                    invariant: "compaction-no-loss",
                    detail: format!(
                        "kill-during-compaction({victim:?}): generation {} \
                         (expected {}), residency_consistent={}",
                        clone.generation(),
                        from + 1,
                        clone.residency_consistent()
                    ),
                });
            }
            let clone_resident: u64 = clone.load_census().iter().sum();
            invariants::check_compaction_no_loss(
                &self.engine,
                &pre_catalog,
                pre_resident,
                clone_resident,
            )?;
            span.event("kill", format!("{victim:?}"));
            let _ = writeln!(
                self.trace,
                "    fault kill-during-compaction({victim:?}) ok"
            );
        }
        while self.server.compaction_active() {
            self.server.tick();
            ticks += 1;
            if ticks > MAX_TICKS {
                return Err(exec_failure(format!(
                    "compaction drain stuck after {MAX_TICKS} ticks"
                )));
            }
        }
        self.drain_server()?;

        let total = self.engine.catalog().total_blocks();
        self.monitor.note_compaction_completed(from + 1, total);
        // The flip is durable (v2 snapshots carry the generation), so it
        // is also a persistence point: crash recovery replays on top of
        // the flipped snapshot, never the dead generation's.
        self.last_snapshot = self.engine.snapshot();
        self.journal.clear();
        // The model's REMAP copy described the dead generation; rebuild
        // it from the flipped catalog's fresh X_0 draws.
        self.model = Model::new(self.engine.disks(), self.mutation);
        for obj in self.engine.catalog().objects() {
            let x0s = (0..obj.blocks)
                .map(|b| self.engine.catalog().x0(obj, b))
                .collect();
            self.model.add_object(obj.id, x0s);
        }
        self.monitor.observe_engine(&self.engine);
        let post_resident: u64 = self.server.load_census().iter().sum();
        invariants::check_compaction_no_loss(
            &self.engine,
            &pre_catalog,
            pre_resident,
            post_resident,
        )?;
        invariants::check_compaction_resets_budget(&self.engine, self.monitor.budget_remaining())?;
        self.clock.advance(backlog + 1);
        let kill_label = kill.map_or(String::new(), |_| " kill".to_string());
        let _ = writeln!(
            self.trace,
            "  step {i}: compact generation {from}->{} moved {moved}/{total}{kill_label}",
            from + 1
        );
        Ok(())
    }

    fn run_scale(
        &mut self,
        i: usize,
        raw: &ScalingOp,
        faults: &[Fault],
        span: &mut SpanGuard,
    ) -> Result<(), Failure> {
        let n_prev = self.engine.disks();
        let Some(op) = normalize_op(raw, n_prev) else {
            span.event("skipped", "normalization");
            let _ = writeln!(
                self.trace,
                "  step {i}: scale {raw:?} skipped (normalization)"
            );
            return Ok(());
        };
        let disks_after = match &op {
            ScalingOp::Add { count } => n_prev + count,
            ScalingOp::Remove { disks } => n_prev - disks.len() as u32,
        };
        if !self.engine.next_op_is_safe(disks_after) || !self.server.next_op_is_safe(&op) {
            span.event("skipped", "unsafe");
            let _ = writeln!(self.trace, "  step {i}: scale {op:?} skipped (unsafe)");
            return Ok(());
        }

        // Faults that race the commit need a pre-op clone of the server.
        let pre_clone = faults
            .iter()
            .any(|f| matches!(f, Fault::StaleEpochReads { .. }))
            .then(|| self.server.clone());

        let plan = self
            .engine
            .scale(op.clone())
            .map_err(|e| exec_failure(format!("engine.scale({op:?}): {e:?}")))?;
        self.server
            .scale(op.clone())
            .map_err(|e| exec_failure(format!("server.scale({op:?}): {e:?}")))?;
        self.drain_server()?;
        self.model.apply(&op);
        self.journal.push(Event::Scale(op.clone()));

        let labels: Vec<String> = faults.iter().map(Fault::label).collect();
        span.event("op", format!("{op:?}"));
        span.event("disks", format!("{n_prev}->{disks_after}"));
        span.event("moved", plan.moves.len());
        span.event("blocks", plan.total_blocks);
        for label in &labels {
            span.event("fault", label);
        }
        self.clock.advance(plan.moves.len() as u64 + 1);
        let _ = writeln!(
            self.trace,
            "  step {i}: scale {op:?} n {n_prev}->{disks_after} moved {}/{} faults=[{}]",
            plan.moves.len(),
            plan.total_blocks,
            labels.join(",")
        );

        // Plan-level invariants first (cheapest, sharpest).
        invariants::check_ro1_exact(&plan, &op, n_prev)?;
        invariants::check_ro1_fraction(&plan)?;
        self.check_parallel_plan()?;
        for fault in faults {
            self.inject(i, fault, &op, n_prev, disks_after, &pre_clone)?;
        }
        self.check_invariants(Some(i))
    }

    // ---- faults ----------------------------------------------------

    fn inject(
        &mut self,
        i: usize,
        fault: &Fault,
        op: &ScalingOp,
        n_prev: u32,
        disks_after: u32,
        pre_clone: &Option<CmServer>,
    ) -> Result<(), Failure> {
        match fault {
            Fault::CrashBeforePersist => {
                // The post-op snapshot never made it to disk: recovery is
                // last snapshot + journal replay.
                let recovered = self.recover_from_journal()?;
                self.require_identical_placement(&recovered, "crash-before-persist")?;
            }
            Fault::CrashAfterPersist => {
                let snap = self.engine.snapshot();
                let recovered = Scaddar::from_snapshot(&snap, EPSILON).map_err(|e| Failure {
                    invariant: "recovery",
                    detail: format!("fresh snapshot failed to decode: {e:?}"),
                })?;
                self.require_identical_placement(&recovered, "crash-after-persist")?;
                self.last_snapshot = snap;
                self.journal.clear();
            }
            Fault::TruncatedSnapshot { cut } => {
                let snap = self.engine.snapshot();
                let cut_at = (cut % snap.len() as u64) as usize;
                if scaddar_core::persist::validate(&snap[..cut_at]).is_ok() {
                    return Err(Failure {
                        invariant: "persist-detect",
                        detail: format!(
                            "truncation to {cut_at}/{} bytes validated cleanly",
                            snap.len()
                        ),
                    });
                }
                // The corrupt snapshot is discarded; recovery falls back.
                let recovered = self.recover_from_journal()?;
                self.require_identical_placement(&recovered, "truncated-snapshot")?;
            }
            Fault::BitFlippedSnapshot { bit } => {
                let mut snap = self.engine.snapshot();
                let pos = (bit % (snap.len() as u64 * 8)) as usize;
                snap[pos / 8] ^= 1 << (pos % 8);
                if let Ok(recovered) = Scaddar::from_snapshot(&snap, EPSILON) {
                    // CRC32 catches every 1-bit error, so decoding at all
                    // is suspicious — but only *wrong placement* is fatal.
                    self.require_identical_placement(&recovered, "bit-flipped-snapshot")?;
                }
            }
            Fault::DiskDeath { pick } => {
                let victim = DiskIndex((pick % u64::from(disks_after)) as u32);
                let (readable, lost) = availability_census(&self.server, &[victim])
                    .map_err(|e| exec_failure(format!("availability_census: {e:?}")))?;
                if lost != 0 {
                    return Err(Failure {
                        invariant: "mirror-availability",
                        detail: format!(
                            "disk {victim:?} death loses {lost}/{} blocks \
                             ({readable} readable) on {disks_after} disks",
                            readable + lost
                        ),
                    });
                }
                // Failover on a clone: the dead disk drains and the array
                // ends residency-consistent (the real server is untouched).
                let mut clone = self.server.clone();
                clone.fail_disk(victim);
                let mut ticks = 0u32;
                while clone.backlog() > 0 {
                    clone.tick();
                    ticks += 1;
                    if ticks > MAX_TICKS {
                        return Err(Failure {
                            invariant: "mirror-availability",
                            detail: format!("failover drain stuck after {MAX_TICKS} ticks"),
                        });
                    }
                }
                if !clone.residency_consistent() {
                    return Err(Failure {
                        invariant: "mirror-availability",
                        detail: "failover left residency inconsistent".into(),
                    });
                }
                let _ = writeln!(self.trace, "    fault disk-death({victim:?}) ok");
            }
            Fault::StaleEpochReads { reads } => {
                let clone = pre_clone.clone().expect("pre-op clone captured");
                let reads = (*reads).clamp(1, 512);
                stale_epoch_reads(clone, op.clone(), n_prev, disks_after, reads)?;
                let _ = writeln!(self.trace, "    fault stale-reads({reads}) ok");
            }
        }
        let _ = i; // step index only used in trace lines above
        Ok(())
    }

    // ---- recovery helpers ------------------------------------------

    /// Recovers from the last valid snapshot plus the journal, as a
    /// restart after losing the latest snapshot would.
    fn recover_from_journal(&self) -> Result<Scaddar, Failure> {
        let mut engine =
            Scaddar::from_snapshot(&self.last_snapshot, EPSILON).map_err(|e| Failure {
                invariant: "recovery",
                detail: format!("last valid snapshot failed to decode: {e:?}"),
            })?;
        for event in &self.journal {
            match event {
                Event::AddObject { blocks } => {
                    engine.add_object(*blocks);
                }
                Event::RemoveObject(id) => {
                    engine.remove_object(*id).map_err(|e| Failure {
                        invariant: "recovery",
                        detail: format!("journal replay remove_object({id:?}): {e:?}"),
                    })?;
                }
                Event::Scale(op) => {
                    engine.scale(op.clone()).map_err(|e| Failure {
                        invariant: "recovery",
                        detail: format!("journal replay scale({op:?}): {e:?}"),
                    })?;
                }
            }
        }
        Ok(engine)
    }

    /// The recovered engine must place every block exactly where the
    /// uncrashed one does.
    fn require_identical_placement(
        &self,
        recovered: &Scaddar,
        context: &str,
    ) -> Result<(), Failure> {
        if placement_of(recovered) != placement_of(&self.engine) {
            return Err(Failure {
                invariant: "recovery",
                detail: format!("{context}: recovered placement diverges from live engine"),
            });
        }
        Ok(())
    }

    // ---- invariants ------------------------------------------------

    fn drain_server(&mut self) -> Result<(), Failure> {
        let mut ticks = 0u32;
        while self.server.backlog() > 0 {
            self.server.tick();
            ticks += 1;
            if ticks > MAX_TICKS {
                return Err(exec_failure(format!(
                    "redistribution drain stuck after {MAX_TICKS} ticks"
                )));
            }
        }
        Ok(())
    }

    /// Parallel planning must agree with serial planning exactly.
    fn check_parallel_plan(&self) -> Result<(), Failure> {
        let serial = plan_last_op(self.engine.catalog(), self.engine.log());
        let parallel = plan_last_op_parallel(self.engine.catalog(), self.engine.log(), 4);
        if serial.moves != parallel.moves || serial.total_blocks != parallel.total_blocks {
            return Err(Failure {
                invariant: "oracle-plan",
                detail: format!(
                    "parallel plan diverges: {} vs {} moves over {} vs {} blocks",
                    parallel.moves.len(),
                    serial.moves.len(),
                    parallel.total_blocks,
                    serial.total_blocks
                ),
            });
        }
        Ok(())
    }

    /// The full post-step catalog: model equality, oracle agreement,
    /// derived-state audit, uniformity, and server/engine agreement.
    fn check_invariants(&self, after_scale_step: Option<usize>) -> Result<(), Failure> {
        invariants::check_model(&self.engine, &self.model)?;
        invariants::check_oracle(&self.engine)?;
        invariants::check_derived(&self.engine)?;
        invariants::check_ro2(&self.engine)?;
        self.check_server_agrees()?;
        let _ = after_scale_step;
        Ok(())
    }

    /// The served placement (engine inside the CmServer, and the block
    /// store once drained) agrees with the standalone engine.
    fn check_server_agrees(&self) -> Result<(), Failure> {
        if self.server.backlog() > 0 {
            return Ok(()); // only comparable at rest
        }
        if !self.server.residency_consistent() {
            return Err(Failure {
                invariant: "server-agree",
                detail: "block store residency inconsistent with AF() at rest".into(),
            });
        }
        for obj in self.engine.catalog().objects() {
            let stride = (obj.blocks / 32).max(1) as usize;
            for blk in (0..obj.blocks).step_by(stride) {
                let ours = self.engine.locate(obj.id, blk).map_err(|e| {
                    exec_failure(format!("engine.locate({:?},{blk}): {e:?}", obj.id))
                })?;
                let theirs = self.server.engine().locate(obj.id, blk).map_err(|e| {
                    exec_failure(format!("server locate({:?},{blk}): {e:?}", obj.id))
                })?;
                if ours != theirs {
                    return Err(Failure {
                        invariant: "server-agree",
                        detail: format!(
                            "object {:?} block {blk}: engine {ours:?} vs server {theirs:?}",
                            obj.id
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Span label for a step: stable names keyed by step kind.
fn step_name(step: &Step) -> &'static str {
    match step {
        Step::Scale { .. } => "step.scale",
        Step::AddObject { .. } => "step.add-object",
        Step::RemoveObject { .. } => "step.remove-object",
        Step::Workload { .. } => "step.workload",
        Step::Compact { .. } => "step.compact",
    }
}

/// Placement fingerprint: every block's disk, in catalog order.
fn placement_of(engine: &Scaddar) -> Vec<(ObjectId, Vec<u32>)> {
    engine
        .catalog()
        .objects()
        .iter()
        .map(|obj| {
            let disks = engine
                .locate_all(obj.id)
                .expect("object in catalog")
                .iter()
                .map(|d| d.0)
                .collect();
            (obj.id, disks)
        })
        .collect()
}

/// Normalizes a raw operation against the current disk count. `None`
/// means the step is a no-op at this state (e.g. array at the cap).
fn normalize_op(raw: &ScalingOp, disks: u32) -> Option<ScalingOp> {
    match raw {
        ScalingOp::Add { count } => {
            let count = (*count).min(MAX_DISKS.saturating_sub(disks));
            (count > 0).then_some(ScalingOp::Add { count })
        }
        ScalingOp::Remove { disks: picks } => {
            let mut victims: Vec<u32> = Vec::new();
            for &p in picks {
                let v = p % disks;
                if !victims.contains(&v) {
                    victims.push(v);
                }
                if disks - victims.len() as u32 == MIN_DISKS {
                    break;
                }
            }
            (!victims.is_empty() && disks > MIN_DISKS)
                .then_some(ScalingOp::Remove { disks: victims })
        }
    }
}

fn exec_failure(detail: String) -> Failure {
    Failure {
        invariant: "exec",
        detail,
    }
}

/// Concurrent readers against a pre-op clone while the op commits: every
/// read must observe one internally consistent epoch.
fn stale_epoch_reads(
    clone: CmServer,
    op: ScalingOp,
    n_prev: u32,
    disks_after: u32,
    reads: u32,
) -> Result<(), Failure> {
    let target = clone
        .engine()
        .catalog()
        .objects()
        .first()
        .map(|o| (o.id, o.blocks));
    let Some((id, blocks)) = target else {
        return Ok(()); // nothing to read
    };
    let e_pre = clone.engine().epoch();
    let shared = SharedServer::new(clone);
    let reader = |salt: u64| -> Result<(), String> {
        for k in 0..u64::from(reads) {
            let blk = (k.wrapping_mul(31).wrapping_add(salt)) % blocks;
            let read = shared
                .locate(id, blk)
                .map_err(|e| format!("locate({id:?},{blk}): {e:?}"))?;
            if read.epoch != e_pre && read.epoch != e_pre + 1 {
                return Err(format!(
                    "read at epoch {} (commit was {e_pre}->{})",
                    read.epoch,
                    e_pre + 1
                ));
            }
            let expected_disks = if read.epoch == e_pre {
                n_prev
            } else {
                disks_after
            };
            if read.disks != expected_disks {
                return Err(format!(
                    "torn read: epoch {} with {} disks (expected {expected_disks})",
                    read.epoch, read.disks
                ));
            }
            if read.disk.0 >= read.disks {
                return Err(format!(
                    "read names disk {} outside its own epoch's {} disks",
                    read.disk.0, read.disks
                ));
            }
        }
        Ok(())
    };
    let result = crossbeam::thread::scope(|s| {
        let r1 = s.spawn(|_| reader(1));
        let r2 = s.spawn(|_| reader(7));
        shared
            .scale(op)
            .map_err(|e| format!("shared.scale: {e:?}"))?;
        let mut ticks = 0u32;
        while shared.backlog() > 0 {
            shared.tick();
            ticks += 1;
            if ticks > MAX_TICKS {
                return Err("shared drain stuck".to_string());
            }
        }
        r1.join().expect("reader 1 panicked")?;
        r2.join().expect("reader 2 panicked")
    })
    .expect("scope");
    result.map_err(|detail| Failure {
        invariant: "epoch-consistency",
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn clean_scenarios_pass_and_traces_are_bit_reproducible() {
        for seed in [3u64, 17, 404] {
            let scenario = Scenario::generate(seed);
            let a = execute(&scenario, Mutation::None);
            let b = execute(&scenario, Mutation::None);
            assert!(a.passed(), "seed {seed} failed:\n{}", a.trace);
            assert_eq!(a.trace, b.trace, "seed {seed} trace not reproducible");
            assert_eq!(a.spans, b.spans, "seed {seed} spans not byte-identical");
            assert!(!a.spans.is_empty(), "seed {seed} recorded no spans");
        }
    }

    #[test]
    fn span_timeline_names_every_step_kind_executed() {
        let scenario = Scenario::generate(11);
        let outcome = execute(&scenario, Mutation::None);
        assert!(outcome.spans.contains("setup.ingest"));
        for (line, step) in outcome
            .spans
            .lines()
            .filter(|l| l.contains("step."))
            .zip(&scenario.steps)
        {
            assert!(
                line.contains(step_name(step)),
                "span order must follow step order: {line} vs {step:?}"
            );
        }
    }

    #[test]
    fn failing_runs_attach_spans_with_the_failure_event() {
        for seed in 0..64u64 {
            let scenario = Scenario::generate(seed);
            let outcome = execute(&scenario, Mutation::Ro1AddOffByOne);
            if outcome.passed() {
                continue;
            }
            assert!(
                outcome.spans.contains("failed="),
                "failure must be visible in the span timeline:\n{}",
                outcome.spans
            );
            return;
        }
        panic!("no seed in 0..64 tripped the planted bug");
    }

    #[test]
    fn health_event_log_is_byte_identical_per_seed() {
        for seed in [19u64, 17, 404] {
            let scenario = Scenario::generate(seed);
            let a = execute(&scenario, Mutation::None);
            let b = execute(&scenario, Mutation::None);
            assert!(a.passed(), "seed {seed} failed:\n{}", a.trace);
            assert_eq!(
                a.health_events, b.health_events,
                "seed {seed} health events not byte-identical"
            );
            assert!(
                !a.health_events.is_empty(),
                "seed {seed} monitor recorded no events at all"
            );
            // Every line is valid JSON under the strict hand parser.
            for line in a.health_events.lines() {
                scaddar_obs::try_parse_json_values(line)
                    .unwrap_or_else(|e| panic!("seed {seed} bad event line {line:?}: {e}"));
            }
        }
    }

    #[test]
    fn clean_runs_raise_no_conformance_alerts() {
        for seed in [3u64, 17, 404] {
            let scenario = Scenario::generate(seed);
            let outcome = execute(&scenario, Mutation::None);
            assert!(outcome.passed(), "seed {seed} failed:\n{}", outcome.trace);
            for line in outcome.health_events.lines() {
                let quiet = !line.contains("\"probe\": \"ro1\"")
                    && !line.contains("\"probe\": \"ro2\"")
                    || line.contains("\"severity\": \"ok\"");
                assert!(quiet, "seed {seed} clean run alerted: {line}");
            }
        }
    }

    #[test]
    fn planted_misplacement_is_caught_by_the_monitor() {
        let scenario = Scenario::generate(3);
        let outcome = execute(&scenario, Mutation::MisplaceBlock);
        // Detection means the health invariant *passes* (the monitor did
        // its job) and the alert is in the event log.
        assert!(
            outcome.passed(),
            "monitor missed the planted misplacement:\n{}",
            outcome.trace
        );
        assert!(
            outcome
                .health_events
                .lines()
                .any(|l| l.contains("ro2-misplacement") && !l.contains("\"severity\": \"ok\"")),
            "no ro2-misplacement alert in:\n{}",
            outcome.health_events
        );
        assert!(outcome.health_alerts >= 1);
        assert!(outcome.trace.contains("mutation: misplaced"));
    }

    #[test]
    fn a_monitor_blind_to_the_rot_would_fail_the_run() {
        // Companion negative check: the detection invariant itself.
        let err = crate::invariants::check_health_detects_misplacement(&[]).unwrap_err();
        assert_eq!(err.invariant, "health-detects-misplacement");
    }

    /// The mid-churn compaction acceptance: seeded scenarios containing
    /// a kill-during-compaction step must pass the whole invariant
    /// catalog (no lost block, budget refilled, byte-identical traces).
    #[test]
    fn kill_during_compaction_scenarios_pass_with_identical_traces() {
        let mut found = 0;
        for seed in 0..200u64 {
            let scenario = Scenario::generate(seed);
            let has_kill = scenario
                .steps
                .iter()
                .any(|s| matches!(s, Step::Compact { kill: Some(_) }));
            if !has_kill {
                continue;
            }
            let a = execute(&scenario, Mutation::None);
            assert!(a.passed(), "seed {seed} failed:\n{}", a.trace);
            assert!(
                a.trace.contains("fault kill-during-compaction")
                    || a.trace.contains("compact skipped"),
                "seed {seed} trace missing the kill:\n{}",
                a.trace
            );
            let b = execute(&scenario, Mutation::None);
            assert_eq!(a.trace, b.trace, "seed {seed} trace not reproducible");
            if a.trace.contains("fault kill-during-compaction") {
                found += 1;
            }
            if found >= 2 {
                return;
            }
        }
        assert!(found > 0, "no seed in 0..200 exercised a compaction kill");
    }

    /// Compaction lifecycle events land in the health log, and the trace
    /// records the generation flip with the collapsed chain's effects
    /// visible to the budget invariant (checked inside the executor).
    #[test]
    fn compaction_steps_log_lifecycle_events() {
        for seed in 0..200u64 {
            let scenario = Scenario::generate(seed);
            if !scenario
                .steps
                .iter()
                .any(|s| matches!(s, Step::Compact { .. }))
            {
                continue;
            }
            let outcome = execute(&scenario, Mutation::None);
            assert!(outcome.passed(), "seed {seed} failed:\n{}", outcome.trace);
            if !outcome.trace.contains("compact generation") {
                continue; // every compact step in this seed was refused
            }
            assert!(
                outcome.health_events.contains("compaction-active"),
                "seed {seed} missing start event:\n{}",
                outcome.health_events
            );
            assert!(
                outcome.health_events.contains("compaction-complete"),
                "seed {seed} missing completion event:\n{}",
                outcome.health_events
            );
            return;
        }
        panic!("no seed in 0..200 executed a compaction step");
    }

    #[test]
    fn normalize_op_respects_band() {
        assert_eq!(
            normalize_op(&ScalingOp::Add { count: 3 }, 63),
            Some(ScalingOp::Add { count: 1 })
        );
        assert_eq!(normalize_op(&ScalingOp::Add { count: 3 }, 64), None);
        assert_eq!(
            normalize_op(&ScalingOp::Remove { disks: vec![9, 14] }, 5),
            Some(ScalingOp::Remove { disks: vec![4] })
        );
        assert_eq!(normalize_op(&ScalingOp::Remove { disks: vec![0] }, 2), None);
    }
}
