//! The invariant catalog: every check the harness runs after each step.
//!
//! Each checker is a pure function from observed state to
//! `Result<(), Failure>`. A [`Failure`] names the invariant (stable
//! identifiers, listed in `TESTING.md`) and carries a human-readable
//! detail string; the executor turns the first failure into a trace
//! entry and the shrinker minimizes the scenario that produced it.

use crate::model::Model;
use scaddar_analysis::uniformity::{chi_square_uniform, max_relative_deviation};
use scaddar_core::{locate, MovePlan, ObjectId, Scaddar, ScalingOp};
use scaddar_monitor::{HealthEvent, HealthMonitor, MonitorConfig};
use scaddar_obs::{ProfileSnapshot, Registry, RegistrySnapshot, SpanRecord, VirtualClock};
use std::sync::Arc;

/// A named invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Stable invariant identifier (e.g. `"ro1-model"`).
    pub invariant: &'static str,
    /// What was observed vs expected.
    pub detail: String,
}

impl Failure {
    fn new(invariant: &'static str, detail: String) -> Failure {
        Failure { invariant, detail }
    }
}

/// Shorthand used by every checker.
pub type Check = Result<(), Failure>;

/// Threshold below which the chi-square RO2 check fires. Over the CI
/// fleet (~32 seeds × ~10 checks each) the false-positive probability
/// at `1e-9` is negligible, while genuine skew (e.g. a wrong remap)
/// collapses the p-value to ~0 within a few thousand blocks.
pub const CHI_SQUARE_P_FLOOR: f64 = 1e-9;

/// **`ro1-exact`** — no extraneous movement (the exact half of RO1).
///
/// For a removal, every migrated block must come *from* a removed disk
/// (survivors never move). For an addition, every migrated block must
/// land *on* a fresh disk (`to >= N_{j-1}`); no block shuffles between
/// old disks. These hold with probability 1, not just in expectation.
pub fn check_ro1_exact(plan: &MovePlan, op: &ScalingOp, n_prev: u32) -> Check {
    match op {
        ScalingOp::Add { .. } => {
            for m in &plan.moves {
                if m.to.0 < n_prev {
                    return Err(Failure::new(
                        "ro1-exact",
                        format!(
                            "addition moved {:?} to old disk {} (< N_prev={n_prev})",
                            m.block, m.to.0
                        ),
                    ));
                }
            }
        }
        ScalingOp::Remove { disks } => {
            for m in &plan.moves {
                if !disks.contains(&m.from.0) {
                    return Err(Failure::new(
                        "ro1-exact",
                        format!(
                            "removal moved survivor block {:?} off disk {}",
                            m.block, m.from.0
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// **`ro1-fraction`** — the moved fraction tracks the optimal `z_j`.
///
/// The realized fraction is a binomial sample around the optimum, so
/// the check allows six standard deviations plus a small absolute
/// epsilon — loose enough to never fire on honest randomness, tight
/// enough to flag a remap that moves a constant factor too much.
pub fn check_ro1_fraction(plan: &MovePlan) -> Check {
    if plan.total_blocks == 0 {
        return Ok(());
    }
    let p = plan.optimal_fraction;
    let n = plan.total_blocks as f64;
    let sigma = (p * (1.0 - p) / n).sqrt();
    let slack = 6.0 * sigma + 0.005;
    let observed = plan.moved_fraction();
    if (observed - p).abs() > slack {
        return Err(Failure::new(
            "ro1-fraction",
            format!(
                "moved fraction {observed:.4} vs optimal {p:.4} \
                 (slack {slack:.4}, {} blocks)",
                plan.total_blocks
            ),
        ));
    }
    Ok(())
}

/// **`ro2-uniform`** — placement stays statistically uniform.
///
/// Primary: chi-square goodness of fit on the per-disk census with
/// p-value floor [`CHI_SQUARE_P_FLOOR`]. Secondary: the max relative
/// deviation must stay within the tracked `C_v` unfairness bound plus
/// generous sampling slack (`10·sqrt(n/B)`), a belt-and-braces bound
/// that only catastrophic skew can exceed.
pub fn check_ro2(engine: &Scaddar) -> Check {
    let census = engine.load_distribution();
    let total: u64 = census.iter().sum();
    if total < 200 || census.len() < 2 {
        return Ok(()); // too few blocks for a meaningful test
    }
    let chi = chi_square_uniform(&census);
    if chi.p_value < CHI_SQUARE_P_FLOOR {
        return Err(Failure::new(
            "ro2-uniform",
            format!(
                "chi-square p={:.3e} < {CHI_SQUARE_P_FLOOR:.0e} \
                 (stat {:.2}, census {census:?})",
                chi.p_value, chi.statistic
            ),
        ));
    }
    let bound = engine.fairness().unfairness_bound;
    let sampling = 10.0 * (census.len() as f64 / total as f64).sqrt();
    let dev = max_relative_deviation(&census);
    if dev > bound + sampling + 0.01 {
        return Err(Failure::new(
            "ro2-uniform",
            format!(
                "max relative deviation {dev:.3} exceeds bound {bound:.3} \
                 + sampling slack {sampling:.3}"
            ),
        ));
    }
    Ok(())
}

/// **`oracle-agree`** — every locate path agrees with the reference
/// REMAP fold (AO1: no directory, one arithmetic answer).
///
/// Cross-checks, on a strided sample of blocks: the engine's cached
/// `locate`, the stateless per-block fold over the scaling log, and the
/// compiled pipeline fold (serial and batch).
pub fn check_oracle(engine: &Scaddar) -> Check {
    let log = engine.log();
    let pipeline = engine.pipeline();
    for obj in engine.catalog().objects() {
        let stride = (obj.blocks / 64).max(1) as usize;
        let sampled: Vec<u64> = (0..obj.blocks).step_by(stride).collect();
        let x0s: Vec<u64> = sampled
            .iter()
            .map(|&b| engine.catalog().x0(obj, b))
            .collect();
        let batch = pipeline.locate_batch(&x0s);
        for (i, (&blk, &x0)) in sampled.iter().zip(&x0s).enumerate() {
            let cached = engine.locate(obj.id, blk).map_err(|e| {
                Failure::new("oracle-agree", format!("locate({:?},{blk}): {e:?}", obj.id))
            })?;
            let reference = locate(x0, log);
            let folded = pipeline.locate(x0);
            if cached != reference || folded != reference || batch[i] != reference {
                return Err(Failure::new(
                    "oracle-agree",
                    format!(
                        "object {:?} block {blk}: cached={cached:?} \
                         pipeline={folded:?} batch={:?} reference={reference:?}",
                        obj.id, batch[i]
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// **`ro1-model`** — engine placement equals the independent model.
///
/// This is the deterministic net for remap arithmetic bugs: the model
/// evolves every `X_j` with its own copy of the paper's equations, so
/// any divergence (including the plantable [`crate::scenario::Mutation`])
/// is an exact, non-statistical failure on a specific block.
pub fn check_model(engine: &Scaddar, model: &Model) -> Check {
    if engine.disks() != model.disks() {
        return Err(Failure::new(
            "ro1-model",
            format!(
                "disk counts diverged: engine {} vs model {}",
                engine.disks(),
                model.disks()
            ),
        ));
    }
    for (id, expected) in model.placements() {
        let got = engine
            .locate_all(id)
            .map_err(|e| Failure::new("ro1-model", format!("locate_all({id:?}): {e:?}")))?;
        for (blk, (g, e)) in got.iter().zip(&expected).enumerate() {
            if g.0 != *e {
                return Err(Failure::new(
                    "ro1-model",
                    format!(
                        "object {id:?} block {blk}: engine disk {} vs model disk {e}",
                        g.0
                    ),
                ));
            }
        }
        if got.len() != expected.len() {
            return Err(Failure::new(
                "ro1-model",
                format!(
                    "object {id:?}: engine has {} blocks, model {}",
                    got.len(),
                    expected.len()
                ),
            ));
        }
    }
    Ok(())
}

/// **`derived-state`** — caches, pipeline, and fairness tracker are
/// exactly re-derivable from the durable state (catalog + log).
pub fn check_derived(engine: &Scaddar) -> Check {
    engine
        .verify_derived_state()
        .map_err(|e| Failure::new("derived-state", e))
}

/// **`health-quiet`** — on a fault-free clean run the health monitor
/// must not raise any RO1 or RO2 conformance alert.
///
/// Budget (`§4.3`) alerts are *not* failures: a scenario with many
/// scaling operations legitimately exhausts the unfairness budget, and
/// the monitor advising a rehash is exactly the behavior the paper
/// prescribes. Only the conformance probes — which assert the engine is
/// *correct*, not merely aging — must stay silent.
pub fn check_health_quiet(events: &[HealthEvent]) -> Check {
    for e in events {
        if e.severity.is_alert() && (e.probe == "ro1" || e.probe == "ro2") {
            return Err(Failure::new(
                "health-quiet",
                format!(
                    "clean run raised {}/{} {} (value {:.6} vs threshold {:.6}): {}",
                    e.probe,
                    e.kind,
                    e.severity.label(),
                    e.value,
                    e.threshold,
                    e.detail
                ),
            ));
        }
    }
    Ok(())
}

/// **`health-detects-misplacement`** — after silent data rot is planted
/// ([`crate::scenario::Mutation::MisplaceBlock`]), the monitor's exact
/// RO2 conformance probe must have raised an `ro2-misplacement` alert.
pub fn check_health_detects_misplacement(events: &[HealthEvent]) -> Check {
    if events
        .iter()
        .any(|e| e.kind == "ro2-misplacement" && e.severity.is_alert())
    {
        return Ok(());
    }
    Err(Failure::new(
        "health-detects-misplacement",
        format!(
            "planted misplacement raised no ro2-misplacement alert \
             ({} health events recorded)",
            events.len()
        ),
    ))
}

/// **`compaction-no-loss`** — a rehash compaction reorganizes but never
/// loses: the flipped engine serves exactly the pre-compaction catalog
/// (same objects, same block counts), every block locates onto a live
/// disk of the new generation, and the serving store's resident total
/// is unchanged (blocks migrate, they don't vanish or duplicate).
pub fn check_compaction_no_loss(
    engine: &Scaddar,
    pre_catalog: &[(ObjectId, u64)],
    pre_resident: u64,
    post_resident: u64,
) -> Check {
    let post: Vec<(ObjectId, u64)> = engine
        .catalog()
        .objects()
        .iter()
        .map(|o| (o.id, o.blocks))
        .collect();
    if post != pre_catalog {
        return Err(Failure::new(
            "compaction-no-loss",
            format!("catalog changed across the flip: {pre_catalog:?} -> {post:?}"),
        ));
    }
    for obj in engine.catalog().objects() {
        let disks = engine.locate_all(obj.id).map_err(|e| {
            Failure::new(
                "compaction-no-loss",
                format!("locate_all({:?}) after the flip: {e:?}", obj.id),
            )
        })?;
        if disks.len() != obj.blocks as usize {
            return Err(Failure::new(
                "compaction-no-loss",
                format!(
                    "object {:?}: {} blocks locatable after the flip, expected {}",
                    obj.id,
                    disks.len(),
                    obj.blocks
                ),
            ));
        }
        if let Some(d) = disks.iter().find(|d| d.0 >= engine.disks()) {
            return Err(Failure::new(
                "compaction-no-loss",
                format!(
                    "object {:?} placed on disk {} outside the {}-disk array",
                    obj.id,
                    d.0,
                    engine.disks()
                ),
            ));
        }
    }
    if post_resident != pre_resident {
        return Err(Failure::new(
            "compaction-no-loss",
            format!(
                "resident block total changed across compaction: \
                 {pre_resident} -> {post_resident}"
            ),
        ));
    }
    Ok(())
}

/// **`compaction-resets-budget`** — after a completed compaction the
/// REMAP chain is empty (locate is one mod, §4.2's fold has nothing to
/// fold) and the monitor's §4.3 budget probe reports the *full* fresh
/// allowance at the current disk count — the same number a monitor
/// built from scratch against the flipped engine computes.
pub fn check_compaction_resets_budget(engine: &Scaddar, budget_remaining: u32) -> Check {
    let chain = engine.log().epoch();
    if chain != 0 {
        return Err(Failure::new(
            "compaction-resets-budget",
            format!("REMAP chain still {chain} op(s) long after the flip"),
        ));
    }
    let fresh = HealthMonitor::for_engine(
        MonitorConfig::default(),
        Arc::new(VirtualClock::new()),
        engine,
    )
    .budget_remaining();
    if budget_remaining != fresh {
        return Err(Failure::new(
            "compaction-resets-budget",
            format!(
                "budget probe reports {budget_remaining} safe op(s) remaining, \
                 a fresh monitor computes {fresh} at N={}",
                engine.disks()
            ),
        ));
    }
    Ok(())
}

/// **`cluster-routing-agree`** — every routed lookup landed on the
/// shard the independent jump-hash model names as owner.
///
/// `observed` is `(object, serving shard)` per completed lookup;
/// `expected` is the model's verdict for the same object (evolved with
/// its own copy of the jump-hash equations, so any divergence — client
/// routing, shard gate, or map plumbing — is an exact failure on a
/// specific object).
pub fn check_cluster_routing_agree(observed: &[(u64, u32, u32)]) -> Check {
    for &(object, served_by, expected) in observed {
        if served_by != expected {
            return Err(Failure::new(
                "cluster-routing-agree",
                format!(
                    "object {object} served by shard {served_by}, \
                     model routes it to shard {expected}"
                ),
            ));
        }
    }
    Ok(())
}

/// **`cluster-epoch-single`** — no object is served from two cluster
/// epochs at once: probing every shard directly, at most one may
/// answer a lookup (the others must redirect, declare themselves
/// stale, or error).
pub fn check_cluster_epoch_single(object: u64, serving: &[u32]) -> Check {
    if serving.len() > 1 {
        return Err(Failure::new(
            "cluster-epoch-single",
            format!("object {object} served by shards {serving:?} simultaneously"),
        ));
    }
    Ok(())
}

/// **`cluster-migration-delta`** — a topology change migrates *exactly*
/// the jump-hash delta (set equality against the independent model's
/// prediction), and the realized fraction stays within the analytic
/// expectation plus a 6σ binomial allowance.
pub fn check_cluster_migration_delta(
    moved: &[u64],
    predicted: &[u64],
    population: u64,
    expected_fraction: f64,
) -> Check {
    let mut moved_sorted = moved.to_vec();
    moved_sorted.sort_unstable();
    let mut predicted_sorted = predicted.to_vec();
    predicted_sorted.sort_unstable();
    if moved_sorted != predicted_sorted {
        let extra: Vec<u64> = moved_sorted
            .iter()
            .filter(|o| !predicted_sorted.contains(o))
            .copied()
            .collect();
        let missing: Vec<u64> = predicted_sorted
            .iter()
            .filter(|o| !moved_sorted.contains(o))
            .copied()
            .collect();
        return Err(Failure::new(
            "cluster-migration-delta",
            format!(
                "migrated set diverges from the model's jump-hash delta: \
                 {} moved vs {} predicted (extra {extra:?}, missing {missing:?})",
                moved_sorted.len(),
                predicted_sorted.len()
            ),
        ));
    }
    if population == 0 {
        return Ok(());
    }
    let fraction = moved.len() as f64 / population as f64;
    let sigma = (expected_fraction * (1.0 - expected_fraction) / population as f64).sqrt();
    let bound = expected_fraction + 6.0 * sigma;
    if fraction > bound {
        return Err(Failure::new(
            "cluster-migration-delta",
            format!(
                "migrated fraction {fraction:.4} exceeds expected \
                 {expected_fraction:.4} + 6σ bound {bound:.4} \
                 ({} of {population} objects)",
                moved.len()
            ),
        ));
    }
    Ok(())
}

/// **`trace-complete`** — every accepted request yields exactly one
/// root-complete distributed trace: among the spans gathered for
/// `trace_id` (client tracer plus every shard's flight recorder)
/// exactly one is a root (`parent_id == 0`), every non-root span's
/// parent is present (no orphans — a hop that recorded a span under a
/// parent that never recorded is a broken propagation chain), and at
/// least `min_spans` spans exist (`2` for a served lookup: the client
/// root plus the serving shard's continuation).
pub fn check_trace_complete(trace_id: u64, spans: &[SpanRecord], min_spans: usize) -> Check {
    if trace_id == 0 {
        return Err(Failure::new(
            "trace-complete",
            "trace id 0 marks an untraced span and can never be checked".to_string(),
        ));
    }
    let trace: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
    let roots: Vec<&&SpanRecord> = trace.iter().filter(|s| s.parent_id == 0).collect();
    if roots.len() != 1 {
        return Err(Failure::new(
            "trace-complete",
            format!(
                "trace {trace_id:016x} has {} root spans ({:?}), expected exactly 1",
                roots.len(),
                roots.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
            ),
        ));
    }
    let present: std::collections::BTreeSet<u64> = trace.iter().map(|s| s.span_id).collect();
    for s in &trace {
        if s.parent_id != 0 && !present.contains(&s.parent_id) {
            return Err(Failure::new(
                "trace-complete",
                format!(
                    "trace {trace_id:016x}: span {:016x} ({}) is orphaned \
                     under absent parent {:016x}",
                    s.span_id, s.name, s.parent_id
                ),
            ));
        }
    }
    if trace.len() < min_spans {
        return Err(Failure::new(
            "trace-complete",
            format!(
                "trace {trace_id:016x} has {} spans, expected at least {min_spans} \
                 (client root plus every serving hop's continuation)",
                trace.len()
            ),
        ));
    }
    Ok(())
}

/// **`obs-federation-agree`** — the federated fleet registry agrees
///// with the sum of direct per-shard scrapes on every *serving* series:
/// per-endpoint request counters and latency histograms (bucket-wise
/// equal, not just same percentiles) plus the error counters. The
/// `scrape-stats` endpoint and the connection/byte-level series are
/// excluded — the scrapes themselves perturb those (observer effect),
/// so only the serving traffic is required to agree exactly.
pub fn check_federation_agreement(fleet: &RegistrySnapshot, directs: &[RegistrySnapshot]) -> Check {
    let serving_counter = |name: &str| {
        (name.starts_with("net_server_requests_total{") && !name.contains("scrape-stats"))
            || name == "net_server_errors_total"
            || name == "net_server_protocol_errors_total"
    };
    let serving_histogram =
        |name: &str| name.starts_with("net_server_request_ns{") && !name.contains("scrape-stats");
    // Fold the direct scrapes with the same absorb the aggregator uses,
    // so any divergence indicts the federation path, not the fold.
    let expect = Registry::new();
    for d in directs {
        expect.absorb(d);
    }
    let expect = expect.snapshot();
    for c in expect.counters.iter().filter(|c| serving_counter(&c.name)) {
        let got = fleet.counter_value(&c.name);
        if got != Some(c.value) {
            return Err(Failure::new(
                "obs-federation-agree",
                format!(
                    "counter {}: federated {:?} vs direct sum {}",
                    c.name, got, c.value
                ),
            ));
        }
    }
    for h in expect
        .histograms
        .iter()
        .filter(|h| serving_histogram(&h.name))
    {
        match fleet.histogram(&h.name) {
            Some(got) if *got == h.snapshot => {}
            got => {
                return Err(Failure::new(
                    "obs-federation-agree",
                    format!(
                        "histogram {}: federated buckets diverge from the \
                         bucket-wise direct merge (count {:?} vs {})",
                        h.name,
                        got.map(|g| g.count),
                        h.snapshot.count
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// **`profile-conserves`** — the cooperative profiler's residency
/// accounting is exact, not approximate: for every registered thread
/// the per-state counts sum to precisely the rounds that observed it
/// (sampling and snapshotting share one lock, so no round can be
/// half-attributed), and no thread reports more samples than the
/// profiler ran rounds. Holds for a single daemon's dump and for a
/// fleet-merged profile alike; under scripted `VirtualClock` driving,
/// the folded rendering is additionally byte-identical per seed
/// (pinned by the checker's unit tests).
pub fn check_profile_conserves(profile: &ProfileSnapshot) -> Check {
    for thread in &profile.threads {
        let total: u64 = thread.counts.iter().copied().sum();
        if total != thread.samples {
            return Err(Failure::new(
                "profile-conserves",
                format!(
                    "thread {}: residency counts sum to {total} but {} rounds \
                     observed it (counts {:?})",
                    thread.name, thread.samples, thread.counts
                ),
            ));
        }
        if thread.samples > profile.rounds {
            return Err(Failure::new(
                "profile-conserves",
                format!(
                    "thread {}: {} samples exceed the profiler's {} total rounds",
                    thread.name, thread.samples, profile.rounds
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Mutation;
    use scaddar_core::ScaddarConfig;

    fn engine() -> Scaddar {
        let mut e = Scaddar::new(ScaddarConfig::new(5).with_catalog_seed(11)).unwrap();
        e.add_object(1_500);
        e.add_object(800);
        e
    }

    #[test]
    fn clean_engine_passes_every_checker() {
        let mut e = engine();
        let mut model = Model::new(5, Mutation::None);
        for obj in e.catalog().objects() {
            let x0s = (0..obj.blocks).map(|b| e.catalog().x0(obj, b)).collect();
            model.add_object(obj.id, x0s);
        }
        for op in [
            ScalingOp::Add { count: 2 },
            ScalingOp::remove_one(1),
            ScalingOp::Add { count: 1 },
        ] {
            let n_prev = e.disks();
            let plan = e.scale(op.clone()).unwrap();
            model.apply(&op);
            check_ro1_exact(&plan, &op, n_prev).unwrap();
            check_ro1_fraction(&plan).unwrap();
            check_ro2(&e).unwrap();
            check_oracle(&e).unwrap();
            check_model(&e, &model).unwrap();
            check_derived(&e).unwrap();
        }
    }

    #[test]
    fn buggy_model_trips_the_model_check() {
        let mut e = engine();
        let mut model = Model::new(5, Mutation::Ro1AddOffByOne);
        for obj in e.catalog().objects() {
            let x0s = (0..obj.blocks).map(|b| e.catalog().x0(obj, b)).collect();
            model.add_object(obj.id, x0s);
        }
        // A couple of additions make the t == N_{j-1} boundary draw all
        // but certain to occur across 2300 blocks.
        let mut tripped = false;
        for op in [ScalingOp::Add { count: 1 }, ScalingOp::Add { count: 1 }] {
            e.scale(op.clone()).unwrap();
            model.apply(&op);
            if let Err(f) = check_model(&e, &model) {
                assert_eq!(f.invariant, "ro1-model");
                tripped = true;
                break;
            }
        }
        assert!(tripped, "planted off-by-one must be detected");
    }

    #[test]
    fn ro1_exact_flags_a_fabricated_extra_move() {
        let mut e = engine();
        let op = ScalingOp::Add { count: 1 };
        let n_prev = e.disks();
        let mut plan = e.scale(op.clone()).unwrap();
        check_ro1_exact(&plan, &op, n_prev).unwrap();
        // Forge a move between two *old* disks: must be rejected.
        if let Some(m) = plan.moves.first_mut() {
            m.to = scaddar_core::DiskIndex(0);
            m.from = scaddar_core::DiskIndex(1);
        }
        assert!(check_ro1_exact(&plan, &op, n_prev).is_err());
    }

    #[test]
    fn compaction_no_loss_passes_a_real_flip_and_flags_fabricated_loss() {
        let mut e = engine();
        e.scale(ScalingOp::Add { count: 3 }).unwrap();
        e.scale(ScalingOp::remove_one(1)).unwrap();
        let pre: Vec<(scaddar_core::ObjectId, u64)> = e
            .catalog()
            .objects()
            .iter()
            .map(|o| (o.id, o.blocks))
            .collect();
        let resident = e.catalog().total_blocks();
        e.rehash_to_next_generation();
        check_compaction_no_loss(&e, &pre, resident, resident).unwrap();
        // A store that lost a block across the flip.
        let f = check_compaction_no_loss(&e, &pre, resident, resident - 1).unwrap_err();
        assert_eq!(f.invariant, "compaction-no-loss");
        assert!(f.detail.contains("resident block total"), "{}", f.detail);
        // A catalog that changed across the flip.
        let mut wrong = pre.clone();
        wrong[0].1 += 1;
        let f = check_compaction_no_loss(&e, &wrong, resident, resident).unwrap_err();
        assert!(f.detail.contains("catalog changed"), "{}", f.detail);
    }

    #[test]
    fn compaction_resets_budget_demands_empty_chain_and_full_allowance() {
        let mut e = engine();
        e.scale(ScalingOp::Add { count: 2 }).unwrap();
        // Chain not collapsed: a "compaction" that left ops behind.
        let f = check_compaction_resets_budget(&e, 99).unwrap_err();
        assert_eq!(f.invariant, "compaction-resets-budget");
        assert!(f.detail.contains("chain still 1"), "{}", f.detail);
        // A real flip with the fresh monitor's own number passes...
        e.rehash_to_next_generation();
        let fresh =
            HealthMonitor::for_engine(MonitorConfig::default(), Arc::new(VirtualClock::new()), &e)
                .budget_remaining();
        check_compaction_resets_budget(&e, fresh).unwrap();
        // ...but a budget probe that failed to refill does not.
        let f = check_compaction_resets_budget(&e, fresh - 1).unwrap_err();
        assert!(f.detail.contains("fresh monitor computes"), "{}", f.detail);
    }

    #[test]
    fn cluster_routing_agree_flags_the_divergent_object() {
        check_cluster_routing_agree(&[(3, 1, 1), (9, 0, 0)]).unwrap();
        let f = check_cluster_routing_agree(&[(3, 1, 1), (9, 2, 0)]).unwrap_err();
        assert_eq!(f.invariant, "cluster-routing-agree");
        assert!(f.detail.contains("object 9"));
    }

    #[test]
    fn cluster_epoch_single_allows_one_server_at_most() {
        check_cluster_epoch_single(7, &[]).unwrap();
        check_cluster_epoch_single(7, &[2]).unwrap();
        let f = check_cluster_epoch_single(7, &[1, 3]).unwrap_err();
        assert_eq!(f.invariant, "cluster-epoch-single");
    }

    #[test]
    fn cluster_migration_delta_demands_set_equality_and_the_bound() {
        check_cluster_migration_delta(&[4, 1], &[1, 4], 16, 0.25).unwrap();
        // Wrong set (same size): exact failure naming the divergence.
        let f = check_cluster_migration_delta(&[1, 5], &[1, 4], 16, 0.25).unwrap_err();
        assert_eq!(f.invariant, "cluster-migration-delta");
        assert!(f.detail.contains("extra [5]") && f.detail.contains("missing [4]"));
        // Fraction over the 6σ bound: predicted agrees but too much
        // moved (0.60 of 100 against an expected 0.25, bound ≈ 0.51).
        let moved: Vec<u64> = (0..60).collect();
        let f = check_cluster_migration_delta(&moved, &moved, 100, 0.25).unwrap_err();
        assert!(f.detail.contains("exceeds expected"));
    }

    fn span(name: &str, trace_id: u64, span_id: u64, parent_id: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            start_ns: 0,
            end_ns: 0,
            events: Vec::new(),
            trace_id,
            span_id,
            parent_id,
        }
    }

    #[test]
    fn trace_complete_demands_one_root_no_orphans_and_enough_spans() {
        let spans = vec![
            span("cluster.locate", 7, 10, 0),
            span("serve.locate", 7, 20, 10),
            span("serve.locate", 7, 30, 10),
            // Another trace's spans must not interfere.
            span("cluster.locate", 8, 11, 0),
        ];
        check_trace_complete(7, &spans, 3).unwrap();
        // Too few spans for the requested floor.
        let f = check_trace_complete(7, &spans, 4).unwrap_err();
        assert_eq!(f.invariant, "trace-complete");
        assert!(f.detail.contains("at least 4"));
        // No root at all.
        let f = check_trace_complete(7, &spans[1..3], 1).unwrap_err();
        assert!(f.detail.contains("0 root spans"));
        // Two roots.
        let two = vec![span("a", 7, 1, 0), span("b", 7, 2, 0)];
        assert!(check_trace_complete(7, &two, 1).is_err());
        // Orphan: a hop whose parent never recorded.
        let orphaned = vec![span("root", 7, 1, 0), span("hop", 7, 2, 99)];
        let f = check_trace_complete(7, &orphaned, 1).unwrap_err();
        assert!(f.detail.contains("orphaned"));
        // Trace id 0 is never checkable.
        assert!(check_trace_complete(0, &spans, 1).is_err());
    }

    #[test]
    fn profile_conserves_demands_exact_residency_accounting() {
        use scaddar_obs::ThreadProfile;
        let thread = |samples: u64, counts: Vec<u64>| ThreadProfile {
            name: "scaddard-worker-0".to_string(),
            samples,
            counts,
        };
        let ok = ProfileSnapshot {
            at_ns: 0,
            rounds: 10,
            threads: vec![thread(10, vec![3, 7]), thread(4, vec![4])],
        };
        check_profile_conserves(&ok).unwrap();
        // Counts that don't sum to the observed rounds: a lost or
        // double-attributed sample.
        let torn = ProfileSnapshot {
            at_ns: 0,
            rounds: 10,
            threads: vec![thread(10, vec![3, 6])],
        };
        let f = check_profile_conserves(&torn).unwrap_err();
        assert_eq!(f.invariant, "profile-conserves");
        assert!(f.detail.contains("sum to 9"), "{}", f.detail);
        // A thread claiming more observations than rounds ever ran.
        let inflated = ProfileSnapshot {
            at_ns: 0,
            rounds: 3,
            threads: vec![thread(5, vec![5])],
        };
        let f = check_profile_conserves(&inflated).unwrap_err();
        assert!(f.detail.contains("exceed"), "{}", f.detail);
    }

    /// The determinism half of `profile-conserves`: a seeded scripted
    /// drive of the profiler under a `VirtualClock` — the harness's
    /// sampling mode — must conserve *and* render byte-identical
    /// folded output run after run, for every seed.
    #[test]
    fn profile_conserves_is_byte_identical_per_seed() {
        use scaddar_obs::{Profiler, ThreadState, VirtualClock};
        use std::sync::Arc;
        let run = |seed: u64| {
            let profiler = Profiler::new(Arc::new(VirtualClock::new()));
            let workers: Vec<_> = (0..3)
                .map(|i| profiler.register(&format!("scaddard-worker-{i}")))
                .collect();
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
            for _ in 0..500 {
                for (i, w) in workers.iter().enumerate() {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    w.set(ThreadState::from_u8(((state >> (8 * i)) % 8) as u8).unwrap());
                }
                profiler.sample_once();
            }
            let snap = profiler.snapshot();
            check_profile_conserves(&snap).unwrap();
            snap.render_folded()
        };
        for seed in [1u64, 42, 31_337] {
            assert_eq!(run(seed), run(seed), "seed {seed} diverged");
        }
        assert_ne!(run(1), run(2), "different seeds must script differently");
    }

    #[test]
    fn federation_agreement_flags_counter_and_bucket_divergence() {
        let shard = |requests: u64, latency: u64| {
            let r = Registry::new();
            let c = r.counter(
                "net_server_requests_total{endpoint=\"locate\"}",
                "Requests served, by endpoint",
            );
            let h = r.histogram(
                "net_server_request_ns{endpoint=\"locate\"}",
                "Server-side request handling latency, by endpoint",
            );
            for _ in 0..requests {
                c.inc();
                h.record(latency);
            }
            r.snapshot()
        };
        let directs = vec![shard(5, 100), shard(7, 9_000)];
        let fleet = Registry::new();
        for d in &directs {
            fleet.absorb(d);
        }
        check_federation_agreement(&fleet.snapshot(), &directs).unwrap();

        // A fleet view that lost one shard's counts must be flagged.
        let partial = Registry::new();
        partial.absorb(&directs[0]);
        let f = check_federation_agreement(&partial.snapshot(), &directs).unwrap_err();
        assert_eq!(f.invariant, "obs-federation-agree");

        // Same total count but wrong buckets (percentile-averaged
        // instead of bucket-merged) must also be flagged.
        let skewed = Registry::new();
        skewed.absorb(&shard(12, 100));
        let f = check_federation_agreement(&skewed.snapshot(), &directs).unwrap_err();
        assert!(f.detail.contains("bucket-wise"));
    }
}
