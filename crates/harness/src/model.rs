//! An independent placement model: a from-the-paper re-implementation
//! of the `REMAP` fold that evolves every block's `X_j` alongside the
//! engine under test, sharing **no code** with the engine's remap,
//! pipeline, or cache.
//!
//! The model is where the acceptance-criterion bug is planted
//! ([`Mutation::Ro1AddOffByOne`]): with the bug active, model and
//! engine disagree on some boundary block after an addition, and the
//! placement-equality invariant fires deterministically.

use crate::scenario::Mutation;
use scaddar_core::{ObjectId, RemovedSet, ScalingOp};

/// A normalized operation as the model stores it for replaying onto
/// late-added objects.
#[derive(Debug, Clone)]
enum ModelOp {
    Add { n_prev: u64, n_new: u64 },
    Remove { removed: RemovedSet, n_prev: u64 },
}

/// The model state: every object's current `X_j` vector plus the full
/// normalized history (to fold late-added objects forward from `X_0`).
#[derive(Debug, Clone)]
pub struct Model {
    mutation: Mutation,
    disks: u32,
    history: Vec<ModelOp>,
    objects: Vec<(ObjectId, Vec<u64>)>,
}

impl Model {
    /// An empty model over `initial_disks` disks.
    pub fn new(initial_disks: u32, mutation: Mutation) -> Self {
        Model {
            mutation,
            disks: initial_disks,
            history: Vec::new(),
            objects: Vec::new(),
        }
    }

    /// Current disk count.
    pub fn disks(&self) -> u32 {
        self.disks
    }

    /// Registers an object from its `X_0` stream, folding it through the
    /// history so far (the engine's cache does the same on insert).
    pub fn add_object(&mut self, id: ObjectId, x0s: Vec<u64>) {
        let xs = x0s
            .into_iter()
            .map(|mut x| {
                for op in &self.history {
                    x = self.step(x, op);
                }
                x
            })
            .collect();
        self.objects.push((id, xs));
    }

    /// Drops an object.
    pub fn remove_object(&mut self, id: ObjectId) {
        self.objects.retain(|(o, _)| *o != id);
    }

    /// Applies a (pre-validated) scaling operation to every block.
    pub fn apply(&mut self, op: &ScalingOp) {
        let n_prev = u64::from(self.disks);
        let model_op = match op {
            ScalingOp::Add { count } => {
                self.disks += count;
                ModelOp::Add {
                    n_prev,
                    n_new: u64::from(self.disks),
                }
            }
            ScalingOp::Remove { disks } => {
                let removed = RemovedSet::new(disks, self.disks).expect("validated by caller");
                self.disks -= removed.len();
                ModelOp::Remove { removed, n_prev }
            }
        };
        // Split borrow: step() needs &self.mutation only.
        let mutation = self.mutation;
        for (_, xs) in &mut self.objects {
            for x in xs.iter_mut() {
                *x = step_x(mutation, *x, &model_op);
            }
        }
        self.history.push(model_op);
    }

    fn step(&self, x: u64, op: &ModelOp) -> u64 {
        step_x(self.mutation, x, op)
    }

    /// The model's placement of every block of every object, in
    /// insertion order: `(object, block_placements)`.
    pub fn placements(&self) -> Vec<(ObjectId, Vec<u32>)> {
        let n = u64::from(self.disks);
        self.objects
            .iter()
            .map(|(id, xs)| (*id, xs.iter().map(|x| (x % n) as u32).collect()))
            .collect()
    }

    /// The model's `X_j` vector for one object, if present.
    pub fn xs(&self, id: ObjectId) -> Option<&[u64]> {
        self.objects
            .iter()
            .find(|(o, _)| *o == id)
            .map(|(_, xs)| xs.as_slice())
    }
}

/// One `REMAP_j` application, straight from the paper.
///
/// Addition (Eq. 5): with `q = X_{j-1} div N_{j-1}`,
/// `r = X_{j-1} mod N_{j-1}`, draw `t = q mod N_j`; if `t < N_{j-1}`
/// the block stays (`X_j = (q div N_j)·N_j + r`, preserving its disk
/// `r`), else it moves to a fresh disk (`X_j = q`, whose residue is in
/// `N_{j-1}..N_j`).
///
/// Removal (Eq. 3): victims redraw (`X_j = q`), survivors keep their
/// disk under rank renumbering (`X_j = q·N_j + new(r)`).
fn step_x(mutation: Mutation, x: u64, op: &ModelOp) -> u64 {
    match op {
        ModelOp::Add { n_prev, n_new } => {
            let q = x / n_prev;
            let r = x % n_prev;
            let t = q % n_new;
            let keep = match mutation {
                // MisplaceBlock corrupts the server, not the model: the
                // model's arithmetic stays faithful.
                Mutation::None | Mutation::MisplaceBlock => t < *n_prev,
                // The planted bug: boundary draw t == n_prev wrongly kept.
                Mutation::Ro1AddOffByOne => t <= *n_prev,
            };
            if keep {
                (q / n_new) * n_new + r
            } else {
                q
            }
        }
        ModelOp::Remove { removed, n_prev } => {
            let q = x / n_prev;
            let r = (x % n_prev) as u32;
            if removed.contains(r) {
                q
            } else {
                let n_new = n_prev - u64::from(removed.len());
                q * n_new + u64::from(removed.renumber(r))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaddar_core::{locate, ScalingLog};

    /// The clean model agrees with the engine's reference fold on a
    /// mixed history — the model is only useful if it is itself right.
    #[test]
    fn clean_model_matches_reference_fold() {
        let ops = [
            ScalingOp::Add { count: 2 },
            ScalingOp::Remove { disks: vec![0, 3] },
            ScalingOp::Add { count: 1 },
            ScalingOp::remove_one(2),
        ];
        let mut log = ScalingLog::new(5).unwrap();
        let mut model = Model::new(5, Mutation::None);
        let x0s: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        model.add_object(ObjectId(0), x0s.clone());
        for op in &ops {
            log.push(op).unwrap();
            model.apply(op);
        }
        let placements = model.placements();
        for (i, &x0) in x0s.iter().enumerate() {
            assert_eq!(
                placements[0].1[i],
                locate(x0, &log).0,
                "block {i} diverged from the reference fold"
            );
        }
    }

    /// The planted bug actually bites: for some addition history and
    /// some block, the buggy model diverges from the reference.
    #[test]
    fn planted_bug_diverges_somewhere() {
        let mut log = ScalingLog::new(4).unwrap();
        let mut model = Model::new(4, Mutation::Ro1AddOffByOne);
        // Splitmix-style mixing: a raw multiplier can alias with the
        // div/mod lattice and never produce the boundary draw at all.
        let x0s: Vec<u64> = (0..2_000u64)
            .map(|i| {
                let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 30;
                z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^ (z >> 27)
            })
            .collect();
        model.add_object(ObjectId(0), x0s.clone());
        let op = ScalingOp::Add { count: 1 };
        log.push(&op).unwrap();
        model.apply(&op);
        let placements = model.placements();
        let diverged = x0s
            .iter()
            .enumerate()
            .filter(|&(i, &x0)| placements[0].1[i] != locate(x0, &log).0)
            .count();
        assert!(diverged > 0, "the off-by-one must be observable");
        // And it is *rare* (one t value in N_j), which is why a harness
        // (not a lucky unit test) is the right net for it.
        assert!(diverged < x0s.len() / 2);
    }

    /// Late-added objects fold through the stored history exactly like
    /// objects present from the start.
    #[test]
    fn late_objects_fold_through_history() {
        let ops = [ScalingOp::Add { count: 3 }, ScalingOp::remove_one(1)];
        let x0s: Vec<u64> = (0..300u64).map(|i| i * 7 + 13).collect();

        let mut early = Model::new(4, Mutation::None);
        early.add_object(ObjectId(0), x0s.clone());
        let mut late = Model::new(4, Mutation::None);
        for op in &ops {
            early.apply(op);
            late.apply(op);
        }
        late.add_object(ObjectId(0), x0s);
        assert_eq!(early.placements(), late.placements());
    }
}
