//! Seeded scenario generation: one `u64` seed determines the whole run —
//! initial array shape, object catalog, every scaling operation, every
//! workload phase, and the injected fault plan.
//!
//! Raw generated values are *loose* (removal victims are arbitrary
//! `u64` picks, sizes are unclamped); [`crate::exec`] normalizes them
//! against live state at execution time. Loose-generate/strict-execute
//! is what makes shrinking easy: any substructure can be dropped or
//! reduced and the scenario stays executable.

use proptest::test_runner::TestRng;
use scaddar_core::ScalingOp;

/// Which variant of the remap arithmetic the *model* runs — the planted
/// bug the acceptance tests require the harness to catch and shrink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Faithful copy of `REMAP` (Eqs. 3 and 5): the clean run.
    None,
    /// Off-by-one in the copy of `REMAP_add`: `t <= N_{j-1}` instead of
    /// `t < N_{j-1}`, so the boundary draw `t == N_{j-1}` is wrongly
    /// treated as "keep" — an RO1 violation the invariants must flag.
    Ro1AddOffByOne,
    /// Silent data rot planted in the *server*, not the model: after the
    /// scenario completes, one resident block is relocated behind the
    /// engine's back via `CmServer::inject_misplacement`. The model stays
    /// faithful; the health monitor's exact RO2 conformance probe must
    /// raise an `ro2-misplacement` alert or the run fails.
    MisplaceBlock,
}

/// A fault injected around one scaling operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Crash before the post-op snapshot persists: recovery replays the
    /// journal on top of the previous snapshot and must land on the
    /// uncrashed placement.
    CrashBeforePersist,
    /// Crash right after persisting: recovery from the fresh snapshot
    /// must be placement-identical.
    CrashAfterPersist,
    /// The persisted snapshot is truncated at `cut % len` bytes; decode
    /// must error, and recovery must fall back to the last valid one.
    TruncatedSnapshot {
        /// Raw cut-point pick (normalized modulo snapshot length).
        cut: u64,
    },
    /// A single bit `bit % (len*8)` of the snapshot flips; decode must
    /// error (CRC32 catches all 1-bit errors) or be placement-identical.
    BitFlippedSnapshot {
        /// Raw bit-position pick.
        bit: u64,
    },
    /// One disk dies after the op: with mirroring on, no block may be
    /// lost, and a cloned server must keep serving via mirror failover.
    DiskDeath {
        /// Raw victim pick (normalized modulo disk count).
        pick: u64,
    },
    /// Concurrent readers against a [`cmsim::SharedServer`] while the op
    /// commits: every read must observe one consistent epoch.
    StaleEpochReads {
        /// Reads per reader thread.
        reads: u32,
    },
}

impl Fault {
    /// Compact stable label for traces.
    pub fn label(&self) -> String {
        match self {
            Fault::CrashBeforePersist => "crash-before-persist".into(),
            Fault::CrashAfterPersist => "crash-after-persist".into(),
            Fault::TruncatedSnapshot { cut } => format!("truncate({cut})"),
            Fault::BitFlippedSnapshot { bit } => format!("bitflip({bit})"),
            Fault::DiskDeath { pick } => format!("disk-death({pick})"),
            Fault::StaleEpochReads { reads } => format!("stale-reads({reads})"),
        }
    }
}

/// One step of a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Apply a scaling operation (normalized at exec time) with a fault
    /// plan around it.
    Scale {
        /// The raw operation.
        op: ScalingOp,
        /// Faults to inject around this operation.
        faults: Vec<Fault>,
    },
    /// Register a new object of roughly `blocks` blocks.
    AddObject {
        /// Raw size pick (clamped at exec time).
        blocks: u64,
    },
    /// Remove the `pick % live`-th object (skipped if it would empty
    /// the catalog).
    RemoveObject {
        /// Raw object pick.
        pick: u64,
    },
    /// Run the closed-loop workload for `1 + rounds % 5` rounds.
    Workload {
        /// Raw round pick.
        rounds: u32,
    },
    /// Rehash-compact to the next generation (collapsing the REMAP
    /// chain); `kill` optionally names a disk (raw pick, normalized at
    /// exec time) to fail mid-migration on a cloned server, which must
    /// still complete the flip without losing a block.
    Compact {
        /// Raw mid-migration kill victim, if any.
        kill: Option<u64>,
    },
}

/// A fully seeded test scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The driving seed (also used as catalog seed).
    pub seed: u64,
    /// Initial disk count `N_0`.
    pub initial_disks: u32,
    /// Initial object sizes (blocks).
    pub objects: Vec<u64>,
    /// The step sequence.
    pub steps: Vec<Step>,
}

impl Scenario {
    /// Deterministically generates the scenario for `seed`.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = TestRng::new(seed ^ 0x5CAD_DA25_CADD_A25C);
        let initial_disks = 4 + rng.below(9) as u32; // 4..=12
        let objects: Vec<u64> = (0..2 + rng.below(3))
            .map(|_| 300 + rng.below(901))
            .collect();
        let steps = (0..6 + rng.below(9)).map(|_| gen_step(&mut rng)).collect();
        Scenario {
            seed,
            initial_disks,
            objects,
            steps,
        }
    }

    /// Number of scale steps (the measure the planted-bug acceptance
    /// criterion bounds after shrinking).
    pub fn scale_ops(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Scale { .. }))
            .count()
    }

    /// A stable multi-line description (for reproducer printouts).
    pub fn describe(&self) -> String {
        let mut out = format!(
            "seed={} disks={} objects={:?}\n",
            self.seed, self.initial_disks, self.objects
        );
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                Step::Scale { op, faults } => {
                    let labels: Vec<String> = faults.iter().map(Fault::label).collect();
                    out.push_str(&format!(
                        "  {i}: scale {op:?} faults=[{}]\n",
                        labels.join(",")
                    ));
                }
                Step::AddObject { blocks } => {
                    out.push_str(&format!("  {i}: add-object {blocks}\n"));
                }
                Step::RemoveObject { pick } => {
                    out.push_str(&format!("  {i}: remove-object {pick}\n"));
                }
                Step::Workload { rounds } => {
                    out.push_str(&format!("  {i}: workload {rounds}\n"));
                }
                Step::Compact { kill: Some(pick) } => {
                    out.push_str(&format!("  {i}: compact kill({pick})\n"));
                }
                Step::Compact { kill: None } => {
                    out.push_str(&format!("  {i}: compact\n"));
                }
            }
        }
        out
    }
}

fn gen_step(rng: &mut TestRng) -> Step {
    match rng.below(10) {
        0..=3 => {
            let op = if rng.below(2) == 0 {
                ScalingOp::Add {
                    count: 1 + rng.below(3) as u32,
                }
            } else {
                let victims = 1 + rng.below(2) as usize;
                ScalingOp::Remove {
                    disks: (0..victims).map(|_| rng.next_u64() as u32).collect(),
                }
            };
            let faults = if rng.below(2) == 0 {
                vec![gen_fault(rng)]
            } else {
                Vec::new()
            };
            Step::Scale { op, faults }
        }
        4 => Step::AddObject {
            blocks: 50 + rng.below(1_200),
        },
        5 => Step::RemoveObject {
            pick: rng.next_u64(),
        },
        6 | 7 => Step::Workload {
            rounds: rng.below(16) as u32,
        },
        _ => Step::Compact {
            kill: (rng.below(2) == 0).then(|| rng.next_u64()),
        },
    }
}

fn gen_fault(rng: &mut TestRng) -> Fault {
    match rng.below(6) {
        0 => Fault::CrashBeforePersist,
        1 => Fault::CrashAfterPersist,
        2 => Fault::TruncatedSnapshot {
            cut: rng.next_u64(),
        },
        3 => Fault::BitFlippedSnapshot {
            bit: rng.next_u64(),
        },
        4 => Fault::DiskDeath {
            pick: rng.next_u64(),
        },
        _ => Fault::StaleEpochReads {
            reads: 32 + rng.below(97) as u32,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Scenario::generate(seed), Scenario::generate(seed));
        }
        assert_ne!(Scenario::generate(1), Scenario::generate(2));
    }

    #[test]
    fn generated_shapes_are_in_band() {
        for seed in 0..200u64 {
            let s = Scenario::generate(seed);
            assert!((4..=12).contains(&s.initial_disks));
            assert!((2..=4).contains(&s.objects.len()));
            assert!((6..=14).contains(&s.steps.len()));
            for o in &s.objects {
                assert!((300..=1_200).contains(o));
            }
        }
    }

    #[test]
    fn seeds_cover_every_step_and_fault_kind() {
        let (mut scale, mut add, mut remove, mut work) = (0, 0, 0, 0);
        let (mut compact, mut compact_kill) = (0, 0);
        let mut fault_kinds = std::collections::BTreeSet::new();
        for seed in 0..300u64 {
            for step in Scenario::generate(seed).steps {
                match step {
                    Step::Scale { faults, .. } => {
                        scale += 1;
                        for f in faults {
                            let label = f.label();
                            let kind = label.split('(').next().expect("nonempty").to_string();
                            fault_kinds.insert(kind);
                        }
                    }
                    Step::AddObject { .. } => add += 1,
                    Step::RemoveObject { .. } => remove += 1,
                    Step::Workload { .. } => work += 1,
                    Step::Compact { kill } => {
                        compact += 1;
                        if kill.is_some() {
                            compact_kill += 1;
                        }
                    }
                }
            }
        }
        assert!(scale > 0 && add > 0 && remove > 0 && work > 0);
        assert!(compact > 0, "compaction steps generated");
        assert!(compact_kill > 0, "kill-during-compaction steps generated");
        assert_eq!(fault_kinds.len(), 6, "every fault kind generated");
    }
}
