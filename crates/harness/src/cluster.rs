//! Cluster-mode harness: seeded multi-shard scenarios with kills,
//! partitions, restarts, and online scale-out/in, cross-checked after
//! every step against an **independent** routing model.
//!
//! The model ([`RoutingModel`]) reimplements jump consistent hash from
//! the Lamping & Veach equations with its own code shape — it shares
//! no routing code with `scaddar_net::cluster` — so a divergence
//! anywhere in the stack (client map-chasing, shard gate, migration
//! plumbing) is an exact failure on a specific object, not a
//! statistical smell. Three invariants run against it:
//!
//! * **`cluster-routing-agree`** — every lookup the seeded load
//!   completes landed on the model's owner;
//! * **`cluster-epoch-single`** — direct probes of every shard find at
//!   most one serving any sampled object;
//! * **`cluster-migration-delta`** — each scale-out/in migrated
//!   exactly the model's predicted delta, within the analytic
//!   fraction + 6σ.
//!
//! Same seed → byte-identical trace (the cluster runs under a
//! [`VirtualClock`] and the trace records only logical events). On
//! failure the scenario shrinks delta-debug style ([`minimize`]) to a
//! minimal cluster reproducer, reusing the `proptest` shim's shrinking
//! vocabulary like the single-node harness does.

use crate::invariants::{
    check_cluster_epoch_single, check_cluster_migration_delta, check_cluster_routing_agree,
    check_federation_agreement, check_profile_conserves, check_trace_complete, Failure,
};
use proptest::shrink::{halvings, removal_spans};
use proptest::test_runner::TestRng;
use scaddar_cluster::{Cluster, ClusterConfig, FleetAggregator, MigrationRecord, ProbeResult};
use scaddar_net::{ClusterClient, NetClient};
use scaddar_obs::{Tracer, VirtualClock};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Which routing arithmetic the *model* runs — the plantable bug the
/// cluster acceptance tests require the harness to catch and shrink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterMutation {
    /// Faithful jump hash: the clean run.
    None,
    /// The model routes over `n - 1` buckets whenever the cluster has
    /// more than one shard — as if the newest shard never existed. The
    /// first load step over a multi-shard cluster diverges on every
    /// object the real map sends to the last bucket, so
    /// `cluster-routing-agree` must fire and shrink to a tiny
    /// reproducer.
    RouteIgnoreNewestShard,
}

/// Independent copy of the jump-consistent-hash bucket function,
/// written from the paper's equations (loop-and-advance form, distinct
/// from `scaddar_net::jump_hash`'s while-guard form). Same LCG
/// constant, same floating-point expression, so a faithful
/// implementation agrees bit-for-bit.
fn owning_bucket(object: u64, buckets: u32) -> u32 {
    debug_assert!(buckets > 0);
    let mut state = object;
    let mut bucket: u64 = 0;
    loop {
        state = state
            .wrapping_mul(2_862_933_555_777_941_757)
            .wrapping_add(1);
        let draw = ((state >> 33) + 1) as f64;
        let candidate = ((bucket as f64 + 1.0) * (2_147_483_648.0 / draw)) as u64;
        if candidate >= u64::from(buckets) {
            return bucket as u32;
        }
        bucket = candidate;
    }
}

/// The from-the-paper routing model: a sorted shard-id list and the
/// jump bucket function, nothing else. Evolves in lockstep with the
/// orchestrator's topology changes.
#[derive(Debug, Clone)]
pub struct RoutingModel {
    shards: Vec<u32>,
    mutation: ClusterMutation,
}

impl RoutingModel {
    /// A model of a fresh cluster with shards `0..n`.
    pub fn new(n: u32, mutation: ClusterMutation) -> RoutingModel {
        RoutingModel {
            shards: (0..n).collect(),
            mutation,
        }
    }

    /// The shard the model says owns `object`.
    pub fn route(&self, object: u64) -> Option<u32> {
        if self.shards.is_empty() {
            return None;
        }
        let buckets = match self.mutation {
            ClusterMutation::None => self.shards.len(),
            ClusterMutation::RouteIgnoreNewestShard => self.shards.len().max(2) - 1,
        };
        Some(self.shards[owning_bucket(object, buckets as u32) as usize])
    }

    /// Mirrors a scale-out (new highest id).
    pub fn add_shard(&mut self, id: u32) {
        debug_assert!(self.shards.last().is_none_or(|last| *last < id));
        self.shards.push(id);
    }

    /// Mirrors a scale-in.
    pub fn remove_shard(&mut self, id: u32) {
        self.shards.retain(|s| *s != id);
    }

    /// Objects in `catalog` whose owner changes between `self` and
    /// `next` — the predicted migration delta.
    pub fn predicted_delta(&self, next: &RoutingModel, catalog: &[u64]) -> Vec<u64> {
        catalog
            .iter()
            .filter(|&&gid| self.route(gid) != next.route(gid))
            .copied()
            .collect()
    }

    /// Analytic expected move fraction for the transition to `next`
    /// (the model's own derivation, mirroring the paper's `z_j`
    /// reasoning at cluster granularity).
    pub fn expected_fraction(&self, next: &RoutingModel) -> f64 {
        let (old, new) = (&self.shards, &next.shards);
        if old == new {
            0.0
        } else if new.len() == old.len() + 1 && new.starts_with(old) {
            1.0 / new.len() as f64
        } else if old.len() == new.len() + 1 {
            match (0..old.len()).find(|&i| !new.contains(&old[i])) {
                Some(i) => (old.len() - i) as f64 / old.len() as f64,
                None => 1.0,
            }
        } else {
            1.0
        }
    }
}

/// One step of a cluster scenario. Raw picks are loose; the executor
/// normalizes them against live topology (skipping steps that have no
/// legal target), which keeps every shrink candidate executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterStep {
    /// Ingest `1 + count % 8` objects.
    Ingest {
        /// Raw count pick.
        count: u64,
    },
    /// Drive `1 + requests % 24` routed lookups through the client,
    /// checking each against the model.
    Load {
        /// Raw request pick.
        requests: u64,
    },
    /// Scale out by one shard (always the next id / last bucket).
    AddShard,
    /// Scale in: drain and retire the `pick % live`-th shard (skipped
    /// when only one shard remains).
    RemoveShard {
        /// Raw victim pick.
        pick: u64,
    },
    /// Kill the `pick % up`-th live shard (snapshot retained; skipped
    /// when it would take the last live shard down).
    Kill {
        /// Raw victim pick.
        pick: u64,
    },
    /// Restart the longest-dead shard from its snapshot (skipped when
    /// none is down).
    Restart,
    /// Partition the `pick % candidates`-th non-partitioned shard from
    /// the control plane (it keeps serving by its stale map).
    Partition {
        /// Raw victim pick.
        pick: u64,
    },
    /// Heal the longest-partitioned shard (skipped when none).
    Heal,
}

impl ClusterStep {
    fn label(&self) -> String {
        match self {
            ClusterStep::Ingest { count } => format!("ingest({count})"),
            ClusterStep::Load { requests } => format!("load({requests})"),
            ClusterStep::AddShard => "add-shard".into(),
            ClusterStep::RemoveShard { pick } => format!("remove-shard({pick})"),
            ClusterStep::Kill { pick } => format!("kill({pick})"),
            ClusterStep::Restart => "restart".into(),
            ClusterStep::Partition { pick } => format!("partition({pick})"),
            ClusterStep::Heal => "heal".into(),
        }
    }
}

/// A fully seeded cluster scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterScenario {
    /// The driving seed (also each shard's catalog-seed base).
    pub seed: u64,
    /// Initial shard count.
    pub initial_shards: u32,
    /// Initial object count.
    pub initial_objects: u64,
    /// The step sequence.
    pub steps: Vec<ClusterStep>,
}

impl ClusterScenario {
    /// Deterministically generates the cluster scenario for `seed`.
    pub fn generate(seed: u64) -> ClusterScenario {
        let mut rng = TestRng::new(seed ^ 0xC1u64.wrapping_mul(0x5CAD_DA25_CADD_A25C));
        let initial_shards = 2 + rng.below(3) as u32; // 2..=4
        let initial_objects = 24 + rng.below(49); // 24..=72
        let steps = (0..4 + rng.below(6)).map(|_| gen_step(&mut rng)).collect();
        ClusterScenario {
            seed,
            initial_shards,
            initial_objects,
            steps,
        }
    }

    /// A stable multi-line description (for reproducer printouts).
    pub fn describe(&self) -> String {
        let mut out = format!(
            "seed={} shards={} objects={}\n",
            self.seed, self.initial_shards, self.initial_objects
        );
        for (i, step) in self.steps.iter().enumerate() {
            let _ = writeln!(out, "  {i}: {}", step.label());
        }
        out
    }

    /// Number of topology-change steps (the measure the planted-bug
    /// acceptance criterion bounds after shrinking).
    pub fn topology_ops(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, ClusterStep::AddShard | ClusterStep::RemoveShard { .. }))
            .count()
    }
}

fn gen_step(rng: &mut TestRng) -> ClusterStep {
    match rng.below(10) {
        0 => ClusterStep::Ingest {
            count: rng.next_u64(),
        },
        1..=4 => ClusterStep::Load {
            requests: rng.next_u64(),
        },
        5 => ClusterStep::AddShard,
        6 => ClusterStep::RemoveShard {
            pick: rng.next_u64(),
        },
        7 => ClusterStep::Kill {
            pick: rng.next_u64(),
        },
        8 => ClusterStep::Partition {
            pick: rng.next_u64(),
        },
        _ => {
            if rng.below(2) == 0 {
                ClusterStep::Restart
            } else {
                ClusterStep::Heal
            }
        }
    }
}

/// Execution outcome: the logical trace plus the first failure.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Logical event trace — byte-identical for a given scenario.
    pub trace: String,
    /// First invariant violation, if any.
    pub failure: Option<Failure>,
    /// Index of the step that failed.
    pub failed_step: Option<usize>,
}

impl ClusterOutcome {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

const BLOCKS_PER_OBJECT: u64 = 400;

struct Exec {
    cluster: Cluster,
    client: ClusterClient,
    model: RoutingModel,
    /// Snapshots of killed shards, oldest kill first.
    down: Vec<(u32, Vec<u8>)>,
    /// Partitioned shard ids, oldest first.
    partitioned: Vec<u32>,
    /// Client root spans already audited by `trace_complete_audit`
    /// (the client tracer's capacity exceeds any scenario's lookup
    /// count, so indices into its root list are stable).
    roots_checked: usize,
    rng: TestRng,
    trace: String,
}

impl Exec {
    /// Shards that are up, un-partitioned, and map-current — the only
    /// ones a routed lookup may be required to land on.
    fn reachable(&self, shard: u32) -> bool {
        self.cluster.addr(shard).is_some()
            && !self.partitioned.contains(&shard)
            && !self.down.iter().any(|(id, _)| *id == shard)
    }

    /// Runs the routed-load check: every completed lookup must land on
    /// the model's owner.
    fn load(&mut self, requests: u64) -> Result<(u64, u64), Failure> {
        let population = self.cluster.object_ids().len() as u64;
        let mut observed = Vec::new();
        let mut skipped = 0u64;
        for _ in 0..requests {
            let gid = self.rng.next_u64() % population.max(1);
            let Some(expected) = self.model.route(gid) else {
                skipped += 1;
                continue;
            };
            // Also consult the real map: when the two disagree (the
            // planted mutation), the lookup still lands somewhere and
            // the checker reports the divergence; but a *down* real
            // owner makes the lookup fail for fault-model reasons, not
            // routing reasons, so those are skipped.
            let real_owner = self.cluster.map().route(gid);
            if real_owner.map(|o| !self.reachable(o)).unwrap_or(true) {
                skipped += 1;
                continue;
            }
            let block = self.rng.next_u64() % BLOCKS_PER_OBJECT;
            match self.client.locate(gid, block) {
                Ok(answer) => observed.push((gid, answer.shard, expected)),
                Err(e) => {
                    return Err(Failure {
                        invariant: "cluster-routing-agree",
                        detail: format!("lookup {gid}/{block} failed after retries: {e}"),
                    })
                }
            }
        }
        let served = observed.len() as u64;
        check_cluster_routing_agree(&observed)?;
        Ok((served, skipped))
    }

    /// Probes a deterministic sample of objects on every shard; at
    /// most one shard may serve each.
    fn epoch_single_sweep(&self) -> Result<(), Failure> {
        let gids = self.cluster.object_ids();
        let stride = (gids.len() / 6).max(1);
        for gid in gids.iter().step_by(stride) {
            let serving: Vec<u32> = self
                .cluster
                .probe_object(*gid, 0)
                .into_iter()
                .filter(|(_, r)| matches!(r, ProbeResult::Served(..)))
                .map(|(id, _)| id)
                .collect();
            check_cluster_epoch_single(*gid, &serving)?;
        }
        Ok(())
    }

    /// **`trace-complete`** audit over every client root span not yet
    /// checked: each completed lookup must have stitched into exactly
    /// one trace holding the client root plus at least one serving
    /// hop's continuation span (the shards' flight recorders hold the
    /// server side). Runs right after every load step, before later
    /// traffic can evict the spans from the shard rings.
    fn trace_complete_audit(&mut self) -> Result<usize, Failure> {
        let Some(tracer) = self.client.tracer() else {
            return Ok(0);
        };
        let roots: Vec<u64> = tracer
            .recent(usize::MAX)
            .iter()
            .filter(|s| s.parent_id == 0 && s.trace_id != 0)
            .map(|s| s.trace_id)
            .collect();
        let fresh = roots[self.roots_checked.min(roots.len())..].to_vec();
        let shard_ids = self.cluster.shard_ids();
        for &trace_id in &fresh {
            let mut spans = tracer.spans_for_trace(trace_id);
            for id in &shard_ids {
                if let Some(t) = self.cluster.shard_tracer(*id) {
                    spans.extend(t.spans_for_trace(trace_id));
                }
            }
            check_trace_complete(trace_id, &spans, 2)?;
        }
        self.roots_checked = roots.len();
        Ok(fresh.len())
    }

    /// **`obs-federation-agree`** end-of-run audit: one
    /// [`FleetAggregator`] round over every live shard must find all
    /// of them reachable and agree with direct per-shard scrapes on
    /// every serving series.
    fn federation_audit(&self) -> Result<usize, Failure> {
        let targets = self.cluster.scrape_targets();
        let mut aggregator = FleetAggregator::new(self.cluster.clock().clone());
        let fleet = aggregator.scrape(&targets);
        let unreachable = fleet.unreachable_shards();
        if !unreachable.is_empty() {
            return Err(Failure {
                invariant: "obs-federation-agree",
                detail: format!("aggregator found live shards unreachable: {unreachable:?}"),
            });
        }
        let mut directs = Vec::new();
        for (shard, addr) in &targets {
            let (_, _, snapshot) =
                NetClient::connect(*addr)
                    .scrape_stats()
                    .map_err(|e| Failure {
                        invariant: "obs-federation-agree",
                        detail: format!("direct scrape of shard {shard} failed: {e}"),
                    })?;
            directs.push(snapshot);
        }
        check_federation_agreement(&fleet.fleet_registry().snapshot(), &directs)?;
        Ok(targets.len())
    }

    /// **`profile-conserves`** end-of-run audit: a fleet-wide profile
    /// scrape of every live shard must merge into shard-rooted rows
    /// whose residency counts conserve exactly (each thread's counts
    /// sum to the rounds that observed it). The daemons' real-time
    /// samplers make the *counts* wall-clock dependent, so only the
    /// exact conservation identity is asserted here — the scripted
    /// byte-identical-per-seed half lives in the invariant's own
    /// `VirtualClock` tests.
    fn profile_audit(&self) -> Result<usize, Failure> {
        let targets = self.cluster.scrape_targets();
        let aggregator = FleetAggregator::new(self.cluster.clock().clone());
        let merged = aggregator.scrape_profiles(&targets);
        if merged.threads.len() < targets.len() {
            return Err(Failure {
                invariant: "profile-conserves",
                detail: format!(
                    "fleet profile has {} thread rows across {} live shards — \
                     some shard answered ProfileDump with no registered threads",
                    merged.threads.len(),
                    targets.len()
                ),
            });
        }
        check_profile_conserves(&merged)?;
        Ok(targets.len())
    }

    /// Audits one completed migration against the model's prediction,
    /// then advances the model to `next`.
    fn audit_migration(
        &mut self,
        record: &MigrationRecord,
        next: RoutingModel,
    ) -> Result<(), Failure> {
        let catalog = self.cluster.object_ids();
        let predicted = self.model.predicted_delta(&next, &catalog);
        let moved: Vec<u64> = record.moved.iter().map(|m| m.0).collect();
        let expected = self.model.expected_fraction(&next);
        check_cluster_migration_delta(&moved, &predicted, record.population, expected)?;
        self.model = next;
        Ok(())
    }
}

/// Executes `scenario` against a real loopback cluster, checking the
/// cluster invariant catalog after every step.
pub fn execute(scenario: &ClusterScenario, mutation: ClusterMutation) -> ClusterOutcome {
    let clock = Arc::new(VirtualClock::new());
    let cluster = match Cluster::boot_with_clock(
        ClusterConfig {
            shards: scenario.initial_shards,
            blocks_per_object: BLOCKS_PER_OBJECT,
            catalog_seed: scenario.seed,
            migration_batch: 4,
            ..ClusterConfig::default()
        },
        clock.clone(),
    ) {
        Ok(c) => c,
        Err(e) => {
            return ClusterOutcome {
                trace: String::new(),
                failure: Some(Failure {
                    invariant: "cluster-boot",
                    detail: e,
                }),
                failed_step: None,
            }
        }
    };
    let mut exec = {
        let mut cluster = cluster;
        if let Err(e) = cluster.populate(scenario.initial_objects) {
            return ClusterOutcome {
                trace: String::new(),
                failure: Some(Failure {
                    invariant: "cluster-boot",
                    detail: e,
                }),
                failed_step: None,
            };
        }
        let mut client = match ClusterClient::connect(&cluster.seeds()) {
            Ok(c) => c,
            Err(e) => {
                return ClusterOutcome {
                    trace: String::new(),
                    failure: Some(Failure {
                        invariant: "cluster-boot",
                        detail: e.to_string(),
                    }),
                    failed_step: None,
                }
            }
        };
        // Root spans are seeded from (scenario seed, lookup sequence),
        // so the trace ids — and the whole logical trace — stay
        // byte-identical across runs. 4096 spans outlasts any
        // scenario's lookup budget.
        client.enable_tracing(Tracer::new(clock.clone(), 4096), scenario.seed);
        Exec {
            client,
            model: RoutingModel::new(scenario.initial_shards, mutation),
            down: Vec::new(),
            partitioned: Vec::new(),
            roots_checked: 0,
            rng: TestRng::new(scenario.seed ^ 0x10AD_10AD_10AD_10AD),
            trace: format!(
                "boot shards={} objects={} map=v{}\n",
                scenario.initial_shards,
                scenario.initial_objects,
                cluster.map().version
            ),
            cluster,
        }
    };

    for (i, step) in scenario.steps.iter().enumerate() {
        clock.advance(1_000_000);
        let result = run_step(&mut exec, step);
        match result {
            Ok(note) => {
                let _ = writeln!(exec.trace, "{i}: {} -> {note}", step.label());
            }
            Err(failure) => {
                let _ = writeln!(
                    exec.trace,
                    "{i}: {} -> FAIL [{}] {}",
                    step.label(),
                    failure.invariant,
                    failure.detail
                );
                exec.cluster.shutdown();
                return ClusterOutcome {
                    trace: exec.trace,
                    failure: Some(failure),
                    failed_step: Some(i),
                };
            }
        }
        // The epoch-single sweep runs after every step: kills,
        // partitions, and half-finished topology states must never
        // leave an object served twice.
        if let Err(failure) = exec.epoch_single_sweep() {
            let _ = writeln!(
                exec.trace,
                "{i}: sweep -> FAIL [{}] {}",
                failure.invariant, failure.detail
            );
            exec.cluster.shutdown();
            return ClusterOutcome {
                trace: exec.trace,
                failure: Some(failure),
                failed_step: Some(i),
            };
        }
    }
    if let Err(e) = exec.cluster.residency_consistent() {
        let failure = Failure {
            invariant: "cluster-epoch-single",
            detail: format!("final residency audit: {e}"),
        };
        let _ = writeln!(
            exec.trace,
            "final: FAIL [{}] {}",
            failure.invariant, failure.detail
        );
        exec.cluster.shutdown();
        return ClusterOutcome {
            trace: exec.trace,
            failure: Some(failure),
            failed_step: Some(scenario.steps.len().saturating_sub(1)),
        };
    }
    match exec.federation_audit() {
        Ok(shards) => {
            let _ = writeln!(exec.trace, "federation: {shards} shards agree");
        }
        Err(failure) => {
            let _ = writeln!(
                exec.trace,
                "federation: FAIL [{}] {}",
                failure.invariant, failure.detail
            );
            exec.cluster.shutdown();
            return ClusterOutcome {
                trace: exec.trace,
                failure: Some(failure),
                failed_step: Some(scenario.steps.len().saturating_sub(1)),
            };
        }
    }
    match exec.profile_audit() {
        Ok(shards) => {
            // Only the shard count goes in the trace: the real-time
            // sampler makes round counts wall-clock dependent, and the
            // trace must stay byte-identical per seed.
            let _ = writeln!(exec.trace, "profiles: {shards} shards conserve");
        }
        Err(failure) => {
            let _ = writeln!(
                exec.trace,
                "profiles: FAIL [{}] {}",
                failure.invariant, failure.detail
            );
            exec.cluster.shutdown();
            return ClusterOutcome {
                trace: exec.trace,
                failure: Some(failure),
                failed_step: Some(scenario.steps.len().saturating_sub(1)),
            };
        }
    }
    let _ = writeln!(exec.trace, "final map=v{}", exec.cluster.map().version);
    exec.cluster.shutdown();
    ClusterOutcome {
        trace: exec.trace,
        failure: None,
        failed_step: None,
    }
}

fn run_step(exec: &mut Exec, step: &ClusterStep) -> Result<String, Failure> {
    match step {
        ClusterStep::Ingest { count } => {
            let n = 1 + count % 8;
            for _ in 0..n {
                exec.cluster
                    .add_object(BLOCKS_PER_OBJECT)
                    .map_err(|e| Failure {
                        invariant: "cluster-boot",
                        detail: format!("ingest: {e}"),
                    })?;
            }
            Ok(format!(
                "ingested {n} (population {})",
                exec.cluster.object_ids().len()
            ))
        }
        ClusterStep::Load { requests } => {
            let n = 1 + requests % 24;
            let (served, skipped) = exec.load(n)?;
            let traced = exec.trace_complete_audit()?;
            Ok(format!("served={served} skipped={skipped} traced={traced}"))
        }
        ClusterStep::AddShard => {
            let (id, record) = exec.cluster.add_shard().map_err(|e| Failure {
                invariant: "cluster-migration-delta",
                detail: format!("add-shard: {e}"),
            })?;
            let mut next = exec.model.clone();
            next.add_shard(id);
            let moved = record.moved.len();
            exec.audit_migration(&record, next)?;
            Ok(format!(
                "shard {id} joined, moved {moved}/{} map=v{}",
                record.population,
                exec.cluster.map().version
            ))
        }
        ClusterStep::RemoveShard { pick } => {
            let live = exec.cluster.shard_ids();
            if live.len() <= 1 {
                return Ok("skipped (last shard)".into());
            }
            let victim = live[(pick % live.len() as u64) as usize];
            let record = exec.cluster.remove_shard(victim).map_err(|e| Failure {
                invariant: "cluster-migration-delta",
                detail: format!("remove-shard {victim}: {e}"),
            })?;
            exec.down.retain(|(id, _)| *id != victim);
            exec.partitioned.retain(|id| *id != victim);
            let mut next = exec.model.clone();
            next.remove_shard(victim);
            let moved = record.moved.len();
            exec.audit_migration(&record, next)?;
            Ok(format!(
                "shard {victim} drained, moved {moved}/{} map=v{}",
                record.population,
                exec.cluster.map().version
            ))
        }
        ClusterStep::Kill { pick } => {
            let up: Vec<u32> = exec
                .cluster
                .shard_ids()
                .into_iter()
                .filter(|id| exec.cluster.addr(*id).is_some())
                .collect();
            if up.len() <= 1 {
                return Ok("skipped (last live shard)".into());
            }
            let victim = up[(pick % up.len() as u64) as usize];
            let snapshot = exec.cluster.kill(victim).map_err(|e| Failure {
                invariant: "cluster-epoch-single",
                detail: format!("kill {victim}: {e}"),
            })?;
            exec.down.push((victim, snapshot));
            Ok(format!("shard {victim} down"))
        }
        ClusterStep::Restart => {
            let Some((victim, snapshot)) = exec.down.first().cloned() else {
                return Ok("skipped (none down)".into());
            };
            exec.down.remove(0);
            exec.cluster
                .restart(victim, &snapshot)
                .map_err(|e| Failure {
                    invariant: "cluster-epoch-single",
                    detail: format!("restart {victim}: {e}"),
                })?;
            Ok(format!(
                "shard {victim} rejoined map=v{}",
                exec.cluster.map().version
            ))
        }
        ClusterStep::Partition { pick } => {
            let candidates: Vec<u32> = exec
                .cluster
                .shard_ids()
                .into_iter()
                .filter(|id| !exec.partitioned.contains(id))
                .collect();
            if candidates.len() <= 1 {
                return Ok("skipped (no candidate)".into());
            }
            let victim = candidates[(pick % candidates.len() as u64) as usize];
            exec.cluster.partition(victim).map_err(|e| Failure {
                invariant: "cluster-epoch-single",
                detail: format!("partition {victim}: {e}"),
            })?;
            exec.partitioned.push(victim);
            Ok(format!("shard {victim} partitioned"))
        }
        ClusterStep::Heal => {
            let Some(&victim) = exec.partitioned.first() else {
                return Ok("skipped (none partitioned)".into());
            };
            exec.partitioned.remove(0);
            exec.cluster.heal(victim).map_err(|e| Failure {
                invariant: "cluster-epoch-single",
                detail: format!("heal {victim}: {e}"),
            })?;
            Ok(format!("shard {victim} healed"))
        }
    }
}

/// The result of minimizing a failing cluster scenario.
#[derive(Debug, Clone)]
pub struct ShrunkCluster {
    /// The minimal scenario found (fails the same invariant).
    pub scenario: ClusterScenario,
    /// Its outcome.
    pub outcome: ClusterOutcome,
    /// Candidate executions spent.
    pub executions: usize,
    /// Adopted shrink steps.
    pub adopted: usize,
}

/// Execution budget for one cluster shrink run. Each candidate boots a
/// real loopback cluster, so the budget is tighter than the
/// single-node shrinker's.
const SHRINK_BUDGET: usize = 80;

/// Minimizes `scenario`, which must fail under `mutation` with the
/// invariant named `invariant` — delta-debugging over the step list,
/// then the initial shape, reusing the `proptest` shim's candidate
/// generators.
pub fn minimize(
    scenario: &ClusterScenario,
    mutation: ClusterMutation,
    invariant: &str,
) -> ShrunkCluster {
    let mut current = scenario.clone();
    let mut outcome = execute(&current, mutation);
    let mut executions = 1usize;
    let mut adopted = 0usize;
    debug_assert!(
        matches(&outcome, invariant),
        "caller must pass a failing scenario"
    );

    // Everything after the failing step is dead weight.
    if let Some(fs) = outcome.failed_step {
        if fs + 1 < current.steps.len() {
            current.steps.truncate(fs + 1);
            outcome = execute(&current, mutation);
            executions += 1;
            adopted += 1;
        }
    }

    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            if executions >= SHRINK_BUDGET {
                return ShrunkCluster {
                    scenario: current,
                    outcome,
                    executions,
                    adopted,
                };
            }
            let o = execute(&candidate, mutation);
            executions += 1;
            if matches(&o, invariant) {
                current = candidate;
                outcome = o;
                adopted += 1;
                improved = true;
                break;
            }
        }
        if !improved {
            return ShrunkCluster {
                scenario: current,
                outcome,
                executions,
                adopted,
            };
        }
    }
}

fn matches(outcome: &ClusterOutcome, invariant: &str) -> bool {
    outcome
        .failure
        .as_ref()
        .is_some_and(|f| f.invariant == invariant)
}

/// All one-edit-smaller candidates, most aggressive first.
fn candidates(s: &ClusterScenario) -> Vec<ClusterScenario> {
    let mut out = Vec::new();
    for (start, end) in removal_spans(s.steps.len(), 0, 16) {
        let mut c = s.clone();
        c.steps.drain(start..end);
        out.push(c);
    }
    for (i, step) in s.steps.iter().enumerate() {
        match step {
            ClusterStep::Load { requests } => {
                for r in halvings(0, *requests) {
                    let mut c = s.clone();
                    c.steps[i] = ClusterStep::Load { requests: r };
                    out.push(c);
                }
            }
            ClusterStep::Ingest { count } => {
                for n in halvings(0, *count) {
                    let mut c = s.clone();
                    c.steps[i] = ClusterStep::Ingest { count: n };
                    out.push(c);
                }
            }
            _ => {}
        }
    }
    for o in halvings(1, s.initial_objects) {
        let mut c = s.clone();
        c.initial_objects = o;
        out.push(c);
    }
    for n in halvings(1, u64::from(s.initial_shards)) {
        let mut c = s.clone();
        c.initial_shards = n as u32;
        out.push(c);
    }
    out
}

/// Everything one cluster seed produced.
#[derive(Debug)]
pub struct ClusterRunReport {
    /// The driving seed.
    pub seed: u64,
    /// The generated scenario.
    pub scenario: ClusterScenario,
    /// Execution outcome.
    pub outcome: ClusterOutcome,
    /// Minimized reproducer, present iff the run failed.
    pub shrunk: Option<ShrunkCluster>,
}

impl ClusterRunReport {
    /// Whether the seed passed the cluster invariant catalog.
    pub fn passed(&self) -> bool {
        self.outcome.passed()
    }

    /// Human-readable report. Deterministic for a given seed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(f) = &self.outcome.failure {
            let _ = writeln!(
                out,
                "cluster seed {}: FAIL [{}] {}",
                self.seed, f.invariant, f.detail
            );
            let _ = writeln!(out, "full scenario:\n{}", self.scenario.describe());
            if let Some(shrunk) = &self.shrunk {
                let _ = writeln!(
                    out,
                    "minimal reproducer ({} executions, {} shrink steps, \
                     {} topology ops):\n{}",
                    shrunk.executions,
                    shrunk.adopted,
                    shrunk.scenario.topology_ops(),
                    shrunk.scenario.describe()
                );
                let _ = writeln!(out, "minimal trace:\n{}", shrunk.outcome.trace);
            }
            let _ = writeln!(out, "trace:\n{}", self.outcome.trace);
            let _ = writeln!(
                out,
                "replay: HARNESS_SEED={} cargo run --release -p scaddar-harness -- --cluster",
                self.seed
            );
        } else {
            let _ = writeln!(
                out,
                "cluster seed {}: PASS ({} steps, {} topology ops)",
                self.seed,
                self.scenario.steps.len(),
                self.scenario.topology_ops(),
            );
        }
        out
    }
}

/// Runs one cluster seed end to end: generate, execute, and (on
/// failure) minimize.
pub fn run_cluster_seed(seed: u64, mutation: ClusterMutation) -> ClusterRunReport {
    let scenario = ClusterScenario::generate(seed);
    let outcome = execute(&scenario, mutation);
    let shrunk = outcome
        .failure
        .as_ref()
        .map(|f| minimize(&scenario, mutation, f.invariant));
    ClusterRunReport {
        seed,
        scenario,
        outcome,
        shrunk,
    }
}

/// Keeps [`BTreeMap`] in the public graph for downstream callers that
/// group migration records per shard.
pub type MigrationsByShard = BTreeMap<u32, Vec<MigrationRecord>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_bucket_agrees_with_the_net_implementation() {
        for n in [1u32, 2, 3, 5, 16, 101] {
            for key in (0..2_000u64).chain([u64::MAX, u64::MAX / 2]) {
                assert_eq!(
                    owning_bucket(key, n),
                    scaddar_net::jump_hash(key, n),
                    "key {key} buckets {n}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_in_band() {
        for seed in 0..100u64 {
            let a = ClusterScenario::generate(seed);
            assert_eq!(a, ClusterScenario::generate(seed));
            assert!((2..=4).contains(&a.initial_shards));
            assert!((24..=72).contains(&a.initial_objects));
            assert!((4..=9).contains(&a.steps.len()));
        }
    }

    #[test]
    fn seeds_cover_every_step_kind() {
        let mut kinds = std::collections::BTreeSet::new();
        for seed in 0..200u64 {
            for step in ClusterScenario::generate(seed).steps {
                kinds.insert(step.label().split('(').next().unwrap().to_string());
            }
        }
        for kind in [
            "ingest",
            "load",
            "add-shard",
            "remove-shard",
            "kill",
            "restart",
            "partition",
            "heal",
        ] {
            assert!(kinds.contains(kind), "no seed generated {kind}");
        }
    }

    #[test]
    fn clean_cluster_seeds_pass() {
        for seed in [3u64, 17] {
            let report = run_cluster_seed(seed, ClusterMutation::None);
            assert!(report.passed(), "seed {seed}:\n{}", report.render());
        }
    }

    #[test]
    fn execution_is_trace_reproducible() {
        let scenario = ClusterScenario::generate(5);
        let a = execute(&scenario, ClusterMutation::None);
        let b = execute(&scenario, ClusterMutation::None);
        assert_eq!(a.trace, b.trace);
        assert!(a.passed(), "{}", a.trace);
    }

    /// One seeded run: a client holding a stale map looks up an object
    /// that a scale-out just moved, eats the `WrongShard` bounce, and
    /// the stitched trace renders as a single tree with at least three
    /// spans — client root, the stale shard's hop, and the owner's.
    fn wrong_shard_hop_trace(seed: u64) -> (u64, String) {
        let clock = Arc::new(VirtualClock::new());
        let mut cluster = Cluster::boot_with_clock(
            ClusterConfig {
                shards: 2,
                blocks_per_object: BLOCKS_PER_OBJECT,
                catalog_seed: seed,
                migration_batch: 4,
                ..ClusterConfig::default()
            },
            clock.clone(),
        )
        .unwrap();
        cluster.populate(16).unwrap();
        // Connect (adopting map v1) *before* the scale-out, so the
        // client's first hop goes to the old owner.
        let mut client = ClusterClient::connect(&cluster.seeds()).unwrap();
        client.enable_tracing(Tracer::new(clock.clone(), 256), seed);
        let old_owners: Vec<(u64, u32)> = cluster
            .object_ids()
            .iter()
            .map(|g| (*g, cluster.map().route(*g).unwrap()))
            .collect();
        cluster.add_shard().unwrap();
        let (moved, _) = *old_owners
            .iter()
            .find(|(g, old)| cluster.map().route(*g) != Some(*old))
            .expect("a scale-out over 16 objects moves at least one");
        let answer = client.locate(moved, 0).unwrap();
        assert_eq!(Some(answer.shard), cluster.map().route(moved));
        let (_, bounces, ..) = client.stats_snapshot();
        assert!(bounces >= 1, "stale lookup must bounce via WrongShard");

        let tracer = client.tracer().unwrap();
        let root = tracer.recent(1).pop().unwrap();
        let mut spans = tracer.spans_for_trace(root.trace_id);
        for id in cluster.shard_ids() {
            if let Some(t) = cluster.shard_tracer(id) {
                spans.extend(t.spans_for_trace(root.trace_id));
            }
        }
        check_trace_complete(root.trace_id, &spans, 3)
            .unwrap_or_else(|f| panic!("[{}] {}", f.invariant, f.detail));
        let dump = scaddar_obs::render_trace_dump(&spans, root.trace_id);
        cluster.shutdown();
        (root.trace_id, dump)
    }

    #[test]
    fn stale_client_wrong_shard_hop_renders_one_trace_with_three_spans() {
        let (trace_a, dump_a) = wrong_shard_hop_trace(42);
        let (trace_b, dump_b) = wrong_shard_hop_trace(42);
        assert_eq!(trace_a, trace_b, "root trace ids must be seed-stable");
        assert_eq!(dump_a, dump_b, "trace dump must be byte-identical");
        assert!(dump_a.contains("cluster.locate"), "{dump_a}");
        assert!(dump_a.contains("wrong-shard"), "{dump_a}");
        assert!(dump_a.contains("serve.locate"), "{dump_a}");
    }
}
