//! CLI for the deterministic simulation harness.
//!
//! ```text
//! scaddar-harness [--seed N] [--runs K] [--plant-bug ro1|misplace|route]
//!                 [--events-out PATH] [--cluster]
//! ```
//!
//! - `--seed N` (or env `HARNESS_SEED=N`): first seed; default 1.
//! - `--runs K`: run seeds `N, N+1, …, N+K-1`; default 1.
//! - `--plant-bug ro1`: run the model with the planted RO1 off-by-one,
//!   to demonstrate detection + shrinking end to end.
//! - `--plant-bug misplace`: plant silent data rot in the server after
//!   the last step; the health monitor must raise `ro2-misplacement`.
//! - `--events-out PATH` (or env `HEALTH_EVENTS_PATH`): write every
//!   run's health-monitor JSONL event log to `PATH`.
//! - `--cluster`: run seeded *cluster* scenarios instead — a real
//!   loopback multi-shard cluster with kills, partitions, restarts,
//!   and online scale, checked against the independent jump-hash
//!   routing model. `--plant-bug route` plants the model-side routing
//!   bug the cluster shrinker must catch and minimize.
//!
//! Exit code 0 iff every seed passed. Same seed → byte-identical output.

use scaddar_harness::cluster::ClusterMutation;
use scaddar_harness::scenario::Mutation;

fn main() {
    let mut seed: u64 = std::env::var("HARNESS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut runs: u64 = 1;
    let mut mutation = Mutation::None;
    let mut cluster = false;
    let mut cluster_mutation = ClusterMutation::None;
    let mut events_out: Option<String> = std::env::var("HEALTH_EVENTS_PATH").ok();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = expect_value(&args, i, "--seed");
                i += 2;
            }
            "--runs" => {
                runs = expect_value(&args, i, "--runs");
                i += 2;
            }
            "--plant-bug" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("ro1") => mutation = Mutation::Ro1AddOffByOne,
                    Some("misplace") => mutation = Mutation::MisplaceBlock,
                    Some("route") => cluster_mutation = ClusterMutation::RouteIgnoreNewestShard,
                    other => die(&format!(
                        "--plant-bug expects `ro1`, `misplace`, or `route`, got {other:?}"
                    )),
                }
                i += 2;
            }
            "--cluster" => {
                cluster = true;
                i += 1;
            }
            "--events-out" => {
                match args.get(i + 1) {
                    Some(path) => events_out = Some(path.clone()),
                    None => die("--events-out expects a path"),
                }
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: scaddar-harness [--seed N] [--runs K] \
                     [--plant-bug ro1|misplace|route] [--events-out PATH] \
                     [--cluster]\n\
                     env: HARNESS_SEED=N sets the first seed; \
                     HEALTH_EVENTS_PATH=PATH writes the health event log"
                );
                return;
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }

    let mut failures = 0u64;
    let mut events = String::new();
    for s in seed..seed.saturating_add(runs) {
        if cluster {
            let report = scaddar_harness::cluster::run_cluster_seed(s, cluster_mutation);
            print!("{}", report.render());
            if !report.passed() {
                failures += 1;
            }
            continue;
        }
        let report = scaddar_harness::run_seed(s, mutation);
        print!("{}", report.render());
        events.push_str(&report.outcome.health_events);
        if !report.passed() {
            failures += 1;
        }
    }
    if let Some(path) = events_out {
        if let Err(e) = std::fs::write(&path, &events) {
            die(&format!("writing health events to {path}: {e}"));
        }
        eprintln!(
            "scaddar-harness: wrote {} health event(s) to {path}",
            events.lines().count()
        );
    }
    if runs > 1 {
        println!("{}/{runs} seeds passed", runs - failures);
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

fn expect_value(args: &[String], i: usize, flag: &str) -> u64 {
    match args.get(i + 1).and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => die(&format!("{flag} expects an integer value")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("scaddar-harness: {msg}");
    std::process::exit(2)
}
