//! CLI for the deterministic simulation harness.
//!
//! ```text
//! scaddar-harness [--seed N] [--runs K] [--plant-bug ro1]
//! ```
//!
//! - `--seed N` (or env `HARNESS_SEED=N`): first seed; default 1.
//! - `--runs K`: run seeds `N, N+1, …, N+K-1`; default 1.
//! - `--plant-bug ro1`: run the model with the planted RO1 off-by-one,
//!   to demonstrate detection + shrinking end to end.
//!
//! Exit code 0 iff every seed passed. Same seed → byte-identical output.

use scaddar_harness::scenario::Mutation;

fn main() {
    let mut seed: u64 = std::env::var("HARNESS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut runs: u64 = 1;
    let mut mutation = Mutation::None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = expect_value(&args, i, "--seed");
                i += 2;
            }
            "--runs" => {
                runs = expect_value(&args, i, "--runs");
                i += 2;
            }
            "--plant-bug" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("ro1") => mutation = Mutation::Ro1AddOffByOne,
                    other => die(&format!("--plant-bug expects `ro1`, got {other:?}")),
                }
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: scaddar-harness [--seed N] [--runs K] [--plant-bug ro1]\n\
                     env: HARNESS_SEED=N sets the first seed"
                );
                return;
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }

    let mut failures = 0u64;
    for s in seed..seed.saturating_add(runs) {
        let report = scaddar_harness::run_seed(s, mutation);
        print!("{}", report.render());
        if !report.passed() {
            failures += 1;
        }
    }
    if runs > 1 {
        println!("{}/{runs} seeds passed", runs - failures);
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

fn expect_value(args: &[String], i: usize, flag: &str) -> u64 {
    match args.get(i + 1).and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => die(&format!("{flag} expects an integer value")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("scaddar-harness: {msg}");
    std::process::exit(2)
}
