//! Collection strategies: `vec` and `btree_set` with flexible size
//! specifications.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// An inclusive size band for generated collections; converts from the
/// same forms upstream proptest accepts in this workspace.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// A strategy for `Vec<S::Value>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        // Structural candidates first (shorter vectors are strictly
        // simpler), then element-wise shrinks at a bounded number of
        // positions so wide vectors don't explode the candidate list.
        let mut out = Vec::new();
        for (start, end) in crate::shrink::removal_spans(value.len(), self.size.min, 16) {
            let mut v = value.clone();
            v.drain(start..end);
            out.push(v);
        }
        let stride = (value.len() / 16).max(1);
        let mut i = 0;
        while i < value.len() {
            for cand in self.element.shrink(&value[i]).into_iter().take(2) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
            i += stride;
        }
        out
    }
}

/// A strategy for `BTreeSet<S::Value>` targeting a size within `size`
/// (best effort: duplicates are retried a bounded number of times, so a
/// narrow element domain may yield a smaller set).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Clone,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(64).max(64) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }

    fn shrink(&self, value: &BTreeSet<S::Value>) -> Vec<BTreeSet<S::Value>> {
        if value.len() <= self.size.min {
            return Vec::new();
        }
        value
            .iter()
            .map(|e| {
                let mut s = value.clone();
                s.remove(e);
                s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_sizes_stay_in_band() {
        let mut rng = TestRng::new(3);
        let strat = vec(any::<u8>(), 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn vec_exact_size() {
        let mut rng = TestRng::new(3);
        assert_eq!(vec(any::<u64>(), 7usize).generate(&mut rng).len(), 7);
    }

    #[test]
    fn btree_set_respects_target_when_domain_allows() {
        let mut rng = TestRng::new(11);
        let strat = btree_set(0u32..1000, 4..=8);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!((4..=8).contains(&s.len()), "len {}", s.len());
        }
    }

    #[test]
    fn btree_set_narrow_domain_terminates() {
        let mut rng = TestRng::new(11);
        // Only 2 possible values but target up to 8: must not loop forever.
        let s = btree_set(0u32..2, 1..=8).generate(&mut rng);
        assert!(!s.is_empty() && s.len() <= 2);
    }

    #[test]
    fn vec_shrink_never_violates_min_size() {
        let mut rng = TestRng::new(19);
        let strat = vec(0u64..100, 3..10);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            for cand in strat.shrink(&v) {
                assert!(cand.len() >= 3, "shrunk below min: {cand:?}");
                for &e in &cand {
                    assert!(e < 100, "element left the domain");
                }
            }
        }
    }

    #[test]
    fn vec_shrink_proposes_shorter_and_smaller() {
        let strat = vec(0u64..100, 0..10);
        let cands = strat.shrink(&vec![50u64, 60, 70, 80]);
        assert!(cands.iter().any(|c| c.len() < 4), "no structural shrink");
        assert!(
            cands
                .iter()
                .any(|c| c.len() == 4 && c.iter().sum::<u64>() < 260),
            "no element-wise shrink"
        );
        assert!(strat.shrink(&Vec::new()).is_empty());
    }

    #[test]
    fn btree_set_shrink_drops_single_elements() {
        let strat = btree_set(0u32..1000, 1..=8);
        let value: BTreeSet<u32> = [5, 9, 21].into_iter().collect();
        let cands = strat.shrink(&value);
        assert_eq!(cands.len(), 3);
        for c in &cands {
            assert_eq!(c.len(), 2);
            assert!(c.is_subset(&value));
        }
        let single: BTreeSet<u32> = [5].into_iter().collect();
        assert!(strat.shrink(&single).is_empty(), "min size respected");
    }
}
