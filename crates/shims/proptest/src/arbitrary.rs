//! `any::<T>()` — full-domain strategies for primitive types, biased
//! toward boundary values the way upstream proptest's binary search
//! tends to surface them.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;

    /// Simpler candidates for `self` (toward the type's zero value);
    /// empty when already minimal.
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                // One draw in eight lands on an edge value: integer
                // overflow and off-by-one bugs live there, and pure
                // uniform sampling essentially never visits them.
                if rng.below(8) == 0 {
                    const EDGES: [$t; 4] = [0, 1, <$t>::MAX, <$t>::MAX - 1];
                    EDGES[rng.below(4) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }

            fn shrink_value(&self) -> Vec<$t> {
                crate::shrink::int_candidates(0, *self as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }

    fn shrink_value(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_is_deterministic_per_seed() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        for _ in 0..64 {
            assert_eq!(u64::arbitrary_value(&mut a), u64::arbitrary_value(&mut b));
        }
    }

    #[test]
    fn any_shrinks_toward_zero() {
        let strat = any::<u64>();
        let cands = strat.shrink(&1_000);
        assert_eq!(cands[0], 0);
        assert!(cands.iter().all(|&v| v < 1_000));
        assert!(strat.shrink(&0).is_empty());
        assert_eq!(any::<bool>().shrink(&true), vec![false]);
        assert!(any::<bool>().shrink(&false).is_empty());
    }

    #[test]
    fn any_hits_edges() {
        let mut rng = TestRng::new(1);
        let strat = any::<u32>();
        let mut saw_max = false;
        for _ in 0..500 {
            saw_max |= strat.generate(&mut rng) == u32::MAX;
        }
        assert!(saw_max, "edge bias should surface MAX within 500 draws");
    }
}
