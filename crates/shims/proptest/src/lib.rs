//! Offline stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so this shim provides the subset of proptest's API that the
//! workspace's tests use, implemented on std alone. Semantics:
//!
//! * **Random sampling with greedy shrinking.** Each test case draws
//!   fresh values from a deterministic per-test generator; a failing
//!   case is minimized by greedily adopting the first still-failing
//!   strategy-proposed candidate (smaller integers, shorter
//!   collections/strings) to a fixpoint, then reported together with
//!   the case number and replay seed.
//! * **Deterministic by default.** The base seed is derived from the
//!   test name, so runs are reproducible. Set `PROPTEST_RNG_SEED` to
//!   explore a different sample, and `PROPTEST_CASES` to change the
//!   number of cases (default 64).
//! * **API-compatible for this workspace.** `proptest!`, `prop_assert*`,
//!   `prop_assume!`, `prop_oneof!`, `any`, range/tuple/`Just`/`prop_map`
//!   strategies and `collection::{vec, btree_set}` behave like their
//!   upstream counterparts for generation purposes.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod shrink;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: one or more `fn name(pat in strategy, ...)`
/// items, optionally preceded by `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner =
                    $crate::test_runner::TestRunner::new($config, stringify!($name));
                // All bindings generate through one tuple strategy so
                // the runner can shrink the whole input jointly; the
                // RNG stream is unchanged from per-binding generation
                // (tuples draw components left to right).
                let __proptest_strategy = ($(($strat),)+);
                runner.run_shrink(&__proptest_strategy, |__proptest_value| {
                    let ($($pat,)+) = __proptest_value;
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the current case
/// (with its seed) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current test case (without failing) when a precondition
/// does not hold; the runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value
/// type. (Upstream supports weights; this shim is always uniform.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
