//! Value-generation strategies: ranges, tuples, `Just`, mapping,
//! boxing, and uniform unions.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can generate values of one type from a [`TestRng`].
///
/// Unlike upstream proptest there is no value tree: a strategy is a
/// deterministic function of the RNG stream, plus an optional
/// [`shrink`](Strategy::shrink) that proposes simpler variants of a
/// failing value (greedy first-fit, see `TestRunner::run_shrink`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler candidates for `value`, most aggressive first.
    ///
    /// Every candidate must itself be a value this strategy could have
    /// generated (stay in range / respect size bounds). The default is
    /// no shrinking, which is always sound.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies with the
    /// same value type can be stored together (see [`Union`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Object-safe projection of [`Strategy`], so boxed strategies keep
/// their shrinking behaviour through type erasure.
trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
    fn dyn_shrink(&self, value: &V) -> Vec<V>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }

    fn dyn_shrink(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// A type-erased strategy produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }

    fn shrink(&self, value: &V) -> Vec<V> {
        self.0.dyn_shrink(value)
    }
}

/// Uniform choice among boxed strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
#[derive(Debug)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }

    fn shrink(&self, value: &V) -> Vec<V> {
        // The generating arm is unknown after the fact; pool every
        // arm's candidates. A candidate another arm could not have
        // produced is still one *some* arm could, so the union could.
        self.arms.iter().flat_map(|a| a.shrink(value)).collect()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = if width > u128::from(u64::MAX) {
                    // Wider than 64 bits can only be (nearly) the full
                    // i128-expressible u64/i64 domain; a raw draw is
                    // uniform over it.
                    u128::from(rng.next_u64())
                } else {
                    u128::from(rng.below(width as u64))
                };
                (self.start as i128 + offset as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                crate::shrink::int_candidates(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let offset = if width > u128::from(u64::MAX) {
                    u128::from(rng.next_u64())
                } else {
                    u128::from(rng.below(width as u64))
                };
                (lo as i128 + offset as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                crate::shrink::int_candidates(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Float shrink candidates: the lower bound, then the midpoint toward
/// it. Floats don't bisect to a fixpoint the way integers do, so two
/// candidates per round keeps the greedy loop terminating.
fn f64_candidates(lo: f64, value: f64) -> Vec<f64> {
    let mut out = Vec::new();
    if value > lo {
        out.push(lo);
        let mid = lo + (value - lo) / 2.0;
        if mid > lo && mid < value {
            out.push(mid);
        }
    }
    out
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        f64_candidates(self.start, *value)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        f64_candidates(*self.start(), *value)
    }
}

/// Characters sampled when a string pattern asks for "any character".
/// Mostly printable ASCII, salted with edge cases that exercise parsers.
const EDGE_CHARS: &[char] = &['\0', '\t', '\n', '\u{7f}', 'é', '\u{2028}', '🦀'];

/// String-pattern strategy: supports the `.{min,max}` regex form used in
/// this workspace (a random string of that length); any other pattern
/// generates itself literally.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_dot_repeat(self) {
            Some((min, max)) => {
                let len = min + rng.below((max - min + 1) as u64) as usize;
                (0..len)
                    .map(|_| {
                        if rng.below(16) == 0 {
                            EDGE_CHARS[rng.below(EDGE_CHARS.len() as u64) as usize]
                        } else {
                            char::from(0x20 + rng.below(0x5F) as u8)
                        }
                    })
                    .collect()
            }
            None => (*self).to_string(),
        }
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        // Shorter strings are simpler; truncate toward the pattern's
        // minimum length. Literal patterns have nothing simpler.
        let Some((min, _)) = parse_dot_repeat(self) else {
            return Vec::new();
        };
        let len = value.chars().count();
        crate::shrink::int_candidates(min as i128, len as i128)
            .into_iter()
            .map(|keep| value.chars().take(keep as usize).collect())
            .collect()
    }
}

/// Parses `.{min,max}` into `(min, max)`; `None` for any other string.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = body.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    (min <= max).then_some((min, max))
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Shrink one component at a time, holding the rest
                // fixed — the standard product-space walk.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(0xDEAD_BEEF)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u32..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let w = (1u8..=64).generate(&mut r);
            assert!((1..=64).contains(&w));
            let f = (-2.0f64..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
            let s = (-5i32..5).generate(&mut r);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut r = rng();
        let _ = (0u64..=u64::MAX).generate(&mut r);
    }

    #[test]
    fn ranges_cover_every_value() {
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(0u32..4).generate(&mut r) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn map_and_just_compose() {
        let mut r = rng();
        let s = Just(21u64).prop_map(|v| v * 2);
        assert_eq!(s.generate(&mut r), 42);
    }

    #[test]
    fn union_picks_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true; 3]);
    }

    #[test]
    fn dot_repeat_pattern_respects_length() {
        let mut r = rng();
        for _ in 0..100 {
            let s = ".{0,60}".generate(&mut r);
            assert!(s.chars().count() <= 60);
        }
        assert_eq!("literal".generate(&mut r), "literal");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u32..10, Just("x"), 5u64..6).generate(&mut r);
        assert!(a < 10);
        assert_eq!(b, "x");
        assert_eq!(c, 5);
    }

    #[test]
    fn range_shrink_stays_in_range_and_simplifies() {
        let strat = 3u32..17;
        for cand in strat.shrink(&15) {
            assert!((3..15).contains(&cand), "candidate {cand}");
        }
        assert_eq!(strat.shrink(&15)[0], 3, "lower bound tried first");
        assert!(strat.shrink(&3).is_empty(), "minimum has no candidates");

        let inc = 5u64..=90;
        for cand in inc.shrink(&64) {
            assert!((5..64).contains(&cand));
        }
    }

    #[test]
    fn f64_shrink_moves_toward_lower_bound() {
        let strat = -2.0f64..2.0;
        let cands = strat.shrink(&1.0);
        assert_eq!(cands[0], -2.0);
        assert!(cands[1] > -2.0 && cands[1] < 1.0);
        assert!(strat.shrink(&-2.0).is_empty());
    }

    #[test]
    fn str_shrink_truncates_respecting_min() {
        let mut r = rng();
        let strat = ".{2,60}";
        let value = strat.generate(&mut r);
        for cand in Strategy::shrink(&strat, &value) {
            let n = cand.chars().count();
            assert!(n >= 2 && n < value.chars().count());
            assert!(value.starts_with(&cand), "candidates are prefixes");
        }
        assert!(Strategy::shrink(&"literal", &"literal".to_string()).is_empty());
    }

    #[test]
    fn tuple_shrink_walks_one_component_at_a_time() {
        let strat = (0u32..10, 0u64..10);
        let cands = strat.shrink(&(4, 6));
        assert!(!cands.is_empty());
        for (a, b) in cands {
            let a_shrunk = a < 4 && b == 6;
            let b_shrunk = b < 6 && a == 4;
            assert!(a_shrunk || b_shrunk, "({a},{b}) changed both components");
        }
        assert!(strat.shrink(&(0, 0)).is_empty());
    }

    #[test]
    fn boxed_and_union_preserve_shrinking() {
        let boxed = (1u8..100).boxed();
        assert_eq!(boxed.shrink(&50)[0], 1);
        let union = Union::new(vec![(1u8..100).boxed(), (10u8..100).boxed()]);
        let cands = union.shrink(&50);
        assert!(cands.contains(&1) && cands.contains(&10));
    }

    #[test]
    fn map_and_just_do_not_shrink() {
        assert!(Just(9u8).shrink(&9).is_empty());
        let mapped = (0u32..8).prop_map(|v| v * 2);
        assert!(mapped.shrink(&6).is_empty());
    }
}
