//! Shrinking primitives shared by every strategy (and by external
//! shrinkers such as the `scaddar-harness` history minimizer).
//!
//! The scheme is upstream proptest's in spirit: a failing value is
//! replaced by the first *simpler candidate* that still fails, repeated
//! to a fixpoint. Candidates are ordered most-aggressive first (the
//! lower bound itself, then binary-search midpoints, then `value - 1`),
//! so greedy adoption converges in O(log range) steps for integers.

/// Shrink candidates for an integer `value` toward the lower bound `lo`,
/// most aggressive first: `lo`, then midpoints of `(lo, value)` by
/// repeated halving, ending with `value - 1`. Empty when already minimal.
pub fn int_candidates(lo: i128, value: i128) -> Vec<i128> {
    if value <= lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mut delta = (value - lo) / 2;
    while delta > 0 {
        let cand = value - delta;
        if cand > lo && !out.contains(&cand) {
            out.push(cand);
        }
        delta /= 2;
    }
    out
}

/// [`int_candidates`] specialized to `u64` — the form external shrinkers
/// (e.g. the simulation harness's disk-delta minimizer) consume.
pub fn halvings(lo: u64, value: u64) -> Vec<u64> {
    int_candidates(lo as i128, value as i128)
        .into_iter()
        .map(|v| v as u64)
        .collect()
}

/// Index subsets to try when shrinking a sequence of `len` elements with
/// at least `min` elements: drop the first half, drop the second half,
/// then drop single elements (capped at `cap` positions, evenly spread).
/// Returned as the list of *retained index ranges to delete* `(start,
/// end)` half-open, most aggressive first.
pub fn removal_spans(len: usize, min: usize, cap: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if len <= min {
        return out;
    }
    let half = len / 2;
    if half > 0 && len - half >= min {
        out.push((0, half));
        out.push((half, len));
    }
    let stride = (len / cap.max(1)).max(1);
    let mut i = 0;
    while i < len {
        if len > min {
            out.push((i, i + 1));
        }
        i += stride;
    }
    out.retain(|&(s, e)| len - (e - s) >= min);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_candidates_order_and_bounds() {
        let c = int_candidates(0, 100);
        assert_eq!(c[0], 0, "lower bound first");
        assert_eq!(*c.last().unwrap(), 99, "value - 1 last");
        assert!(c.iter().all(|&v| (0..100).contains(&v)));
        assert!(int_candidates(5, 5).is_empty());
        assert!(int_candidates(5, 4).is_empty());
    }

    #[test]
    fn int_candidates_converge_logarithmically() {
        // Greedy adoption of the first still-failing candidate reaches
        // any target in O(log range) rounds; simulate failing iff >= 37.
        let mut value = 1_000_000i128;
        let mut rounds = 0;
        while let Some(next) = int_candidates(0, value).into_iter().find(|&c| c >= 37) {
            value = next;
            rounds += 1;
            assert!(rounds < 64, "no convergence");
        }
        assert_eq!(value, 37);
    }

    #[test]
    fn halvings_is_u64_projection() {
        assert_eq!(halvings(1, 8), vec![1, 5, 7]);
        assert!(halvings(3, 3).is_empty());
    }

    #[test]
    fn removal_spans_respect_min() {
        for (s, e) in removal_spans(10, 8, 16) {
            assert!(10 - (e - s) >= 8, "span ({s},{e}) drops below min");
        }
        assert!(removal_spans(3, 3, 16).is_empty());
        let spans = removal_spans(8, 0, 16);
        assert!(spans.contains(&(0, 4)) && spans.contains(&(4, 8)));
    }
}
