//! The case runner: deterministic RNG, config, shrinking, and
//! pass/reject/fail plumbing for the [`proptest!`](crate::proptest)
//! macro.

use crate::strategy::Strategy;

/// SplitMix64-based generator backing every strategy draw.
///
/// Deliberately independent of the workspace's own PRNG crates so the
/// test harness cannot be perturbed by the code under test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounding; the bias is far below what sampling
        // (no statistics) can observe, and it stays deterministic.
        let wide = u128::from(self.next_u64()) * u128::from(bound);
        (wide >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Outcome of one generated case: rejected by an assumption, or failed
/// an assertion.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` did not hold; the case is discarded, not failed.
    Reject(String),
    /// A `prop_assert*` failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// A failing outcome with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejected (discarded) outcome with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Per-case result type produced by the macro-generated closure.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Maximum rejected (assumed-away) cases before giving up.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config running exactly `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            max_global_rejects: cases.saturating_mul(16).max(256),
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self::with_cases(cases)
    }
}

/// Drives one property: draws cases, tracks rejects, panics on failure
/// with enough context to replay.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
    name: &'static str,
}

impl TestRunner {
    /// A runner for the named property under `config`.
    pub fn new(config: Config, name: &'static str) -> Self {
        Self { config, name }
    }

    fn base_seed(&self) -> u64 {
        if let Some(seed) = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            return seed;
        }
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in self.name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs the property to the configured number of accepted cases.
    ///
    /// Panics (failing the `#[test]`) on the first assertion failure or
    /// if rejections exhaust the budget before any case is accepted.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let base = self.base_seed();
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut case_index = 0u64;
        while accepted < self.config.cases {
            case_index += 1;
            let seed = base ^ case_index.wrapping_mul(0xA24B_AED4_963E_E407);
            let mut rng = TestRng::new(seed);
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        if accepted == 0 {
                            panic!(
                                "[{}] every generated case was rejected \
                                 (last assumption: {reason})",
                                self.name
                            );
                        }
                        // Enough signal; stop early rather than spin.
                        return;
                    }
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "[{}] property failed at case {case_index} \
                     (replay with PROPTEST_RNG_SEED={base}):\n{msg}",
                    self.name
                ),
            }
        }
    }

    /// Like [`run`](Self::run), but generation goes through `strategy`
    /// so a failing value can be *shrunk*: the runner greedily adopts
    /// the first simpler candidate that still fails, to a fixpoint (or
    /// a fixed candidate budget), and reports the minimal failing input.
    ///
    /// This is what the [`proptest!`](crate::proptest) macro calls; the
    /// per-test RNG stream is identical to [`run`](Self::run) drawing
    /// the same strategies in order, so existing replay seeds hold.
    pub fn run_shrink<S, F>(&mut self, strategy: &S, mut case: F)
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let base = self.base_seed();
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut case_index = 0u64;
        while accepted < self.config.cases {
            case_index += 1;
            let seed = base ^ case_index.wrapping_mul(0xA24B_AED4_963E_E407);
            let mut rng = TestRng::new(seed);
            let value = strategy.generate(&mut rng);
            match case(value.clone()) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        if accepted == 0 {
                            panic!(
                                "[{}] every generated case was rejected \
                                 (last assumption: {reason})",
                                self.name
                            );
                        }
                        return;
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    let (minimal, final_msg, steps) =
                        Self::shrink_failure(strategy, &mut case, value, msg);
                    panic!(
                        "[{}] property failed at case {case_index} \
                         (replay with PROPTEST_RNG_SEED={base}):\n{final_msg}\n\
                         minimal failing input ({steps} shrink steps): {minimal:?}",
                        self.name
                    );
                }
            }
        }
    }

    /// Greedy first-fit minimization: repeatedly replace the failing
    /// value with the first strategy-proposed candidate that still
    /// fails, until no candidate fails or the budget runs out. A
    /// candidate that passes or is rejected is simply not adopted.
    fn shrink_failure<S, F>(
        strategy: &S,
        case: &mut F,
        mut value: S::Value,
        mut msg: String,
    ) -> (S::Value, String, usize)
    where
        S: Strategy,
        S::Value: Clone,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let mut budget = 256usize;
        let mut steps = 0usize;
        'outer: while budget > 0 {
            for cand in strategy.shrink(&value) {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                if let Err(TestCaseError::Fail(m)) = case(cand.clone()) {
                    value = cand;
                    msg = m;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (value, msg, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_f64_is_half_open() {
        let mut rng = TestRng::new(9);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn runner_counts_accepted_cases() {
        let mut runner = TestRunner::new(Config::with_cases(10), "counter");
        let mut n = 0;
        runner.run(|_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn runner_panics_on_failure() {
        let mut runner = TestRunner::new(Config::with_cases(10), "failer");
        runner.run(|_| Err(TestCaseError::fail("boom")));
    }

    #[test]
    #[should_panic(expected = "every generated case was rejected")]
    fn runner_panics_when_all_rejected() {
        let mut runner = TestRunner::new(Config::with_cases(10), "rejecter");
        runner.run(|_| Err(TestCaseError::reject("never")));
    }

    #[test]
    fn shrink_failure_finds_boundary() {
        // Property "value < 37" fails for >= 37; the minimal failing
        // input is exactly 37, reachable by greedy bisection.
        let strategy = (0u64..1_000_000,);
        let mut case = |(v,): (u64,)| {
            if v < 37 {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("{v} too big")))
            }
        };
        let (minimal, msg, steps) =
            TestRunner::shrink_failure(&strategy, &mut case, (999_999,), "seed".into());
        assert_eq!(minimal, (37,));
        assert!(msg.contains("37"));
        assert!(steps > 0 && steps < 64);
    }

    #[test]
    #[should_panic(expected = "minimal failing input")]
    fn run_shrink_reports_minimal_input() {
        let mut runner = TestRunner::new(Config::with_cases(10), "shrinker");
        runner.run_shrink(&(0u64..1_000_000,), |(v,)| {
            if v < 5 {
                Ok(())
            } else {
                Err(TestCaseError::fail("big"))
            }
        });
    }

    #[test]
    fn run_shrink_passes_clean_properties() {
        let mut runner = TestRunner::new(Config::with_cases(10), "clean");
        let mut n = 0;
        runner.run_shrink(&(0u64..100,), |(v,)| {
            n += 1;
            assert!(v < 100);
            Ok(())
        });
        assert_eq!(n, 10);
    }
}
