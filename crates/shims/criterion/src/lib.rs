//! Offline stand-in for the [`criterion`] benchmark harness.
//!
//! Provides the subset of criterion's API this workspace's benches use
//! — groups, `bench_function`/`bench_with_input`, `iter`/`iter_batched`,
//! throughput annotation — with a simple wall-clock measurement loop,
//! and serializes every result as JSON under `target/criterion-json/`
//! (one file per bench executable) so tooling can post-process runs
//! without scraping stdout.
//!
//! Tuning knobs (environment variables):
//!
//! * `CRITERION_WARMUP_MS` — warm-up per benchmark (default 60 ms);
//! * `CRITERION_MEASURE_MS` — measurement per benchmark (default 300 ms);
//! * `CRITERION_JSON_DIR` — output directory for the JSON report
//!   (default `target/criterion-json`, resolved against the working
//!   directory `cargo bench` uses, i.e. the workspace root).
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Process-wide collected results, drained by [`finalize`].
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// One measured benchmark.
#[derive(Debug, Clone)]
struct BenchRecord {
    group: String,
    bench: String,
    ns_per_iter: f64,
    iterations: u64,
    throughput: Option<Throughput>,
}

/// Units of work per iteration, for derived rates in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Input-size hint for [`Bencher::iter_batched`]; measurement here is
/// per-invocation either way, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many batches fit in memory.
    SmallInput,
    /// Large inputs: few batches fit in memory.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

/// The harness entry point; [`criterion_group!`] passes one to each
/// registered bench function.
#[derive(Debug, Clone)]
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: env_ms("CRITERION_WARMUP_MS", 60),
            measure: env_ms("CRITERION_MEASURE_MS", 300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warmup: self.warmup,
            measure: self.measure,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    warmup: Duration,
    measure: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = d;
        self
    }

    /// Overrides the warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }

    /// Measures `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            sample: None,
        };
        f(&mut bencher);
        self.record(id, bencher);
        self
    }

    /// Measures `f` with a borrowed input under the given id.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            sample: None,
        };
        f(&mut bencher, input);
        self.record(id, bencher);
        self
    }

    fn record(&self, id: BenchmarkId, bencher: Bencher) {
        let Some((total, iters)) = bencher.sample else {
            return; // The closure never called iter(); nothing to report.
        };
        let ns_per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
        let record = BenchRecord {
            group: self.name.clone(),
            bench: id.id,
            ns_per_iter,
            iterations: iters,
            throughput: self.throughput,
        };
        eprintln!(
            "bench {}/{}: {} ({} iters)",
            record.group,
            record.bench,
            human_time(ns_per_iter),
            iters
        );
        RESULTS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);
    }

    /// Ends the group (results are recorded eagerly; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// Runs and times one benchmark's iterations.
#[derive(Debug)]
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    sample: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times repeated calls of `f` after a warm-up period.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the per-call cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        let est = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);
        // Batch calls so each timed slice is ≳200µs, amortizing the
        // clock reads for nanosecond-scale routines.
        let batch = (200_000 / est.max(1)).clamp(1, 1 << 20);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.measure {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.sample = Some((total, iters));
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up invocation primes caches and the allocator.
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.measure {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.sample = Some((total, iters));
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The bench executable's base name, with cargo's `-<hash>` suffix
/// stripped, used as the JSON report's file stem.
fn exe_stem() -> String {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// Writes all collected results as JSON and prints a closing summary.
/// Called automatically by [`criterion_main!`].
pub fn finalize() {
    let records = std::mem::take(&mut *RESULTS.lock().unwrap_or_else(|e| e.into_inner()));
    if records.is_empty() {
        return;
    }
    let stem = exe_stem();
    let mut json = String::new();
    let _ = writeln!(
        json,
        "{{\n  \"bench\": \"{}\",\n  \"results\": [",
        json_escape(&stem)
    );
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        let throughput = match r.throughput {
            Some(Throughput::Elements(n)) => format!(
                ", \"elements\": {n}, \"elements_per_sec\": {:.1}",
                n as f64 / (r.ns_per_iter / 1e9)
            ),
            Some(Throughput::Bytes(n)) => format!(
                ", \"bytes\": {n}, \"bytes_per_sec\": {:.1}",
                n as f64 / (r.ns_per_iter / 1e9)
            ),
            None => String::new(),
        };
        let _ = writeln!(
            json,
            "    {{\"group\": \"{}\", \"bench\": \"{}\", \"ns_per_iter\": {:.2}, \
             \"iterations\": {}{}}}{}",
            json_escape(&r.group),
            json_escape(&r.bench),
            r.ns_per_iter,
            r.iterations,
            throughput,
            sep
        );
    }
    let _ = writeln!(json, "  ]\n}}");
    let dir =
        std::env::var("CRITERION_JSON_DIR").unwrap_or_else(|_| "target/criterion-json".to_string());
    let path = std::path::Path::new(&dir).join(format!("{stem}.json"));
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        Ok(()) => eprintln!(
            "criterion-shim: wrote {} results to {}",
            records.len(),
            path.display()
        ),
        Err(e) => eprintln!("criterion-shim: could not write {}: {e}", path.display()),
    }
}

/// Registers bench functions under a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, running every group then writing the JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        }
    }

    #[test]
    fn iter_records_a_sample() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("shim_self_test");
        group.throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| b.iter(|| black_box(2u64 + 2)));
        group.finish();
        let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
        let r = results
            .iter()
            .find(|r| r.group == "shim_self_test" && r.bench == "noop")
            .expect("recorded");
        assert!(r.iterations > 0);
        assert!(r.ns_per_iter >= 0.0);
    }

    #[test]
    fn iter_batched_keeps_setup_off_the_clock() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("shim_self_test_batched");
        group.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
        assert!(results.iter().any(|r| r.group == "shim_self_test_batched"));
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("fold", 8).id, "fold/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn exe_stem_strips_cargo_hash() {
        // Indirect check through the helper's suffix rule.
        assert_eq!(
            match "remap-0123456789abcdef".rsplit_once('-') {
                Some((base, h)) if h.len() == 16 && h.bytes().all(|b| b.is_ascii_hexdigit()) =>
                    base.to_string(),
                _ => "remap-0123456789abcdef".to_string(),
            },
            "remap"
        );
    }
}
