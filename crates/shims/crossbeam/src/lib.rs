//! Offline stand-in for the [`crossbeam`] crate.
//!
//! The build environment has no registry access, so this shim provides
//! the one crossbeam facility the workspace uses — scoped threads — as a
//! thin wrapper over [`std::thread::scope`] (stable since 1.63), keeping
//! crossbeam's call shape: the closure passed to [`scope`] and to
//! [`thread::Scope::spawn`] receives a scope handle, and `scope` returns
//! a `Result` (always `Ok` here; panics propagate as panics, as they do
//! with std scoped threads).
//!
//! [`crossbeam`]: https://docs.rs/crossbeam

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use thread::scope;

pub mod thread {
    //! Scoped thread spawning (`crossbeam::thread`).

    use std::any::Any;
    use std::thread::ScopedJoinHandle;

    /// Result type of [`scope`], matching `crossbeam::thread::Result`.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle for spawning threads tied to the enclosing [`scope`]
    /// call; all spawned threads are joined before `scope` returns.
    #[derive(Clone, Copy, Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// a scope handle so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Creates a scope in which threads borrowing from the environment
    /// can be spawned; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_and_returns_ok() {
        let counter = AtomicU64::new(0);
        let out = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7u32
        })
        .expect("no panics");
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_via_handle() {
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn threads_can_borrow_environment() {
        let data = [1u64, 2, 3, 4];
        let sum = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .expect("no panics");
        assert_eq!(sum, 10);
    }
}
