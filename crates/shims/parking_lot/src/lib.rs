//! Offline stand-in for the [`parking_lot`] crate.
//!
//! Wraps [`std::sync`] locks with parking_lot's non-poisoning API: a
//! panic while a guard is held does not make the lock unusable, so
//! `read()`/`write()`/`lock()` return guards directly rather than
//! `Result`s. (Fairness and footprint characteristics of the real
//! parking_lot are out of scope for an offline shim.)
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// Read-lock guard; derefs to the protected value.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write-lock guard; derefs mutably to the protected value.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Mutex guard; derefs mutably to the protected value.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new unlocked lock.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire the write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_round_trip() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() = 2;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn rwlock_survives_panicking_writer() {
        let lock = std::sync::Arc::new(RwLock::new(5u32));
        let inner = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = inner.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the value stays readable.
        assert_eq!(*lock.read(), 5);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_variants_report_contention() {
        let lock = RwLock::new(0u8);
        let write = lock.write();
        assert!(lock.try_read().is_none());
        drop(write);
        assert!(lock.try_read().is_some());
    }
}
