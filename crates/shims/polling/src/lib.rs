//! Offline stand-in for the [`polling`] crate: a level-triggered
//! readiness poller over raw file descriptors.
//!
//! Two backends, both reached through hand-rolled `extern "C"`
//! declarations against the libc that std already links (no new
//! dependencies):
//!
//! * **epoll** (Linux): one `epoll_create1` instance per [`Poller`];
//!   `add`/`modify`/`delete` map onto `epoll_ctl`, `wait` onto
//!   `epoll_wait`. O(ready) wakeups.
//! * **poll(2)** (portable fallback, any unix): the interest set lives
//!   in a mutex-guarded table and `wait` rebuilds a `pollfd` array per
//!   call. O(registered) wakeups, but correct everywhere poll exists.
//!
//! Both backends are **level-triggered**: an fd that stays readable
//! keeps reporting readable on every `wait`. Callers drain to
//! `WouldBlock` or deregister.
//!
//! Cross-thread wakeup (`notify`) uses a self-connected nonblocking
//! [`UdpSocket`] registered inside the poller — a std-only "self-pipe"
//! that avoids `eventfd` FFI and works identically on both backends.
//! A pending notification is drained by the next `wait` and never
//! surfaces as a caller-visible event; `wait` may therefore return
//! zero events spuriously.
//!
//! Concurrency contract: `add`/`modify`/`delete`/`notify` may be called
//! from any thread; `wait` is intended for the single owning thread.
//! On the poll(2) backend an interest change made while another thread
//! is blocked in `wait` takes effect at the *next* `wait` call — pair
//! interest changes with `notify`, as the real crate's callers do.
//!
//! [`polling`]: https://docs.rs/polling

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::net::UdpSocket;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

/// Readiness interest and/or readiness state for one registered fd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier reported back by [`Poller::wait`].
    pub key: usize,
    /// Interested in / ready for reading.
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Read-only interest.
    pub fn readable(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Write-only interest.
    pub fn writable(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Read + write interest.
    pub fn all(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (keeps the fd registered but silent).
    pub fn none(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Which OS facility a [`Poller`] drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` — O(ready) wakeups.
    Epoll,
    /// Portable `poll(2)` — O(registered) wakeups.
    Poll,
}

/// Key reserved for the internal waker; never reported to callers.
const WAKER_KEY: usize = usize::MAX;

mod sys {
    //! Hand-rolled libc declarations. std already links libc, so these
    //! resolve without any new dependency.
    use std::os::raw::{c_int, c_ulong};

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    pub use linux::*;

    #[cfg(target_os = "linux")]
    mod linux {
        use std::os::raw::c_int;

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;

        // The kernel packs epoll_event on x86-64 only (see
        // uapi/linux/eventpoll.h: EPOLL_PACKED).
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut epoll_event,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn sched_setaffinity(pid: c_int, cpusetsize: usize, mask: *const u64) -> c_int;
        }
    }
}

/// Pins the calling thread to one CPU (Linux; a no-op `Ok` elsewhere).
/// Best-effort affinity for reactor-style workers that want their
/// per-connection state to stay cache-local; `cpu` is taken modulo the
/// mask width libc accepts here (1024 CPUs).
pub fn pin_current_thread_to_cpu(cpu: usize) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        let cpu = cpu % 1024;
        let mut mask = [0u64; 16]; // 1024-bit cpu_set_t
        mask[cpu / 64] = 1 << (cpu % 64);
        // SAFETY: pid 0 = calling thread; the mask buffer outlives the
        // call and its length is passed alongside.
        let ret = unsafe { sys::sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
        cvt(ret).map(|_| ())
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = cpu;
        Ok(())
    }
}

/// Converts a `-1` libc return into the thread's errno as an
/// [`io::Error`]; passes other returns through.
fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Millisecond timeout for epoll_wait/poll: `None` blocks forever;
/// sub-millisecond remainders round *up* so a short deadline cannot
/// degenerate into a zero-timeout busy loop.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let mut ms = d.as_millis();
            if d.subsec_nanos() % 1_000_000 != 0 {
                ms += 1;
            }
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll_backend {
    use super::*;
    use std::os::fd::{FromRawFd, OwnedFd};

    /// Thin owner of an epoll instance.
    pub struct Epoll {
        epfd: OwnedFd,
    }

    fn interest_mask(ev: Event) -> u32 {
        let mut mask = 0;
        if ev.readable {
            mask |= sys::EPOLLIN;
        }
        if ev.writable {
            mask |= sys::EPOLLOUT;
        }
        mask
    }

    impl Epoll {
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 has no pointer arguments; on
            // success the returned fd is freshly ours to own.
            let raw = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
            // SAFETY: `raw` is a valid fd we exclusively own.
            let epfd = unsafe { OwnedFd::from_raw_fd(raw) };
            Ok(Epoll { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, ev: Option<Event>) -> io::Result<()> {
            let mut event = sys::epoll_event {
                events: ev.map(interest_mask).unwrap_or(0),
                data: ev.map(|e| e.key as u64).unwrap_or(0),
            };
            // SAFETY: `event` outlives the call; the kernel copies it.
            cvt(unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut event) })?;
            Ok(())
        }

        pub fn add(&self, fd: RawFd, ev: Event) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, Some(ev))
        }

        pub fn modify(&self, fd: RawFd, ev: Event) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, Some(ev))
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
            const CAP: usize = 256;
            let mut buf = [sys::epoll_event { events: 0, data: 0 }; CAP];
            let n = loop {
                // SAFETY: `buf` is a writable array of CAP epoll_events.
                let ret = unsafe {
                    sys::epoll_wait(
                        self.epfd.as_raw_fd(),
                        buf.as_mut_ptr(),
                        CAP as i32,
                        timeout_ms(timeout),
                    )
                };
                match cvt(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            let mut woke = false;
            for raw in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let mask = raw.events;
                let key = raw.data as usize;
                if key == WAKER_KEY {
                    woke = true;
                    continue;
                }
                // Error/hangup surface as read+write readiness so the
                // caller's next I/O attempt observes the real error.
                let err = mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
                events.push(Event {
                    key,
                    readable: mask & sys::EPOLLIN != 0 || err,
                    writable: mask & sys::EPOLLOUT != 0 || err,
                });
            }
            Ok(woke)
        }
    }
}

mod poll_backend {
    use super::*;

    /// One registered fd in the portable backend's interest table.
    #[derive(Clone, Copy)]
    struct Slot {
        fd: RawFd,
        key: usize,
        mask: i16,
    }

    /// Portable poll(2) backend: interest table + per-wait pollfd array.
    pub struct PollTable {
        slots: Mutex<Vec<Slot>>,
    }

    fn interest_mask(ev: Event) -> i16 {
        let mut mask = 0;
        if ev.readable {
            mask |= sys::POLLIN;
        }
        if ev.writable {
            mask |= sys::POLLOUT;
        }
        mask
    }

    impl PollTable {
        pub fn new() -> Self {
            PollTable {
                slots: Mutex::new(Vec::new()),
            }
        }

        pub fn add(&self, fd: RawFd, ev: Event) -> io::Result<()> {
            let mut slots = self.slots.lock().unwrap();
            if slots.iter().any(|s| s.fd == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            slots.push(Slot {
                fd,
                key: ev.key,
                mask: interest_mask(ev),
            });
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, ev: Event) -> io::Result<()> {
            let mut slots = self.slots.lock().unwrap();
            let slot = slots
                .iter_mut()
                .find(|s| s.fd == fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            slot.key = ev.key;
            slot.mask = interest_mask(ev);
            Ok(())
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut slots = self.slots.lock().unwrap();
            let before = slots.len();
            slots.retain(|s| s.fd != fd);
            if slots.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
            // Snapshot under the lock, block outside it: a concurrent
            // interest change lands at the next wait (callers notify).
            let snapshot: Vec<Slot> = self.slots.lock().unwrap().clone();
            let mut fds: Vec<sys::pollfd> = snapshot
                .iter()
                .map(|s| sys::pollfd {
                    fd: s.fd,
                    events: s.mask,
                    revents: 0,
                })
                .collect();
            loop {
                // SAFETY: `fds` is a writable array of fds.len() pollfds.
                let ret = unsafe {
                    sys::poll(
                        fds.as_mut_ptr(),
                        fds.len() as std::os::raw::c_ulong,
                        timeout_ms(timeout),
                    )
                };
                match cvt(ret) {
                    Ok(_) => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            let mut woke = false;
            for (slot, pfd) in snapshot.iter().zip(&fds) {
                let re = pfd.revents;
                if re == 0 {
                    continue;
                }
                if slot.key == WAKER_KEY {
                    woke = true;
                    continue;
                }
                let err = re & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
                events.push(Event {
                    key: slot.key,
                    readable: re & sys::POLLIN != 0 || err,
                    writable: re & sys::POLLOUT != 0 || err,
                });
            }
            Ok(woke)
        }
    }
}

enum BackendImpl {
    #[cfg(target_os = "linux")]
    Epoll(epoll_backend::Epoll),
    Poll(poll_backend::PollTable),
}

/// A level-triggered readiness poller with a cross-thread waker.
pub struct Poller {
    backend: BackendImpl,
    waker: UdpSocket,
}

impl Poller {
    /// Opens a poller on the platform's best backend: epoll on Linux,
    /// poll(2) elsewhere.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            Self::with_backend(Backend::Epoll)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Self::with_backend(Backend::Poll)
        }
    }

    /// Opens a poller on an explicit backend. `Backend::Epoll` fails
    /// with `Unsupported` off Linux.
    pub fn with_backend(backend: Backend) -> io::Result<Self> {
        let backend = match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => BackendImpl::Epoll(epoll_backend::Epoll::new()?),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "epoll backend requires Linux",
                ))
            }
            Backend::Poll => BackendImpl::Poll(poll_backend::PollTable::new()),
        };
        // Self-connected datagram socket: a 1-byte send from any thread
        // makes the fd readable and wakes a blocked `wait`.
        let waker = UdpSocket::bind("127.0.0.1:0")?;
        waker.connect(waker.local_addr()?)?;
        waker.set_nonblocking(true)?;
        let poller = Poller { backend, waker };
        poller.add(poller.waker.as_raw_fd(), Event::readable(WAKER_KEY))?;
        Ok(poller)
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(_) => Backend::Epoll,
            BackendImpl::Poll(_) => Backend::Poll,
        }
    }

    /// Registers `fd` with the given interest. The caller keeps
    /// ownership of the fd and must `delete` it before closing it
    /// (closing first is tolerated by epoll but an error on poll(2)).
    pub fn add(&self, fd: RawFd, ev: Event) -> io::Result<()> {
        if ev.key == WAKER_KEY && fd != self.waker.as_raw_fd() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "event key usize::MAX is reserved",
            ));
        }
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(e) => e.add(fd, ev),
            BackendImpl::Poll(p) => p.add(fd, ev),
        }
    }

    /// Replaces the interest set (and key) for a registered `fd`.
    pub fn modify(&self, fd: RawFd, ev: Event) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(e) => e.modify(fd, ev),
            BackendImpl::Poll(p) => p.modify(fd, ev),
        }
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(e) => e.delete(fd),
            BackendImpl::Poll(p) => p.delete(fd),
        }
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// lapses, or another thread calls [`notify`](Self::notify).
    /// Ready events are appended to `events` (not cleared first);
    /// returns how many were appended. Zero with an elapsed timeout or
    /// after a notification is not an error.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let before = events.len();
        let woke = match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(e) => e.wait(events, timeout)?,
            BackendImpl::Poll(p) => p.wait(events, timeout)?,
        };
        if woke {
            // Drain every pending notification so the level-triggered
            // waker fd goes quiet until the next notify.
            let mut sink = [0u8; 16];
            while self.waker.recv(&mut sink).is_ok() {}
        }
        Ok(events.len() - before)
    }

    /// Wakes a thread blocked in [`wait`](Self::wait). Safe from any
    /// thread; coalesces (many notifies, one wakeup).
    pub fn notify(&self) -> io::Result<()> {
        match self.waker.send(&[1]) {
            Ok(_) => Ok(()),
            // A full socket buffer means a wakeup is already pending.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        for backend in backends() {
            let poller = std::sync::Arc::new(Poller::with_backend(backend).unwrap());
            let waiter = {
                let poller = poller.clone();
                std::thread::spawn(move || {
                    let mut events = Vec::new();
                    let start = Instant::now();
                    poller
                        .wait(&mut events, Some(Duration::from_secs(10)))
                        .unwrap();
                    (events.len(), start.elapsed())
                })
            };
            std::thread::sleep(Duration::from_millis(50));
            poller.notify().unwrap();
            let (n, elapsed) = waiter.join().unwrap();
            assert_eq!(n, 0, "waker must not surface as a caller event");
            assert!(
                elapsed < Duration::from_secs(5),
                "{backend:?}: wait did not wake on notify ({elapsed:?})"
            );
        }
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            poller
                .add(listener.as_raw_fd(), Event::readable(7))
                .unwrap();
            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{backend:?}");
            assert_eq!(events[0].key, 7);
            assert!(events[0].readable);
        }
    }

    #[test]
    fn connected_stream_reports_writable_then_readable_after_peer_write() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (mut peer, _) = listener.accept().unwrap();
            client.set_nonblocking(true).unwrap();
            poller.add(client.as_raw_fd(), Event::all(3)).unwrap();

            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 3 && e.writable),
                "{backend:?}: fresh stream should be writable"
            );

            peer.write_all(b"ping").unwrap();
            // Level-triggered: keeps firing until drained.
            for _ in 0..2 {
                events.clear();
                poller
                    .wait(&mut events, Some(Duration::from_secs(5)))
                    .unwrap();
                assert!(
                    events.iter().any(|e| e.key == 3 && e.readable),
                    "{backend:?}: undrained readable fd must re-fire"
                );
            }
            let mut buf = [0u8; 8];
            let mut stream = &client;
            assert_eq!(stream.read(&mut buf).unwrap(), 4);
        }
    }

    #[test]
    fn modify_and_delete_change_reported_interest() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (_peer, _) = listener.accept().unwrap();
            client.set_nonblocking(true).unwrap();
            poller.add(client.as_raw_fd(), Event::all(1)).unwrap();

            // Writable interest masked off: nothing should fire.
            poller.modify(client.as_raw_fd(), Event::none(1)).unwrap();
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}: masked fd fired {events:?}");

            // Back on, fires again; then delete silences it for good.
            poller
                .modify(client.as_raw_fd(), Event::writable(1))
                .unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{backend:?}");
            poller.delete(client.as_raw_fd()).unwrap();
            events.clear();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}: deleted fd fired {events:?}");
        }
    }

    #[test]
    fn reserved_key_is_rejected() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = poller
            .add(listener.as_raw_fd(), Event::readable(WAKER_KEY))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn sub_millisecond_timeouts_round_up() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(5))), 5);
        assert_eq!(timeout_ms(Some(Duration::from_micros(1))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_micros(1500))), 2);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
    }
}
