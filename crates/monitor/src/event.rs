//! Typed health events: what a probe found, how bad, and when.

use scaddar_obs::EventLog;

/// Alert severity, ordered (`Ok < Warn < Crit`) so "worst of" is `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Within thresholds.
    Ok,
    /// Above the warning threshold.
    Warn,
    /// Above the critical threshold.
    Crit,
}

impl Severity {
    /// Lower-case label used in event logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Ok => "ok",
            Severity::Warn => "warn",
            Severity::Crit => "crit",
        }
    }

    /// Is this an alert (anything above [`Severity::Ok`])?
    pub fn is_alert(&self) -> bool {
        *self > Severity::Ok
    }

    /// The worst severity in `verdicts` (`Ok` when empty) — how a
    /// cluster rolls N per-shard health verdicts into one.
    pub fn worst(verdicts: impl IntoIterator<Item = Severity>) -> Severity {
        verdicts.into_iter().max().unwrap_or(Severity::Ok)
    }
}

/// One emitted health event. An *alert* is an event with severity
/// `Warn` or `Crit`; `Ok` events mark recoveries (a probe dropping back
/// below its thresholds).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// Clock timestamp at emit time (virtual in harness runs).
    pub ts_ns: u64,
    /// Probe that raised the event (`ro1`, `ro2`, `budget`).
    pub probe: &'static str,
    /// Signal kind, e.g. `ro1-deviation`, `ro2-chi-square`,
    /// `rehash-advised`.
    pub kind: &'static str,
    /// Severity after this evaluation.
    pub severity: Severity,
    /// The measured signal value the rule judged.
    pub value: f64,
    /// The threshold the value was judged against (the warn threshold
    /// for `Warn`/`Ok`, the crit threshold for `Crit`).
    pub threshold: f64,
    /// Human-readable context.
    pub detail: String,
}

impl HealthEvent {
    /// Mirrors the event into a structured [`EventLog`] (which stamps
    /// `ts_ns` itself from its clock; the monitor emits synchronously,
    /// so the stamps agree).
    pub fn emit_into(&self, log: &EventLog) {
        log.emit(
            self.kind,
            [
                ("probe", self.probe.to_string()),
                ("severity", self.severity.label().to_string()),
                ("value", format!("{:.6}", self.value)),
                ("threshold", format!("{:.6}", self.threshold)),
                ("detail", self.detail.clone()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_ok_below_warn_below_crit() {
        assert!(Severity::Ok < Severity::Warn);
        assert!(Severity::Warn < Severity::Crit);
        assert_eq!(Severity::Ok.max(Severity::Crit), Severity::Crit);
        assert!(!Severity::Ok.is_alert());
        assert!(Severity::Warn.is_alert());
        assert!(Severity::Crit.is_alert());
    }

    #[test]
    fn emit_into_renders_all_fields() {
        use scaddar_obs::VirtualClock;
        use std::sync::Arc;
        let log = EventLog::new(Arc::new(VirtualClock::new()));
        HealthEvent {
            ts_ns: 0,
            probe: "ro1",
            kind: "ro1-deviation",
            severity: Severity::Warn,
            value: 0.0125,
            threshold: 0.005,
            detail: "op 3".to_string(),
        }
        .emit_into(&log);
        let line = log.render_jsonl();
        assert!(line.contains("\"kind\": \"ro1-deviation\""));
        assert!(line.contains("\"probe\": \"ro1\""));
        assert!(line.contains("\"severity\": \"warn\""));
        assert!(line.contains("\"value\": \"0.012500\""));
        assert!(line.contains("\"detail\": \"op 3\""));
    }
}
