//! One-shot health reports: the current state of every probe, rendered
//! for an operator.

use crate::event::Severity;

/// The current state of one monitored signal.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeStatus {
    /// Probe family (`ro1`, `ro2`, `budget`).
    pub probe: &'static str,
    /// Signal kind (matches the event kind it would emit).
    pub kind: &'static str,
    /// Current severity under the hysteresis state machine.
    pub severity: Severity,
    /// Most recent signal value (`None` before the first observation).
    pub value: Option<f64>,
    /// Human-readable context from the last evaluation.
    pub detail: String,
}

/// A point-in-time health report across every probe.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Per-signal statuses, in a fixed display order.
    pub statuses: Vec<ProbeStatus>,
    /// Alert events emitted so far (severity `Warn`/`Crit`).
    pub alerts_emitted: usize,
}

impl HealthReport {
    /// The overall verdict: the worst current severity.
    pub fn verdict(&self) -> Severity {
        self.statuses
            .iter()
            .map(|s| s.severity)
            .max()
            .unwrap_or(Severity::Ok)
    }

    /// Renders the operator-facing report:
    ///
    /// ```text
    /// health: OK (0 alerts emitted)
    ///   [ok]   ro1/ro1-deviation      excess 0.000000 — op 3: moved 333/1000 (optimal 0.333)
    ///   ...
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!(
            "health: {} ({} alert{} emitted)\n",
            self.verdict().label().to_uppercase(),
            self.alerts_emitted,
            if self.alerts_emitted == 1 { "" } else { "s" },
        );
        for s in &self.statuses {
            let value = s
                .value
                .map_or("never evaluated".to_string(), |v| format!("{v:.6}"));
            let detail = if s.detail.is_empty() {
                String::new()
            } else {
                format!(" — {}", s.detail)
            };
            out.push_str(&format!(
                "  [{:<4}] {:<24} {}{}\n",
                s.severity.label(),
                format!("{}/{}", s.probe, s.kind),
                value,
                detail,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_is_the_worst_severity() {
        let report = HealthReport {
            statuses: vec![
                ProbeStatus {
                    probe: "ro1",
                    kind: "ro1-deviation",
                    severity: Severity::Ok,
                    value: Some(0.0),
                    detail: String::new(),
                },
                ProbeStatus {
                    probe: "budget",
                    kind: "rehash-advised",
                    severity: Severity::Warn,
                    value: Some(1.0),
                    detail: "2 ops remaining".to_string(),
                },
            ],
            alerts_emitted: 1,
        };
        assert_eq!(report.verdict(), Severity::Warn);
        let text = report.render();
        assert!(text.starts_with("health: WARN (1 alert emitted)"));
        assert!(text.contains("[ok  ] ro1/ro1-deviation"));
        assert!(text.contains("[warn] budget/rehash-advised"));
        assert!(text.contains("— 2 ops remaining"));
    }

    #[test]
    fn empty_report_is_ok() {
        let report = HealthReport {
            statuses: Vec::new(),
            alerts_emitted: 0,
        };
        assert_eq!(report.verdict(), Severity::Ok);
        assert!(report.render().starts_with("health: OK (0 alerts emitted)"));
    }
}
