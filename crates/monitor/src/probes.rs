//! The probe computations: turning raw observations into the scalar
//! signals the rule engine judges.
//!
//! Each function here is pure (state, observation) → signal; the
//! [`HealthMonitor`](crate::HealthMonitor) owns the rule states and
//! event emission.

use scaddar_core::{FairnessTracker, OpMovement};

/// RO1 conformance signal for one applied scaling operation: the
/// *excess* deviation of the measured moved fraction from the optimal
/// `z_j` (Def. 3.4), after subtracting the binomial sampling slack.
///
/// Block moves are ~independent Bernoulli(`z_j`) trials, so the moved
/// fraction has standard deviation `sqrt(z(1−z)/B)`; a healthy engine
/// sits within a few σ of optimal. The signal subtracts a 6σ allowance
/// (the same slack the harness `ro1-fraction` invariant grants) and
/// reports only what remains — `0.0` for any conforming operation, a
/// raw excess fraction for a buggy remap. Degenerate operations
/// (`total == 0`) report `0.0`.
pub fn ro1_excess_deviation(movement: &OpMovement) -> f64 {
    if movement.total == 0 {
        return 0.0;
    }
    let z = movement.optimal_fraction;
    let sigma = (z * (1.0 - z) / movement.total as f64).sqrt();
    let deviation = (movement.moved_fraction() - z).abs();
    (deviation - 6.0 * sigma).max(0.0)
}

/// RO2 conformance: exact placement check. Compares the census the
/// engine *derives* (where every block should be) against the census
/// the store *reports* (where every block is) and returns the total
/// block-count discrepancy. Zero for a conforming server; any silent
/// misplacement (`cmsim`'s `inject_misplacement`, bit rot, a buggy
/// move executor) shows up deterministically — unlike the statistical
/// probes, which cannot see a single misplaced block.
///
/// Censuses must be in the same (logical) disk order. A length
/// mismatch counts every block of the unmatched tail as discrepant.
pub fn census_discrepancy(expected: &[u64], actual: &[u64]) -> u64 {
    let common = expected.len().min(actual.len());
    let mut diff: u64 = expected[..common]
        .iter()
        .zip(&actual[..common])
        .map(|(&e, &a)| e.abs_diff(a))
        .sum();
    diff += expected[common..].iter().sum::<u64>();
    diff += actual[common..].iter().sum::<u64>();
    diff
}

/// How many more scaling operations (ending at `disks` disks each) the
/// §4.3 budget admits before [`FairnessTracker::next_op_is_safe`]
/// fails for `eps`, capped at `cap`. `0` means the *next* operation is
/// already unsafe — the paper's cue for a full redistribution.
///
/// Holding the disk count fixed is the conservative steady-state
/// question an operator asks ("how much longer can I keep scaling like
/// this?"); removals at smaller `N` consume budget slower, additions at
/// larger `N` faster, so the true remaining count varies with the
/// actual op mix.
pub fn remaining_safe_ops(tracker: &FairnessTracker, disks: u32, eps: f64, cap: u32) -> u32 {
    let mut probe = tracker.clone();
    let mut n = 0;
    while n < cap && probe.next_op_is_safe(disks, eps) {
        probe.record_op(disks);
        n += 1;
    }
    n
}

/// Maps the remaining-ops count onto the rule engine's upward scale:
/// `2.0` (crit) when the next op is unsafe, `1.0` (warn) when at most
/// `warn_remaining` ops remain, else `0.0`.
pub fn budget_pressure(remaining: u32, warn_remaining: u32) -> f64 {
    if remaining == 0 {
        2.0
    } else if remaining <= warn_remaining {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaddar_prng::Bits;

    fn movement(moved: u64, total: u64, optimal: f64) -> OpMovement {
        OpMovement {
            epoch: 1,
            disks_before: 4,
            disks_after: 5,
            moved,
            total,
            optimal_fraction: optimal,
        }
    }

    #[test]
    fn conforming_moves_report_zero_excess() {
        // 1/5 of 10_000 blocks, measured within 1σ of optimal.
        let m = movement(2_010, 10_000, 0.2);
        assert_eq!(ro1_excess_deviation(&m), 0.0);
        // Exactly optimal.
        assert_eq!(ro1_excess_deviation(&movement(2_000, 10_000, 0.2)), 0.0);
        // Degenerate op.
        assert_eq!(ro1_excess_deviation(&movement(0, 0, 0.2)), 0.0);
    }

    #[test]
    fn excess_movement_reports_the_overshoot() {
        // Moving 2× optimal: deviation 0.2, slack 6σ=0.024: excess > 0.15.
        let m = movement(4_000, 10_000, 0.2);
        let excess = ro1_excess_deviation(&m);
        assert!(excess > 0.15, "excess={excess}");
    }

    #[test]
    fn census_discrepancy_counts_misplaced_blocks() {
        assert_eq!(census_discrepancy(&[10, 10, 10], &[10, 10, 10]), 0);
        // One block resident on disk 2 instead of disk 0.
        assert_eq!(census_discrepancy(&[10, 10, 10], &[9, 10, 11]), 2);
        // Length mismatch: the tail counts in full.
        assert_eq!(census_discrepancy(&[10, 10], &[10, 10, 5]), 5);
        assert_eq!(census_discrepancy(&[10, 10, 5], &[10, 10]), 5);
    }

    #[test]
    fn remaining_ops_match_direct_simulation() {
        let bits = Bits::new(32).unwrap();
        let tracker = FairnessTracker::new(bits, 8);
        let remaining = remaining_safe_ops(&tracker, 8, 0.05, 64);
        // b=32, N=8, eps=0.05: sigma limit ≈ 2^32·0.0476 ≈ 2.04e8;
        // sigma after k ops is 8^k (sigma_0=8): 8^9≈1.3e8 safe,
        // 8^10≈1.1e9 unsafe → 8 further ops beyond the implicit first.
        assert!((7..=10).contains(&remaining), "remaining={remaining}");
        // Consuming one op decrements the answer by one.
        let mut t2 = tracker.clone();
        t2.record_op(8);
        assert_eq!(remaining_safe_ops(&t2, 8, 0.05, 64), remaining - 1);
        // An exhausted history reports zero.
        let mut burnt = tracker;
        for _ in 0..remaining + 1 {
            burnt.record_op(8);
        }
        assert_eq!(remaining_safe_ops(&burnt, 8, 0.05, 64), 0);
    }

    #[test]
    fn budget_pressure_scale() {
        assert_eq!(budget_pressure(0, 2), 2.0);
        assert_eq!(budget_pressure(1, 2), 1.0);
        assert_eq!(budget_pressure(2, 2), 1.0);
        assert_eq!(budget_pressure(3, 2), 0.0);
    }
}
