//! # scaddar-monitor — the semantic health layer
//!
//! The `obs` crate records *generic* telemetry (counters, histograms,
//! spans); this crate watches the signals the SCADDAR paper actually
//! promises and turns them into typed, alertable health events:
//!
//! * **RO1 conformance** — every applied scaling operation's measured
//!   moved-block fraction is compared against the optimal `z_j`
//!   (Def. 3.4), with a binomial 6σ allowance; excess movement alerts.
//! * **RO2 conformance** — sliding-window per-disk load checks
//!   ([`CensusWindow`]: incremental chi-square + CoV over recent
//!   censuses, fed from the `cmsim_disk_load_blocks` gauges), plus an
//!   *exact* expected-vs-actual census comparison that catches a single
//!   silently misplaced block the statistics never could.
//! * **§4.3 unfairness budget** — a [`FairnessTracker`] replay exposing
//!   the remaining safe operations as a gauge and firing
//!   `rehash-advised` when `next_op_is_safe` would fail for the
//!   configured `eps`.
//!
//! Signals run through a small rule engine (threshold + hysteresis +
//! cooldown, see [`rules`]) and emit [`HealthEvent`]s into a
//! structured JSONL [`EventLog`] stamped by the injected
//! [`Clock`] — under a `VirtualClock`, harness runs produce
//! byte-identical event streams per seed.
//!
//! ```
//! use scaddar_core::{Scaddar, ScaddarConfig, ScalingOp};
//! use scaddar_monitor::{HealthMonitor, MonitorConfig, Severity};
//! use scaddar_obs::VirtualClock;
//! use std::sync::Arc;
//!
//! let mut engine = Scaddar::new(ScaddarConfig::new(4)).unwrap();
//! engine.add_object(10_000);
//! let clock = Arc::new(VirtualClock::new());
//! let mut monitor = HealthMonitor::for_engine(MonitorConfig::default(), clock, &engine);
//!
//! engine.scale(ScalingOp::Add { count: 1 }).unwrap();
//! monitor.observe_engine(&engine);
//! monitor.observe_census(&engine.load_distribution());
//!
//! assert_eq!(monitor.report().verdict(), Severity::Ok);
//! assert_eq!(monitor.alerts_emitted(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod probes;
pub mod report;
pub mod rules;
pub mod slo;

pub use event::{HealthEvent, Severity};
pub use report::{HealthReport, ProbeStatus};
pub use rules::{Rule, RuleState};
pub use slo::{SloMonitor, SloRules};

use scaddar_analysis::CensusWindow;
use scaddar_core::{FairnessTracker, OpMovement, Scaddar};
use scaddar_obs::{Clock, Counter, EventLog, Gauge, Registry};
use scaddar_prng::Bits;
use std::sync::Arc;

/// Tuning knobs for a [`HealthMonitor`]. The defaults mirror the
/// harness invariants: RO1 slack past 6σ alerts at 0.5% excess, the
/// chi-square floor matches the harness `CHI_SQUARE_P_FLOOR` (`1e-9`)
/// at crit, and any exact-census discrepancy is critical.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Census snapshots retained by the RO2 sliding window.
    pub window: usize,
    /// Minimum blocks in the window-mean census before the statistical
    /// RO2 checks run (chi-square on a near-empty server is noise).
    pub min_population: u64,
    /// RO1 rule over the excess deviation
    /// ([`probes::ro1_excess_deviation`], a raw fraction).
    pub ro1: Rule,
    /// RO2 statistical rule over `-log10(p)` of the windowed
    /// chi-square (warn 6 ⇒ `p < 1e-6`, crit 9 ⇒ `p < 1e-9`).
    pub ro2_chi: Rule,
    /// RO2 exact rule over the census discrepancy in blocks
    /// ([`probes::census_discrepancy`]); the default makes any
    /// discrepancy critical.
    pub ro2_misplacement: Rule,
    /// Budget rule over [`probes::budget_pressure`]'s 0/1/2 scale.
    pub budget: Rule,
    /// Remaining-ops count at which the budget probe warns.
    pub budget_warn_remaining: u32,
    /// Simulation cap for the remaining-ops estimate.
    pub budget_sim_cap: u32,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        const COOLDOWN_NS: u64 = 1_000_000;
        MonitorConfig {
            window: 32,
            min_population: 200,
            ro1: Rule {
                warn: 0.005,
                crit: 0.02,
                hysteresis: 0.25,
                cooldown_ns: COOLDOWN_NS,
            },
            ro2_chi: Rule {
                warn: 6.0,
                crit: 9.0,
                hysteresis: 0.25,
                cooldown_ns: COOLDOWN_NS,
            },
            ro2_misplacement: Rule {
                warn: 1.0,
                crit: 1.0,
                hysteresis: 0.0,
                cooldown_ns: COOLDOWN_NS,
            },
            budget: Rule {
                warn: 1.0,
                crit: 2.0,
                hysteresis: 0.0,
                cooldown_ns: COOLDOWN_NS,
            },
            budget_warn_remaining: 2,
            budget_sim_cap: 64,
        }
    }
}

/// Per-signal bookkeeping: rule state plus the last evaluation, for
/// reports.
#[derive(Debug, Clone)]
struct Slot {
    probe: &'static str,
    kind: &'static str,
    rule: Rule,
    state: RuleState,
    last_value: Option<f64>,
    last_detail: String,
}

impl Slot {
    fn new(probe: &'static str, kind: &'static str, rule: Rule) -> Self {
        Slot {
            probe,
            kind,
            rule,
            state: RuleState::new(),
            last_value: None,
            last_detail: String::new(),
        }
    }

    fn status(&self) -> ProbeStatus {
        ProbeStatus {
            probe: self.probe,
            kind: self.kind,
            severity: self.state.severity(),
            value: self.last_value,
            detail: self.last_detail.clone(),
        }
    }
}

/// Registry mirror of the monitor's own state (optional; see
/// [`HealthMonitor::attach_registry`]).
#[derive(Debug)]
struct MonitorGauges {
    budget_remaining: Gauge,
    severity: Gauge,
    events: Counter,
    alerts: Counter,
}

/// The streaming health monitor: feeds observations through the probe
/// computations and the rule engine, accumulating [`HealthEvent`]s and
/// a JSONL [`EventLog`].
#[derive(Debug)]
pub struct HealthMonitor {
    config: MonitorConfig,
    clock: Arc<dyn Clock>,
    log: EventLog,
    events: Vec<HealthEvent>,
    alerts_emitted: usize,
    window: CensusWindow,
    tracker: FairnessTracker,
    epsilon: f64,
    disks: u32,
    movements_seen: usize,
    ro1: Slot,
    ro2_chi: Slot,
    ro2_misplace: Slot,
    budget: Slot,
    gauges: Option<MonitorGauges>,
}

impl HealthMonitor {
    /// A monitor for an engine described by `bits`/`initial_disks`/
    /// `epsilon`, before any scaling history.
    pub fn new(
        config: MonitorConfig,
        clock: Arc<dyn Clock>,
        bits: Bits,
        initial_disks: u32,
        epsilon: f64,
    ) -> Self {
        let window = CensusWindow::new(config.window);
        HealthMonitor {
            log: EventLog::new(clock.clone()),
            events: Vec::new(),
            alerts_emitted: 0,
            window,
            tracker: FairnessTracker::new(bits, initial_disks),
            epsilon,
            disks: initial_disks,
            movements_seen: 0,
            ro1: Slot::new("ro1", "ro1-deviation", config.ro1),
            ro2_chi: Slot::new("ro2", "ro2-chi-square", config.ro2_chi),
            ro2_misplace: Slot::new("ro2", "ro2-misplacement", config.ro2_misplacement),
            budget: Slot::new("budget", "rehash-advised", config.budget),
            gauges: None,
            clock,
            config,
        }
    }

    /// A monitor synced to a live engine: the budget tracker replays
    /// the engine's scaling log and `eps` comes from the engine's
    /// configuration. Operations already in [`Scaddar::op_movements`]
    /// count as seen (their RO1 conformance was the *harness*'s to
    /// check at apply time); subsequent [`HealthMonitor::observe_engine`]
    /// calls pick up new ones.
    pub fn for_engine(config: MonitorConfig, clock: Arc<dyn Clock>, engine: &Scaddar) -> Self {
        let mut monitor = Self::new(
            config,
            clock,
            engine.catalog().bits(),
            engine.disks(),
            engine.epsilon(),
        );
        monitor.sync_engine_state(engine);
        monitor.movements_seen = engine.op_movements().len();
        monitor
    }

    /// Mirrors monitor state (`monitor_*` metrics) into `registry`:
    /// remaining budget ops, current worst severity (0/1/2), event and
    /// alert totals.
    pub fn attach_registry(&mut self, registry: &Registry) {
        self.gauges = Some(MonitorGauges {
            budget_remaining: registry.gauge(
                "monitor_budget_remaining_ops",
                "Scaling operations the §4.3 budget still admits at the current disk count",
            ),
            severity: registry.gauge(
                "monitor_health_severity",
                "Current worst probe severity (0=ok, 1=warn, 2=crit)",
            ),
            events: registry.counter("monitor_events_total", "Health events emitted"),
            alerts: registry.counter(
                "monitor_alerts_total",
                "Health alerts emitted (warn or crit)",
            ),
        });
    }

    /// Consumes everything new the engine can report: fresh
    /// [`OpMovement`]s run through the RO1 probe, and the budget probe
    /// re-evaluates against a fresh replay of the scaling log (so a
    /// full redistribution resets the budget here too).
    pub fn observe_engine(&mut self, engine: &Scaddar) {
        self.sync_engine_state(engine);
        let movements = engine.op_movements();
        if movements.len() < self.movements_seen {
            // The log restarted (full redistribution): the trail reset.
            self.movements_seen = 0;
        }
        let seen = self.movements_seen;
        for m in &movements[seen..] {
            self.observe_movement(m);
        }
        self.movements_seen = movements.len();
        self.evaluate_budget();
    }

    /// Runs one applied operation through the RO1 probe and records it
    /// against the budget. The standalone path for callers without an
    /// engine reference; [`HealthMonitor::observe_engine`] subsumes it.
    pub fn observe_scale(&mut self, movement: &OpMovement) {
        self.observe_movement(movement);
        self.tracker.record_op(movement.disks_after);
        self.disks = movement.disks_after;
        self.evaluate_budget();
    }

    /// Feeds one per-disk load census (e.g. from
    /// `ServerStats::disk_load_census` or
    /// [`Scaddar::load_distribution`]) into the RO2 sliding window and
    /// re-evaluates the statistical uniformity checks. Below two disks
    /// or [`MonitorConfig::min_population`] blocks the checks are
    /// skipped (a single bin is trivially uniform — see
    /// `chi_square_uniform`).
    pub fn observe_census(&mut self, census: &[u64]) {
        self.window.push(census);
        let mean = self.window.mean_census();
        if mean.len() < 2 || mean.iter().sum::<u64>() < self.config.min_population {
            return;
        }
        let Some(chi) = self.window.chi_square() else {
            return;
        };
        // -log10(p): 0 for p=1, 6 at the warn floor 1e-6, 9 at 1e-9.
        let value = -(chi.p_value.max(1e-300)).log10();
        let detail = format!(
            "window of {} censuses over {} disks: chi2={:.3} p={:.3e} cov={:.4}",
            self.window.len(),
            mean.len(),
            chi.statistic,
            chi.p_value,
            self.window.cov().unwrap_or(0.0),
        );
        self.evaluate(SlotId::Ro2Chi, value, detail);
    }

    /// RO2 exact conformance: compares the census the engine derives
    /// (expected placement) against the census the store reports.
    /// Both in logical disk order; any discrepancy is a misplacement.
    pub fn observe_conformance(&mut self, expected: &[u64], actual: &[u64]) {
        let discrepancy = probes::census_discrepancy(expected, actual);
        let detail = if discrepancy == 0 {
            format!("censuses agree across {} disks", expected.len())
        } else {
            format!("{discrepancy} block(s) misplaced: expected {expected:?}, observed {actual:?}")
        };
        self.evaluate(SlotId::Ro2Misplace, discrepancy as f64, detail);
    }

    /// Re-evaluates the §4.3 budget probe at the current disk count.
    pub fn evaluate_budget(&mut self) {
        let remaining = probes::remaining_safe_ops(
            &self.tracker,
            self.disks,
            self.epsilon,
            self.config.budget_sim_cap,
        );
        let pressure = probes::budget_pressure(remaining, self.config.budget_warn_remaining);
        let report = self.tracker.report();
        let detail = if remaining == 0 {
            format!(
                "next op unsafe at N={} for eps={}: sigma={} after {} ops — full redistribution advised",
                self.disks, self.epsilon, report.sigma, report.operations,
            )
        } else {
            format!(
                "{remaining} op(s) remaining at N={} for eps={} (sigma={} after {} ops)",
                self.disks, self.epsilon, report.sigma, report.operations,
            )
        };
        if let Some(g) = &self.gauges {
            g.budget_remaining.set(i64::from(remaining));
        }
        self.evaluate(SlotId::Budget, pressure, detail);
    }

    /// Records the start of a rehash compaction as a
    /// `compaction-active` event (informational — severity Ok): the
    /// serving layer opened generation `to_generation` and queued
    /// `backlog` migration moves. Compaction is the *remedy* for the
    /// `rehash-advised` alert, so its lifecycle belongs in the same
    /// event stream the alert fired into.
    pub fn note_compaction_started(
        &mut self,
        from_generation: u64,
        to_generation: u64,
        backlog: u64,
    ) {
        self.note_compaction(
            "compaction-active",
            backlog as f64,
            format!(
                "rehash compaction started: generation {from_generation} -> {to_generation}, \
                 {backlog} block move(s) queued"
            ),
        );
    }

    /// Records a completed compaction flip as a `compaction-complete`
    /// event and discards generation-scoped probe state: the RO1/RO2
    /// slots and the census window all describe placements of the dead
    /// generation, so they reset to "never evaluated". The caller
    /// should follow up with [`HealthMonitor::observe_engine`] on the
    /// flipped engine — its fresh scaling log resets the §4.3 budget
    /// probe to Ok.
    pub fn note_compaction_completed(&mut self, generation: u64, total_blocks: u64) {
        self.note_compaction(
            "compaction-complete",
            total_blocks as f64,
            format!(
                "rehash compaction complete: serving generation {generation}, \
                 {total_blocks} block(s) at chain length 0"
            ),
        );
        self.window = CensusWindow::new(self.config.window);
        self.ro1 = Slot::new("ro1", "ro1-deviation", self.config.ro1);
        self.ro2_chi = Slot::new("ro2", "ro2-chi-square", self.config.ro2_chi);
        self.ro2_misplace = Slot::new("ro2", "ro2-misplacement", self.config.ro2_misplacement);
    }

    fn note_compaction(&mut self, kind: &'static str, value: f64, detail: String) {
        let event = HealthEvent {
            ts_ns: self.clock.now_ns(),
            probe: "compaction",
            kind,
            severity: Severity::Ok,
            value,
            threshold: 0.0,
            detail,
        };
        event.emit_into(&self.log);
        if let Some(g) = &self.gauges {
            g.events.inc();
        }
        self.events.push(event);
    }

    /// Every event emitted so far, oldest first.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Alert events (severity warn/crit) emitted so far.
    pub fn alerts_emitted(&self) -> usize {
        self.alerts_emitted
    }

    /// The structured event log (JSONL sink).
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// The whole event stream rendered as JSON Lines.
    pub fn events_jsonl(&self) -> String {
        self.log.render_jsonl()
    }

    /// Remaining §4.3-safe operations at the current disk count.
    pub fn budget_remaining(&self) -> u32 {
        probes::remaining_safe_ops(
            &self.tracker,
            self.disks,
            self.epsilon,
            self.config.budget_sim_cap,
        )
    }

    /// Point-in-time report across every probe.
    pub fn report(&self) -> HealthReport {
        HealthReport {
            statuses: vec![
                self.ro1.status(),
                self.ro2_chi.status(),
                self.ro2_misplace.status(),
                self.budget.status(),
            ],
            alerts_emitted: self.alerts_emitted,
        }
    }

    fn sync_engine_state(&mut self, engine: &Scaddar) {
        self.tracker = FairnessTracker::from_log(engine.catalog().bits(), engine.log());
        self.epsilon = engine.epsilon();
        self.disks = engine.disks();
    }

    fn observe_movement(&mut self, movement: &OpMovement) {
        let value = probes::ro1_excess_deviation(movement);
        let detail = format!(
            "op {} ({} -> {} disks): moved {}/{} ({:.4}), optimal z_j={:.4}",
            movement.epoch,
            movement.disks_before,
            movement.disks_after,
            movement.moved,
            movement.total,
            movement.moved_fraction(),
            movement.optimal_fraction,
        );
        self.evaluate(SlotId::Ro1, value, detail);
    }

    fn evaluate(&mut self, id: SlotId, value: f64, detail: String) {
        let now = self.clock.now_ns();
        let slot = self.slot_mut(id);
        slot.last_value = Some(value);
        slot.last_detail = detail.clone();
        let decision = slot.state.update(&slot.rule, value, now);
        if let Some(severity) = decision {
            let threshold = match severity {
                Severity::Crit => slot.rule.crit,
                _ => slot.rule.warn,
            };
            let event = HealthEvent {
                ts_ns: now,
                probe: slot.probe,
                kind: slot.kind,
                severity,
                value,
                threshold,
                detail,
            };
            event.emit_into(&self.log);
            if let Some(g) = &self.gauges {
                g.events.inc();
                if severity.is_alert() {
                    g.alerts.inc();
                }
            }
            if severity.is_alert() {
                self.alerts_emitted += 1;
            }
            self.events.push(event);
        }
        if let Some(g) = &self.gauges {
            let worst = self
                .report()
                .statuses
                .iter()
                .map(|s| s.severity)
                .max()
                .unwrap_or(Severity::Ok);
            g.severity.set(worst as i64);
        }
    }

    fn slot_mut(&mut self, id: SlotId) -> &mut Slot {
        match id {
            SlotId::Ro1 => &mut self.ro1,
            SlotId::Ro2Chi => &mut self.ro2_chi,
            SlotId::Ro2Misplace => &mut self.ro2_misplace,
            SlotId::Budget => &mut self.budget,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum SlotId {
    Ro1,
    Ro2Chi,
    Ro2Misplace,
    Budget,
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaddar_core::{ScaddarConfig, ScalingOp};
    use scaddar_obs::VirtualClock;

    fn engine_with_blocks(disks: u32, blocks: u64) -> Scaddar {
        let mut e = Scaddar::new(ScaddarConfig::new(disks).with_catalog_seed(7)).unwrap();
        e.add_object(blocks);
        e
    }

    fn monitor_for(engine: &Scaddar) -> (HealthMonitor, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new());
        let m = HealthMonitor::for_engine(MonitorConfig::default(), clock.clone(), engine);
        (m, clock)
    }

    #[test]
    fn clean_scaling_history_raises_no_alerts() {
        let mut engine = engine_with_blocks(4, 20_000);
        let (mut monitor, clock) = monitor_for(&engine);
        for op in [
            ScalingOp::Add { count: 1 },
            ScalingOp::Add { count: 2 },
            ScalingOp::remove_one(0),
        ] {
            engine.scale(op).unwrap();
            clock.advance(1_000);
            monitor.observe_engine(&engine);
            monitor.observe_census(&engine.load_distribution());
            let d = engine.load_distribution();
            monitor.observe_conformance(&d, &d);
        }
        assert_eq!(monitor.alerts_emitted(), 0, "{}", monitor.events_jsonl());
        assert_eq!(monitor.report().verdict(), Severity::Ok);
    }

    #[test]
    fn excess_movement_raises_an_ro1_alert() {
        let (mut monitor, _clock) = monitor_for(&engine_with_blocks(4, 10_000));
        // A remap bug moving 2× optimal.
        monitor.observe_scale(&OpMovement {
            epoch: 1,
            disks_before: 4,
            disks_after: 5,
            moved: 4_000,
            total: 10_000,
            optimal_fraction: 0.2,
        });
        let alerts: Vec<_> = monitor
            .events()
            .iter()
            .filter(|e| e.severity.is_alert())
            .collect();
        assert!(
            alerts
                .iter()
                .any(|e| e.kind == "ro1-deviation" && e.severity == Severity::Crit),
            "events: {:?}",
            monitor.events(),
        );
    }

    #[test]
    fn skewed_census_stream_raises_an_ro2_alert() {
        let engine = engine_with_blocks(4, 10_000);
        let (mut monitor, clock) = monitor_for(&engine);
        for _ in 0..8 {
            clock.advance(10);
            monitor.observe_census(&[9_000, 300, 350, 350]);
        }
        assert!(
            monitor
                .events()
                .iter()
                .any(|e| e.kind == "ro2-chi-square" && e.severity == Severity::Crit),
            "events: {:?}",
            monitor.events(),
        );
    }

    #[test]
    fn single_misplaced_block_is_detected_exactly() {
        let (mut monitor, _clock) = monitor_for(&engine_with_blocks(4, 1_000));
        let expected = vec![250u64, 250, 250, 250];
        let mut actual = expected.clone();
        actual[0] -= 1;
        actual[3] += 1;
        monitor.observe_conformance(&expected, &actual);
        let e = monitor
            .events()
            .iter()
            .find(|e| e.kind == "ro2-misplacement")
            .expect("misplacement event");
        assert_eq!(e.severity, Severity::Crit);
        assert_eq!(e.value, 2.0);
        // And the recovery path: agreement downgrades to Ok.
        monitor.observe_conformance(&expected, &expected);
        assert_eq!(monitor.report().verdict(), Severity::Ok);
    }

    #[test]
    fn exhausted_budget_advises_a_rehash() {
        // b=32, hovering at 8 disks, eps=0.05 admits ~9 ops; burn the
        // budget via the engine so the monitor replays a real log.
        let mut engine = engine_with_blocks(8, 100);
        let (mut monitor, clock) = monitor_for(&engine);
        let mut saw_warn = false;
        for i in 0..40 {
            let (op, after) = if i % 2 == 0 {
                (ScalingOp::remove_one(0), 7)
            } else {
                (ScalingOp::Add { count: 1 }, 8)
            };
            if !engine.next_op_is_safe(after) {
                break;
            }
            engine.scale(op).unwrap();
            clock.advance(100);
            monitor.observe_engine(&engine);
            saw_warn |= monitor
                .events()
                .iter()
                .any(|e| e.kind == "rehash-advised" && e.severity == Severity::Warn);
        }
        assert!(saw_warn, "warning should precede exhaustion");
        // Exhaust fully (as an unguarded operator would).
        while monitor.budget_remaining() > 0 {
            engine.scale(ScalingOp::Add { count: 1 }).unwrap();
            engine.scale(ScalingOp::remove_one(0)).unwrap();
            clock.advance(100);
            monitor.observe_engine(&engine);
        }
        assert!(
            monitor
                .events()
                .iter()
                .any(|e| e.kind == "rehash-advised" && e.severity == Severity::Crit),
            "events: {}",
            monitor.events_jsonl(),
        );
        // A full redistribution resets the budget (fresh log replay).
        engine.full_redistribution();
        monitor.observe_engine(&engine);
        assert!(monitor.budget_remaining() > 0);
        assert_eq!(monitor.report().verdict(), Severity::Ok);
    }

    #[test]
    fn compaction_lifecycle_lands_in_the_event_stream() {
        let engine = engine_with_blocks(4, 1_000);
        let (mut monitor, clock) = monitor_for(&engine);
        monitor.note_compaction_started(0, 1, 750);
        clock.advance(5_000);
        monitor.note_compaction_completed(1, 1_000);
        let kinds: Vec<&str> = monitor.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["compaction-active", "compaction-complete"]);
        // Lifecycle events are informational, never alerts.
        assert_eq!(monitor.alerts_emitted(), 0);
        assert_eq!(monitor.report().verdict(), Severity::Ok);
        let jsonl = monitor.events_jsonl();
        assert!(jsonl.contains("generation 0 -> 1"), "{jsonl}");
        assert!(jsonl.contains("750 block move(s) queued"), "{jsonl}");
        assert!(jsonl.contains("serving generation 1"), "{jsonl}");
    }

    #[test]
    fn registry_mirror_tracks_events_and_budget() {
        let engine = engine_with_blocks(4, 1_000);
        let (mut monitor, _clock) = monitor_for(&engine);
        let registry = Registry::new();
        monitor.attach_registry(&registry);
        monitor.evaluate_budget();
        let expected = vec![250u64, 250, 250, 250];
        let mut actual = expected.clone();
        actual[0] -= 1;
        actual[1] += 1;
        monitor.observe_conformance(&expected, &actual);
        use scaddar_obs::MetricValue;
        assert!(matches!(
            registry.value("monitor_budget_remaining_ops"),
            Some(MetricValue::Gauge(g)) if g > 0
        ));
        assert_eq!(
            registry.value("monitor_alerts_total"),
            Some(MetricValue::Counter(1))
        );
        assert_eq!(
            registry.value("monitor_health_severity"),
            Some(MetricValue::Gauge(2))
        );
    }

    #[test]
    fn event_streams_are_deterministic_per_seed() {
        let run = || {
            let mut engine = engine_with_blocks(4, 5_000);
            let (mut monitor, clock) = monitor_for(&engine);
            for op in [ScalingOp::Add { count: 2 }, ScalingOp::remove_one(1)] {
                engine.scale(op).unwrap();
                clock.advance(777);
                monitor.observe_engine(&engine);
                monitor.observe_census(&engine.load_distribution());
            }
            // Force at least one event so the comparison is non-trivial.
            monitor.observe_conformance(&[1, 2], &[2, 1]);
            monitor.events_jsonl()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(!a.is_empty());
    }

    #[test]
    fn cooldown_suppresses_repeat_alerts_until_clock_advances() {
        let engine = engine_with_blocks(4, 1_000);
        let (mut monitor, clock) = monitor_for(&engine);
        let expected = vec![500u64, 500];
        let actual = vec![499u64, 501];
        monitor.observe_conformance(&expected, &actual);
        monitor.observe_conformance(&expected, &actual);
        monitor.observe_conformance(&expected, &actual);
        assert_eq!(monitor.alerts_emitted(), 1, "cooldown holds repeats");
        clock.advance(MonitorConfig::default().ro2_misplacement.cooldown_ns);
        monitor.observe_conformance(&expected, &actual);
        assert_eq!(monitor.alerts_emitted(), 2, "heartbeat after cooldown");
    }
}
