//! The SLO bridge: burn rates → hysteresis rules → health events.
//!
//! `scaddar_obs::slo` computes multi-window burn rates but knows
//! nothing about alerting (obs sits below this crate). This module
//! closes the loop: each objective's **gating** burn (`min(short,
//! long)` — high only when the budget spend is both sustained and
//! still happening) runs through the same [`Rule`]/[`RuleState`]
//! machinery as the RO1/RO2 probes, emitting [`HealthEvent`]s into the
//! shared JSONL [`EventLog`]. On any transition *into* `Crit` the span
//! flight recorder is captured into the same log, so the post-mortem
//! timeline ships with the alert that demanded it.

use crate::event::{HealthEvent, Severity};
use crate::rules::{Rule, RuleState};
use scaddar_obs::slo::SloTracker;
use scaddar_obs::{EventLog, Gauge, Registry, Tracer};

/// Alert thresholds over the two gating burn rates. A burn of 1.0
/// spends the budget exactly; the defaults alert at 2× (warn) and 10×
/// (crit) with the monitor's usual hysteresis and cooldown.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRules {
    /// Rule over the availability gating burn.
    pub availability: Rule,
    /// Rule over the latency gating burn.
    pub latency: Rule,
    /// Spans captured from the flight recorder on a CRIT transition.
    pub capture_spans: usize,
}

impl Default for SloRules {
    fn default() -> Self {
        let rule = Rule {
            warn: 2.0,
            crit: 10.0,
            hysteresis: 0.1,
            cooldown_ns: 1_000_000,
        };
        SloRules {
            availability: rule,
            latency: rule,
            capture_spans: 32,
        }
    }
}

/// Evaluates one [`SloTracker`] against [`SloRules`], emitting health
/// events and mirroring state into registry gauges.
#[derive(Debug)]
pub struct SloMonitor {
    tracker: SloTracker,
    rules: SloRules,
    log: EventLog,
    availability_state: RuleState,
    latency_state: RuleState,
    alerts: u64,
    captures: u64,
    burn_gauges: Option<(Gauge, Gauge)>,
    severity_gauge: Option<Gauge>,
}

impl SloMonitor {
    /// A monitor over `tracker`, emitting into `log` (whose clock also
    /// times cooldowns).
    pub fn new(tracker: SloTracker, rules: SloRules, log: EventLog) -> Self {
        SloMonitor {
            tracker,
            rules,
            log,
            availability_state: RuleState::new(),
            latency_state: RuleState::new(),
            alerts: 0,
            captures: 0,
            burn_gauges: None,
            severity_gauge: None,
        }
    }

    /// The tracked SLO accounting (feed requests / scrape deltas here).
    pub fn tracker(&self) -> &SloTracker {
        &self.tracker
    }

    /// Mirrors gating burns (×1000, rounded) and the worst severity
    /// into `registry` on every evaluation.
    pub fn attach_registry(&mut self, registry: &Registry) {
        self.burn_gauges = Some((
            registry.gauge(
                "monitor_slo_burn_x1000{objective=\"availability\"}",
                "availability gating burn rate, ×1000",
            ),
            registry.gauge(
                "monitor_slo_burn_x1000{objective=\"latency\"}",
                "latency gating burn rate, ×1000",
            ),
        ));
        self.severity_gauge = Some(registry.gauge(
            "monitor_slo_severity",
            "worst SLO severity (0 ok, 1 warn, 2 crit)",
        ));
    }

    /// Worst current severity across both objectives.
    pub fn severity(&self) -> Severity {
        self.availability_state
            .severity()
            .max(self.latency_state.severity())
    }

    /// Health events emitted so far (alerts and recoveries).
    pub fn alerts_emitted(&self) -> u64 {
        self.alerts
    }

    /// Flight-recorder captures performed so far.
    pub fn captures(&self) -> u64 {
        self.captures
    }

    /// Evaluates both objectives once: reads the burn rates, runs the
    /// rule state machines, emits any due [`HealthEvent`]s into the
    /// log, and — on a transition into `Crit` — captures the last
    /// `capture_spans` spans of `flight` into the log. Returns the
    /// emitted events.
    pub fn evaluate(&mut self, flight: Option<&Tracer>) -> Vec<HealthEvent> {
        let now = self.log.clock().now_ns();
        let burns = self.tracker.burn_rates();
        if let Some((avail, lat)) = &self.burn_gauges {
            avail.set((burns.availability.gating() * 1000.0).round() as i64);
            lat.set((burns.latency.gating() * 1000.0).round() as i64);
        }
        let mut events = Vec::new();
        let mut entered_crit = false;
        let objectives: [(&'static str, f64, f64, f64, Rule, &mut RuleState); 2] = [
            (
                "availability-burn",
                burns.availability.gating(),
                burns.availability.short,
                burns.availability.long,
                self.rules.availability,
                &mut self.availability_state,
            ),
            (
                "latency-p999-burn",
                burns.latency.gating(),
                burns.latency.short,
                burns.latency.long,
                self.rules.latency,
                &mut self.latency_state,
            ),
        ];
        for (kind, gating, short, long, rule, state) in objectives {
            let was = state.severity();
            if let Some(severity) = state.update(&rule, gating, now) {
                let event = HealthEvent {
                    ts_ns: now,
                    probe: "slo",
                    kind,
                    severity,
                    value: gating,
                    threshold: if severity == Severity::Crit {
                        rule.crit
                    } else {
                        rule.warn
                    },
                    detail: format!("burn short={short:.3} long={long:.3}"),
                };
                event.emit_into(&self.log);
                self.alerts += 1;
                if severity == Severity::Crit && was != Severity::Crit {
                    entered_crit = true;
                }
                events.push(event);
            }
        }
        if entered_crit {
            if let Some(tracer) = flight {
                let captured = tracer.capture_into(&self.log, self.rules.capture_spans);
                self.log.emit(
                    "flight-capture",
                    [
                        ("probe", "slo".to_string()),
                        ("spans", captured.to_string()),
                    ],
                );
                self.captures += 1;
            }
        }
        if let Some(gauge) = &self.severity_gauge {
            gauge.set(match self.severity() {
                Severity::Ok => 0,
                Severity::Warn => 1,
                Severity::Crit => 2,
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaddar_obs::slo::SloConfig;
    use scaddar_obs::VirtualClock;
    use std::sync::Arc;

    fn fixture() -> (Arc<VirtualClock>, SloMonitor) {
        let clock = Arc::new(VirtualClock::new());
        let tracker = SloTracker::new(SloConfig::default(), clock.clone());
        let log = EventLog::new(clock.clone());
        (
            clock.clone(),
            SloMonitor::new(tracker, SloRules::default(), log),
        )
    }

    fn burn_errors(monitor: &SloMonitor, errors: u64, total: u64) {
        monitor.tracker().record_batch(total, errors, 0);
    }

    #[test]
    fn quiet_traffic_emits_nothing() {
        let (_clock, mut monitor) = fixture();
        burn_errors(&monitor, 0, 10_000);
        assert!(monitor.evaluate(None).is_empty());
        assert_eq!(monitor.severity(), Severity::Ok);
        assert_eq!(monitor.alerts_emitted(), 0);
    }

    #[test]
    fn sustained_burn_trips_warn_then_recovers() {
        let (clock, mut monitor) = fixture();
        // 0.5% errors against the 0.1% budget: gating burn 5 ≥ warn 2.
        burn_errors(&monitor, 50, 10_000);
        let events = monitor.evaluate(None);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "availability-burn");
        assert_eq!(events[0].severity, Severity::Warn);
        assert_eq!(events[0].probe, "slo");
        assert!(events[0].detail.contains("short=5.000"));
        // Clean traffic dilutes the burn below warn·(1−hysteresis).
        clock.advance(1_000_000);
        burn_errors(&monitor, 0, 500_000);
        let events = monitor.evaluate(None);
        assert_eq!(events.len(), 1, "recovery emits");
        assert_eq!(events[0].severity, Severity::Ok);
        assert_eq!(monitor.severity(), Severity::Ok);
    }

    #[test]
    fn crit_transition_captures_the_flight_recorder_once() {
        let (clock, mut monitor) = fixture();
        let tracer = Tracer::new(clock.clone(), 16);
        {
            let mut span = tracer.span("shard.locate");
            clock.advance(42);
            span.event("verdict", "slow");
        }
        // 5% errors: gating burn 50 ≥ crit 10.
        burn_errors(&monitor, 500, 10_000);
        let events = monitor.evaluate(Some(&tracer));
        assert_eq!(events[0].severity, Severity::Crit);
        assert_eq!(monitor.captures(), 1);
        let jsonl = monitor.log.render_jsonl();
        assert!(jsonl.contains("\"kind\": \"span-capture\""));
        assert!(jsonl.contains("\"kind\": \"flight-capture\""));
        assert!(jsonl.contains("shard.locate"));
        // Steady crit (after cooldown) heartbeats but does not re-dump.
        clock.advance(2_000_000);
        burn_errors(&monitor, 500, 10_000);
        let events = monitor.evaluate(Some(&tracer));
        assert_eq!(events.len(), 1, "heartbeat");
        assert_eq!(monitor.captures(), 1, "no second capture");
    }

    #[test]
    fn latency_objective_alerts_independently() {
        let (_clock, mut monitor) = fixture();
        // 2% of requests past the objective: latency burn 20 ≥ crit 10.
        monitor.tracker().record_batch(10_000, 0, 200);
        let events = monitor.evaluate(None);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "latency-p999-burn");
        assert_eq!(events[0].severity, Severity::Crit);
    }

    #[test]
    fn gauges_mirror_burns_and_severity() {
        let (_clock, mut monitor) = fixture();
        let registry = Registry::new();
        monitor.attach_registry(&registry);
        burn_errors(&monitor, 50, 10_000);
        monitor.evaluate(None);
        let burn = registry
            .gauges_with_prefix("monitor_slo_burn_x1000{objective=\"availability\"}")
            .pop()
            .unwrap()
            .1;
        assert_eq!(burn, 5_000);
        assert_eq!(
            registry
                .gauges_with_prefix("monitor_slo_severity")
                .pop()
                .unwrap()
                .1,
            1
        );
    }

    #[test]
    fn evaluation_streams_are_deterministic_per_seed() {
        let run = || {
            let (clock, mut monitor) = fixture();
            let tracer = Tracer::new(clock.clone(), 8);
            let mut state = 99u64;
            for _ in 0..40 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                monitor.tracker().record_batch(100, state % 13, state % 7);
                {
                    let _span = tracer.span("step");
                }
                clock.advance(500_000);
                monitor.evaluate(Some(&tracer));
            }
            monitor.log.render_jsonl()
        };
        assert_eq!(run(), run());
    }
}
