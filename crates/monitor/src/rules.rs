//! The alert state machine: threshold classification with hysteresis
//! and cooldown, no external deps.
//!
//! Each signal gets a [`Rule`] (static thresholds) and a [`RuleState`]
//! (current severity + last emission time). [`RuleState::update`]
//! classifies a fresh value and decides whether an event should be
//! emitted:
//!
//! * **upgrade** (severity rose) — emit immediately;
//! * **steady alert** (severity unchanged, `Warn`/`Crit`) — re-emit
//!   only after `cooldown_ns` of clock time, so a persistent condition
//!   heartbeats instead of flooding;
//! * **downgrade** — only when the value clears the lower threshold by
//!   the hysteresis margin (`value < threshold · (1 − hysteresis)`),
//!   which stops a value oscillating around a threshold from emitting
//!   an event per sample; a downgrade that happens emits immediately
//!   (including the recovery to `Ok`).

use crate::event::Severity;

/// Static thresholds for one signal. Values are judged upward: a value
/// `>= crit` is critical, `>= warn` is a warning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rule {
    /// Warning threshold (inclusive).
    pub warn: f64,
    /// Critical threshold (inclusive); must be `>= warn`.
    pub crit: f64,
    /// Downgrade margin as a fraction of the threshold being cleared
    /// (`0.0` = downgrade as soon as the value dips below).
    pub hysteresis: f64,
    /// Minimum clock time between re-emissions of an unchanged alert.
    pub cooldown_ns: u64,
}

impl Rule {
    /// Severity of `value` under these thresholds, ignoring history.
    pub fn classify(&self, value: f64) -> Severity {
        if value >= self.crit {
            Severity::Crit
        } else if value >= self.warn {
            Severity::Warn
        } else {
            Severity::Ok
        }
    }
}

/// Mutable per-signal state: where the state machine currently sits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleState {
    severity: Severity,
    last_emit_ns: Option<u64>,
}

impl Default for RuleState {
    fn default() -> Self {
        RuleState {
            severity: Severity::Ok,
            last_emit_ns: None,
        }
    }
}

impl RuleState {
    /// A fresh state at [`Severity::Ok`].
    pub fn new() -> Self {
        RuleState::default()
    }

    /// The current severity.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// Feeds one sample; returns `Some(severity)` when an event should
    /// be emitted at that severity, `None` to stay silent.
    pub fn update(&mut self, rule: &Rule, value: f64, now_ns: u64) -> Option<Severity> {
        let target = rule.classify(value);
        let next = if target >= self.severity {
            target
        } else {
            // Downgrading: the value must clear the threshold of every
            // level it leaves by the hysteresis margin, else hold.
            let clears = |threshold: f64| value < threshold * (1.0 - rule.hysteresis);
            match (self.severity, target) {
                (Severity::Crit, _) if !clears(rule.crit) => Severity::Crit,
                (Severity::Crit, Severity::Ok) if !clears(rule.warn) => Severity::Warn,
                (Severity::Warn, Severity::Ok) if !clears(rule.warn) => Severity::Warn,
                (_, t) => t,
            }
        };
        let emit = if next != self.severity {
            // Upgrades and real (post-hysteresis) downgrades always
            // fire, including recovery to Ok.
            true
        } else if next.is_alert() {
            // Steady alert: heartbeat after cooldown.
            match self.last_emit_ns {
                Some(last) => now_ns.saturating_sub(last) >= rule.cooldown_ns,
                None => true,
            }
        } else {
            false // steady Ok is silent
        };
        self.severity = next;
        if emit {
            self.last_emit_ns = Some(now_ns);
            Some(next)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULE: Rule = Rule {
        warn: 1.0,
        crit: 2.0,
        hysteresis: 0.2,
        cooldown_ns: 100,
    };

    #[test]
    fn classification_is_inclusive_at_thresholds() {
        assert_eq!(RULE.classify(0.99), Severity::Ok);
        assert_eq!(RULE.classify(1.0), Severity::Warn);
        assert_eq!(RULE.classify(1.99), Severity::Warn);
        assert_eq!(RULE.classify(2.0), Severity::Crit);
    }

    #[test]
    fn upgrades_emit_immediately() {
        let mut s = RuleState::new();
        assert_eq!(s.update(&RULE, 0.5, 0), None);
        assert_eq!(s.update(&RULE, 1.5, 1), Some(Severity::Warn));
        assert_eq!(s.update(&RULE, 2.5, 2), Some(Severity::Crit));
    }

    #[test]
    fn steady_alerts_heartbeat_on_cooldown() {
        let mut s = RuleState::new();
        assert_eq!(s.update(&RULE, 1.5, 0), Some(Severity::Warn));
        assert_eq!(s.update(&RULE, 1.5, 50), None, "inside cooldown");
        assert_eq!(s.update(&RULE, 1.5, 100), Some(Severity::Warn));
        assert_eq!(s.update(&RULE, 1.5, 150), None);
    }

    #[test]
    fn hysteresis_holds_the_level_near_the_threshold() {
        let mut s = RuleState::new();
        s.update(&RULE, 1.5, 0);
        // 0.9 is below warn=1.0, but not below 1.0·(1−0.2)=0.8: hold.
        assert_eq!(s.update(&RULE, 0.9, 1), None);
        assert_eq!(s.severity(), Severity::Warn);
        // 0.7 clears the margin: recover, emitting the Ok transition.
        assert_eq!(s.update(&RULE, 0.7, 2), Some(Severity::Ok));
        assert_eq!(s.severity(), Severity::Ok);
    }

    #[test]
    fn crit_downgrade_passes_through_warn_when_only_crit_clears() {
        let mut s = RuleState::new();
        s.update(&RULE, 2.5, 0);
        // 1.5 clears crit·0.8=1.6 but is still above warn: Warn.
        assert_eq!(s.update(&RULE, 1.5, 1), Some(Severity::Warn));
        // 0.9 targets Ok but does not clear warn·0.8: hold Warn.
        assert_eq!(s.update(&RULE, 0.9, 2), None);
        assert_eq!(s.update(&RULE, 0.1, 3), Some(Severity::Ok));
    }

    #[test]
    fn steady_ok_never_emits() {
        let mut s = RuleState::new();
        for t in 0..10 {
            assert_eq!(s.update(&RULE, 0.1, t * 1_000), None);
        }
    }
}
