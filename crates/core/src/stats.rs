//! Engine telemetry: the metric handles a [`Scaddar`](crate::Scaddar)
//! records into when observability is attached.
//!
//! The engine is built to run bare — `stats` is an `Option` and every
//! instrumentation site is a branch on it — so embedding contexts that
//! don't care (unit tests, experiments) pay one predicted-not-taken
//! branch per call. When attached, the budget is explicit:
//!
//! * **`locate` (hot)** — exactly one weak counter increment
//!   ([`Counter::inc_weak`], a relaxed load + store pair, no locked
//!   read-modify-write), which doubles as the 1-in-N sampling basis
//!   for the `scaddar_core_locate_ns` histogram. The overhead bench
//!   (`benches/obs.rs`) holds this within a few percent of bare.
//! * **scaling / planning / persistence (cold)** — full timing and
//!   byte counts; these run per-operation, not per-lookup.
//!
//! Metric names follow the `DESIGN.md` §9 scheme
//! (`scaddar_core_<what>[_<unit>|_total]`).

use scaddar_obs::{Clock, Counter, Histogram, MonotonicClock, Registry};
use std::sync::Arc;

/// Sampling interval for `locate` latency: a power-of-two mask, so the
/// sampled call is `calls & MASK == 0` (every 1024th call by default —
/// two clock reads plus a histogram record cost ~80 ns, and amortizing
/// them over 1024 calls keeps the per-call tax well under the 5%
/// overhead budget).
pub const LOCATE_SAMPLE_MASK: u64 = 1023;

/// Metric handles for one engine, registered in a shared [`Registry`].
#[derive(Debug)]
pub struct EngineStats {
    /// `AF()` lookups served from the X-cache — every successful
    /// [`Scaddar::locate`](crate::Scaddar::locate); this counter is
    /// also the sampling basis for [`EngineStats::locate_ns`].
    pub xcache_hits: Counter,
    /// Lookups that bypassed the cache and paid the stateless O(j)
    /// fold ([`Scaddar::trace`](crate::Scaddar::trace), oracle paths).
    pub xcache_misses: Counter,
    /// Blocks served through the bulk cache paths (`locate_all`,
    /// `locate_batch`).
    pub locate_bulk_blocks: Counter,
    /// Sampled `locate` latency, nanoseconds.
    pub locate_ns: Histogram,
    /// X-cache epoch advances (one per scaling operation).
    pub xcache_epoch_bumps: Counter,
    /// X-cache rebuilds from scratch (restore, log restart).
    pub xcache_rebuilds: Counter,
    /// `REMAP` pipeline step applications, bulk-counted at the call
    /// sites that fold (cache advance/rebuild/admission, planning).
    pub pipeline_folds: Counter,
    /// Scaling operations applied.
    pub scale_ops: Counter,
    /// Blocks moved by applied scaling operations (the RO1 numerator;
    /// together with `plan_blocks` this yields the live moved
    /// fraction).
    pub scale_moved_blocks: Counter,
    /// End-to-end `scale()` latency (log push + plan + cache advance).
    pub scale_ns: Histogram,
    /// `RF()` planning latency per operation.
    pub plan_ns: Histogram,
    /// Per-worker chunk latency inside the parallel planner.
    pub plan_chunk_ns: Histogram,
    /// Blocks examined by planning passes.
    pub plan_blocks: Counter,
    /// Snapshot bytes encoded.
    pub persist_bytes_written: Counter,
    /// Snapshot bytes decoded (successfully or not).
    pub persist_bytes_read: Counter,
    /// Snapshot decode/validation failures.
    pub persist_validation_failures: Counter,
    /// Time source for the latency histograms.
    pub clock: Arc<dyn Clock>,
    /// Sampling mask for `locate` timing (`calls & mask == 0` samples).
    pub sample_mask: u64,
}

impl EngineStats {
    /// Registers the engine metric family in `registry`, timing with
    /// `clock`.
    pub fn register(registry: &Registry, clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(EngineStats {
            xcache_hits: registry.counter(
                "scaddar_core_xcache_hits_total",
                "AF() lookups served from the X-cache",
            ),
            xcache_misses: registry.counter(
                "scaddar_core_xcache_misses_total",
                "Lookups that paid the stateless O(j) fold instead of the cache",
            ),
            locate_bulk_blocks: registry.counter(
                "scaddar_core_locate_bulk_blocks_total",
                "Blocks served through locate_all/locate_batch",
            ),
            locate_ns: registry.histogram(
                "scaddar_core_locate_ns",
                "Sampled AF() lookup latency (ns, 1-in-1024 calls)",
            ),
            xcache_epoch_bumps: registry.counter(
                "scaddar_core_xcache_epoch_bumps_total",
                "X-cache epoch advances (one per scaling operation)",
            ),
            xcache_rebuilds: registry.counter(
                "scaddar_core_xcache_rebuilds_total",
                "X-cache rebuilds from catalog + log",
            ),
            pipeline_folds: registry.counter(
                "scaddar_core_pipeline_folds_total",
                "REMAP pipeline step applications (bulk-counted)",
            ),
            scale_ops: registry
                .counter("scaddar_core_scale_ops_total", "Scaling operations applied"),
            scale_moved_blocks: registry.counter(
                "scaddar_core_scale_moved_blocks_total",
                "Blocks moved by applied scaling operations",
            ),
            scale_ns: registry
                .histogram("scaddar_core_scale_ns", "End-to-end scale() latency (ns)"),
            plan_ns: registry.histogram("scaddar_core_plan_ns", "RF() planning latency (ns)"),
            plan_chunk_ns: registry.histogram(
                "scaddar_core_plan_chunk_ns",
                "Per-worker chunk latency inside the parallel planner (ns)",
            ),
            plan_blocks: registry.counter(
                "scaddar_core_plan_blocks_total",
                "Blocks examined by RF() planning passes",
            ),
            persist_bytes_written: registry.counter(
                "scaddar_core_persist_bytes_written_total",
                "Snapshot bytes encoded",
            ),
            persist_bytes_read: registry.counter(
                "scaddar_core_persist_bytes_read_total",
                "Snapshot bytes decoded",
            ),
            persist_validation_failures: registry.counter(
                "scaddar_core_persist_validation_failures_total",
                "Snapshot decode/validation failures",
            ),
            clock,
            sample_mask: LOCATE_SAMPLE_MASK,
        })
    }

    /// [`EngineStats::register`] with the default wall clock.
    pub fn register_monotonic(registry: &Registry) -> Arc<Self> {
        Self::register(registry, Arc::new(MonotonicClock::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_per_registry() {
        let registry = Registry::new();
        let a = EngineStats::register_monotonic(&registry);
        let b = EngineStats::register_monotonic(&registry);
        a.xcache_hits.inc();
        b.xcache_hits.inc();
        // Both handles point at the same registered counters.
        assert_eq!(a.xcache_hits.get(), 2);
        assert!(registry
            .names()
            .contains(&"scaddar_core_locate_ns".to_string()));
    }
}
