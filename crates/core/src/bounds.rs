//! §4.3 — bounding the reduction in randomness.
//!
//! Every SCADDAR operation draws its fresh randomness from the quotient
//! `q_{j-1} = X_{j-1} div N_{j-1}`, shrinking the usable random range by
//! about a factor `N_{j-1}`. The paper quantifies the consequence with
//! the **unfairness coefficient** of a placement scheme,
//!
//! ```text
//! f = (largest expected load) / (smallest expected load) - 1
//! ```
//!
//! and proves (Lemmas 4.2/4.3):
//!
//! * `R_k div N_k >= R_0 div (N_0·N_1·…·N_k)` — the surviving range;
//! * if `sigma_k = N_0·…·N_k <= R_0·eps/(1+eps)` then `f(R_k,N_k) < eps`.
//!
//! The resulting **rule of thumb**: with `b` random bits, average disk
//! count `avg`, and tolerance `eps`, about
//! `k + 1 <= (b - log2(1/eps)) / log2(avg)` operations are safe; after
//! that the paper recommends a full redistribution (a fresh epoch 0).
//! [`FairnessTracker`] implements the paper's closing advice to "keep
//! track of the quantity sigma_k explicitly and find out whether the next
//! operation will lead to a violation of the precondition".

use crate::log::ScalingLog;
use scaddar_prng::Bits;

/// Unfairness coefficient `f(R, N) = 1 / (R div N)` of drawing uniformly
/// from `R` values (`0..R`) and placing by `x mod N` (§4.3).
///
/// Returns `f64::INFINITY` when `R div N == 0` (no full cycle of residues
/// fits in the range — some disk can have expected load 0).
pub fn unfairness_coefficient(range_size: u128, disks: u64) -> f64 {
    assert!(disks > 0, "disk count must be positive");
    let cycles = range_size / u128::from(disks);
    if cycles == 0 {
        f64::INFINITY
    } else {
        1.0 / cycles as f64
    }
}

/// Exact unfairness of `x mod N` over `x in 0..R`: `(max-min)/min - 1`
/// with max = ceil(R/N)·(N·?)… computed from the residue census rather
/// than the paper's `1/(R div N)` upper bound. Useful to show how tight
/// the bound is (experiment E7).
pub fn exact_unfairness(range_size: u128, disks: u64) -> f64 {
    assert!(disks > 0);
    let n = u128::from(disks);
    let q = range_size / n;
    let rem = range_size % n;
    if q == 0 {
        return f64::INFINITY;
    }
    if rem == 0 {
        0.0
    } else {
        // `rem` disks have expected count q+1, the rest q.
        (q as f64 + 1.0) / q as f64 - 1.0
    }
}

/// Result of asking the tracker whether another operation is safe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessReport {
    /// Operations recorded so far (`k`).
    pub operations: usize,
    /// `sigma_k = N_0·…·N_k` (saturating at `u128::MAX`).
    pub sigma: u128,
    /// Guaranteed surviving range size, `(R_0+1) div sigma_k` values.
    pub guaranteed_range: u128,
    /// Upper bound on the unfairness coefficient after these operations.
    pub unfairness_bound: f64,
}

/// Tracks `sigma_k` across a server's lifetime and implements the
/// Lemma 4.3 precondition check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairnessTracker {
    bits: Bits,
    sigma: u128,
    operations: usize,
}

impl FairnessTracker {
    /// Starts tracking for a server with `initial_disks` and `b`-bit
    /// random numbers. `sigma_0 = N_0`.
    pub fn new(bits: Bits, initial_disks: u32) -> Self {
        assert!(initial_disks > 0);
        FairnessTracker {
            bits,
            sigma: u128::from(initial_disks),
            operations: 0,
        }
    }

    /// Rebuilds a tracker from an existing scaling log.
    pub fn from_log(bits: Bits, log: &ScalingLog) -> Self {
        let mut t = FairnessTracker::new(bits, log.initial_disks());
        for record in log.records() {
            t.record_op(record.disks_after());
        }
        t
    }

    /// Records operation `k` resulting in `disks_after` disks:
    /// `sigma_k = sigma_{k-1} · N_k`.
    pub fn record_op(&mut self, disks_after: u32) {
        assert!(disks_after > 0);
        self.sigma = self.sigma.saturating_mul(u128::from(disks_after));
        self.operations += 1;
    }

    /// `sigma_k`.
    pub fn sigma(&self) -> u128 {
        self.sigma
    }

    /// Lemma 4.3 precondition: would the *current* state keep
    /// `f(R_k, N_k) < eps`? (`sigma_k <= R_0 · eps / (1 + eps)`.)
    pub fn precondition_holds(&self, eps: f64) -> bool {
        assert!(eps > 0.0);
        // R_0 · eps/(1+eps), computed in f64 — R_0 <= 2^64 so f64's 53-bit
        // mantissa gives a ~2^11 ulp, negligible against the exponential
        // growth of sigma. Guard the conversion explicitly.
        let budget = self.bits.max_value() as f64 * (eps / (1.0 + eps));
        (self.sigma as f64) <= budget
    }

    /// Would recording one more operation ending at `disks_after` still
    /// satisfy the precondition? This is the paper's suggested
    /// implementation guard: check *before* scaling, and trigger a full
    /// redistribution instead when the answer is `false`.
    pub fn next_op_is_safe(&self, disks_after: u32, eps: f64) -> bool {
        let mut probe = self.clone();
        probe.record_op(disks_after);
        probe.precondition_holds(eps)
    }

    /// Snapshot of the analytic state.
    pub fn report(&self) -> FairnessReport {
        let guaranteed_range = self.bits.range_size() / self.sigma.max(1);
        FairnessReport {
            operations: self.operations,
            sigma: self.sigma,
            guaranteed_range,
            unfairness_bound: if guaranteed_range == 0 {
                f64::INFINITY
            } else {
                1.0 / guaranteed_range as f64
            },
        }
    }

    /// Resets after a full redistribution: the server re-seeds placement
    /// (fresh `X_0`), so the range is whole again and `sigma = N_0` for
    /// the new epoch-zero disk count.
    pub fn reset(&mut self, disks_now: u32) {
        assert!(disks_now > 0);
        self.sigma = u128::from(disks_now);
        self.operations = 0;
    }
}

/// The paper's rule of thumb (§4.3): the largest number of operations `k`
/// such that `k + 1 <= (b - log2(1/eps)) / log2(avg_disks)`.
///
/// Paper's own examples:
/// * `b=64, avg=16, eps=1%` → `k = 13` ("a total of 13 disk
///   addition/removal operations can be supported");
/// * `b=32, avg=8, eps=5%` → `k = 8` (the §5 simulation's threshold).
pub fn rule_of_thumb_max_ops(bits: Bits, avg_disks: f64, eps: f64) -> u32 {
    assert!(avg_disks > 1.0, "average disk count must exceed 1");
    assert!(eps > 0.0 && eps < 1.0);
    let b = f64::from(bits.get());
    let budget = (b - (1.0 / eps).log2()) / avg_disks.log2();
    if budget < 1.0 {
        0
    } else {
        (budget.floor() as u32).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ScalingOp;

    #[test]
    fn paper_rule_of_thumb_examples() {
        // §4.3: "if we have an average of sixteen disks, desire eps=1%,
        // and are using a 64-bit random number generator ... k <= 13".
        assert_eq!(rule_of_thumb_max_ops(Bits::B64, 16.0, 0.01), 13);
        // §5: "we find k = 8 where eps = 5%, avg = 8 and b = 32".
        assert_eq!(rule_of_thumb_max_ops(Bits::B32, 8.0, 0.05), 8);
    }

    #[test]
    fn rule_of_thumb_monotonic_in_bits_and_disks() {
        let k32 = rule_of_thumb_max_ops(Bits::B32, 8.0, 0.05);
        let k64 = rule_of_thumb_max_ops(Bits::B64, 8.0, 0.05);
        assert!(k64 > k32);
        let k_few = rule_of_thumb_max_ops(Bits::B64, 4.0, 0.05);
        let k_many = rule_of_thumb_max_ops(Bits::B64, 64.0, 0.05);
        assert!(k_few > k_many, "more disks per op burn range faster");
    }

    #[test]
    fn unfairness_coefficient_basics() {
        // Range 0..10, 3 disks: counts 4,3,3 -> bound 1/(10 div 3)=1/3,
        // exact (4-3)/3 = 1/3.
        assert!((unfairness_coefficient(10, 3) - 1.0 / 3.0).abs() < 1e-12);
        assert!((exact_unfairness(10, 3) - 1.0 / 3.0).abs() < 1e-12);
        // Perfectly divisible range is perfectly fair.
        assert_eq!(exact_unfairness(12, 3), 0.0);
        assert!((unfairness_coefficient(12, 3) - 0.25).abs() < 1e-12);
        // Degenerate range.
        assert_eq!(unfairness_coefficient(2, 3), f64::INFINITY);
    }

    #[test]
    fn exact_never_exceeds_bound() {
        for range in 1u128..500 {
            for disks in 1u64..20 {
                let exact = exact_unfairness(range, disks);
                let bound = unfairness_coefficient(range, disks);
                assert!(
                    exact <= bound + 1e-12,
                    "exact {exact} > bound {bound} at R={range} N={disks}"
                );
            }
        }
    }

    #[test]
    fn tracker_matches_manual_sigma() {
        let mut t = FairnessTracker::new(Bits::B32, 4);
        t.record_op(5);
        t.record_op(6);
        assert_eq!(t.sigma(), 4 * 5 * 6);
        let report = t.report();
        assert_eq!(report.operations, 2);
        assert_eq!(report.guaranteed_range, (1u128 << 32) / 120);
    }

    #[test]
    fn from_log_agrees_with_incremental() {
        let mut log = ScalingLog::new(4).unwrap();
        let mut inc = FairnessTracker::new(Bits::B32, 4);
        for op in [
            ScalingOp::Add { count: 1 },
            ScalingOp::remove_one(0),
            ScalingOp::Add { count: 3 },
        ] {
            let rec = log.push(&op).unwrap();
            let after = rec.disks_after();
            inc.record_op(after);
        }
        assert_eq!(FairnessTracker::from_log(Bits::B32, &log), inc);
    }

    #[test]
    fn precondition_flips_after_enough_ops() {
        // b=32, disks hovering at 8, eps=5%: the paper says ~8 ops.
        let mut t = FairnessTracker::new(Bits::B32, 8);
        let mut safe_ops = 0;
        while t.next_op_is_safe(8, 0.05) {
            t.record_op(8);
            safe_ops += 1;
        }
        // sigma_k = 8^{k+1}; need 8^{k+1} <= 2^32·0.05/1.05 ~ 2^27.6
        // -> 3(k+1) <= 27.6 -> k <= 8.2 -> 8 ops.
        assert_eq!(safe_ops, 8);
    }

    #[test]
    fn saturation_is_permanently_unsafe() {
        let mut t = FairnessTracker::new(Bits::B64, u32::MAX);
        for _ in 0..10 {
            t.record_op(u32::MAX);
        }
        assert_eq!(t.sigma(), u128::MAX);
        assert!(!t.precondition_holds(0.99));
        assert_eq!(t.report().guaranteed_range, 0);
        assert_eq!(t.report().unfairness_bound, f64::INFINITY);
    }

    #[test]
    fn reset_restores_safety() {
        let mut t = FairnessTracker::new(Bits::B32, 8);
        for _ in 0..20 {
            t.record_op(8);
        }
        assert!(!t.precondition_holds(0.05));
        t.reset(16);
        assert!(t.precondition_holds(0.05));
        assert_eq!(t.report().operations, 0);
        assert_eq!(t.sigma(), 16);
    }
}
