//! Compiled remap pipelines: the bulk-location engine's hot loop.
//!
//! Folding `X_0 → X_j` through a [`ScalingLog`] record-by-record pays,
//! per step, an enum dispatch on [`RecordAction`], a hardware division
//! for every `mod`/`div`, and (for removals) a lookup through
//! [`RemovedSet`]. A [`RemapPipeline`] *compiles* the log once into a
//! flat step list that removes all three costs:
//!
//! * steps are plain structs in one contiguous `Vec` — no enum
//!   dispatch, no pointer chasing, one cache line per step;
//! * every removal's renumbering is a dense table shared in one buffer;
//! * **divisions are strength-reduced away**: each step's disk counts
//!   are fixed at compilation, so `x / N` and `x % N` are computed with
//!   a precomputed 128-bit reciprocal (`⌊2¹²⁸/N⌋ + 1`) and two 64×64
//!   multiplies — exact for all `x` and all `N ≥ 1` (Granlund &
//!   Montgomery's invariant-divisor scheme; see [`MagicDivisor`]) —
//!   instead of a `div` instruction per `mod`/`div` pair.
//!
//! The pipeline is append-only, mirroring the log: after a scaling
//! operation, [`RemapPipeline::extend_from`] compiles just the new
//! records. Equivalence with the reference fold
//! ([`crate::address::x_at_current_epoch`]) is property-tested for
//! arbitrary op sequences and full-range `u64` inputs.

use crate::address::DiskIndex;
use crate::log::{RecordAction, ScalingLog, ScalingRecord};
use crate::ops::RemovedSet;

/// Sentinel in a step's `table_off` marking an addition step (additions
/// need no renumber table; it doubles as the op-kind tag).
const ADDITION: usize = usize::MAX;

/// Exact division and remainder by a fixed divisor via a precomputed
/// 128-bit reciprocal, replacing the hardware `div` in the fold loop.
///
/// For `2 <= d < 2^64` the magic constant is `M = ⌊2¹²⁸/d⌋ + 1`, and
/// `⌊x/d⌋ = ⌊M·x / 2¹²⁸⌋` for every `x < 2^64` — the invariant-divisor
/// bound holds because `2¹²⁸ < M·d ≤ 2¹²⁸ + d - 1 < 2¹²⁸ + 2⁶⁴`.
/// `d = 1` is kept as a trivial branch (its magic would overflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MagicDivisor {
    d: u64,
    magic: u128,
}

impl MagicDivisor {
    fn new(d: u64) -> Self {
        debug_assert!(d >= 1);
        // For d = 1 the magic is unused; 0 keeps Eq/Hash canonical.
        let magic = if d == 1 {
            0
        } else {
            u128::MAX / u128::from(d) + 1
        };
        MagicDivisor { d, magic }
    }

    /// `(x / d, x % d)` with two multiplies and no division.
    #[inline(always)]
    fn divmod(self, x: u64) -> (u64, u64) {
        if self.d == 1 {
            return (x, 0);
        }
        let q = self.mul_hi(x);
        (q, x - q * self.d)
    }

    /// `x % d` alone.
    #[inline(always)]
    fn rem(self, x: u64) -> u64 {
        if self.d == 1 {
            return 0;
        }
        x - self.mul_hi(x) * self.d
    }

    /// `⌊magic · x / 2¹²⁸⌋`: the 128×64→192-bit high product, from two
    /// 64×64→128 multiplies.
    #[inline(always)]
    fn mul_hi(self, x: u64) -> u64 {
        let x = u128::from(x);
        let lo = u128::from(self.magic as u64) * x;
        let hi = (self.magic >> 64) * x;
        ((hi + (lo >> 64)) >> 64) as u64
    }
}

/// One compiled `REMAP` step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Step {
    /// `N_{j-1}` with its reciprocal.
    n_prev: MagicDivisor,
    /// `N_j` with its reciprocal (the reciprocal is used by additions
    /// only, but removals keep it for uniformity).
    n_new: MagicDivisor,
    /// Offset of this step's dense renumber table in
    /// [`RemapPipeline::tables`], or [`ADDITION`].
    table_off: usize,
}

impl Step {
    /// Applies this step to `x`: `(X_j, moved)`, the same contract as
    /// [`crate::remap::remap_add`]/[`crate::remap::remap_remove`].
    #[inline(always)]
    fn apply(&self, x: u64, tables: &[u32]) -> (u64, bool) {
        let (q, r) = self.n_prev.divmod(x);
        if self.table_off == ADDITION {
            // Eq. 5: fresh draw t = q mod N_j; t < N_{j-1} keeps disk r,
            // and (q/N_j)·N_j + r = q - t + r needs no extra division.
            let t = self.n_new.rem(q);
            if t < self.n_prev.d {
                (q - t + r, false)
            } else {
                (q, true)
            }
        } else {
            // Eq. 3: dense table gives new(r) or the removed sentinel.
            let m = tables[self.table_off + r as usize];
            if m == RemovedSet::REMOVED {
                (q, true)
            } else {
                (q * self.n_new.d + u64::from(m), false)
            }
        }
    }
}

/// A [`ScalingLog`] compiled to a flat, division-free step list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapPipeline {
    initial_disks: u32,
    current_disks: u32,
    steps: Vec<Step>,
    /// Concatenated dense renumber tables of every removal step.
    tables: Vec<u32>,
}

impl RemapPipeline {
    /// Compiles the whole log.
    pub fn compile(log: &ScalingLog) -> Self {
        Self::compile_prefix(log, log.epoch())
    }

    /// Compiles only the first `epochs` operations (the state of the
    /// world at epoch `epochs`). Used by planners that need `X_{j-1}`.
    ///
    /// # Panics
    /// If `epochs > log.epoch()`.
    pub fn compile_prefix(log: &ScalingLog, epochs: usize) -> Self {
        assert!(epochs <= log.epoch(), "epoch {epochs} is in the future");
        let mut pipeline = RemapPipeline {
            initial_disks: log.initial_disks(),
            current_disks: log.initial_disks(),
            steps: Vec::with_capacity(epochs),
            tables: Vec::new(),
        };
        for record in &log.records()[..epochs] {
            pipeline.push_record(record);
        }
        pipeline
    }

    /// Appends compiled steps for every log record past the pipeline's
    /// current epoch. O(new records), so keeping a pipeline in lockstep
    /// with a growing log costs one step compilation per operation.
    ///
    /// # Panics
    /// If the log is not a continuation of what was compiled (different
    /// initial disk count, shorter history, or mismatched disk counts at
    /// the pipeline's epoch).
    pub fn extend_from(&mut self, log: &ScalingLog) {
        assert_eq!(
            self.initial_disks,
            log.initial_disks(),
            "log is not a continuation: different initial disk count"
        );
        assert!(
            self.epoch() <= log.epoch(),
            "log is behind the compiled pipeline"
        );
        assert_eq!(
            self.current_disks,
            log.disks_at(self.epoch()),
            "log diverged from the compiled pipeline"
        );
        for record in &log.records()[self.epoch()..] {
            self.push_record(record);
        }
    }

    fn push_record(&mut self, record: &ScalingRecord) {
        debug_assert_eq!(self.current_disks, record.disks_before());
        let table_off = match record.action() {
            RecordAction::Added { .. } => ADDITION,
            RecordAction::Removed(set) => {
                let off = self.tables.len();
                self.tables.extend_from_slice(set.rank_table());
                off
            }
        };
        self.steps.push(Step {
            n_prev: MagicDivisor::new(u64::from(record.disks_before())),
            n_new: MagicDivisor::new(u64::from(record.disks_after())),
            table_off,
        });
        self.current_disks = record.disks_after();
    }

    /// Number of compiled operations (the epoch the pipeline folds to).
    pub fn epoch(&self) -> usize {
        self.steps.len()
    }

    /// `N_0`.
    pub fn initial_disks(&self) -> u32 {
        self.initial_disks
    }

    /// `N_j` at the pipeline's epoch.
    pub fn current_disks(&self) -> u32 {
        self.current_disks
    }

    /// Applies compiled step `i` (i.e. `REMAP_{i+1}`) to `x`, returning
    /// the remapped value and whether the block changed disks — the same
    /// contract as [`crate::remap::remap_add`]/
    /// [`crate::remap::remap_remove`].
    #[inline]
    pub fn step(&self, i: usize, x: u64) -> (u64, bool) {
        self.steps[i].apply(x, &self.tables)
    }

    /// `X_j`: folds `x0` through every compiled step.
    #[inline]
    pub fn fold(&self, x0: u64) -> u64 {
        let mut x = x0;
        for step in &self.steps {
            x = step.apply(x, &self.tables).0;
        }
        x
    }

    /// Folds `x` (a value at epoch `from`) through steps `from..epoch()`.
    /// The X-cache uses this with `from = epoch() - 1` to advance by
    /// exactly one `REMAP` per scaling operation.
    #[inline]
    pub fn fold_from(&self, from: usize, mut x: u64) -> u64 {
        for step in &self.steps[from..] {
            x = step.apply(x, &self.tables).0;
        }
        x
    }

    /// Folds a whole batch of `X_0` values to `X_j` in place.
    ///
    /// Unlike mapping [`RemapPipeline::fold`] over the slice (one block
    /// at a time through all steps, each step waiting on the last), this
    /// walks **step-outer, block-inner**: every block in the batch is
    /// independent within a step, so the per-block multiply chains
    /// overlap in the CPU pipeline and the step's constants (divisor,
    /// reciprocal, renumber table) stay in registers/L1 for the whole
    /// inner loop. This is the engine's bulk path — the throughput win
    /// the scalar fold cannot reach latency-bound.
    pub fn fold_batch(&self, xs: &mut [u64]) {
        for step in &self.steps {
            let np = step.n_prev;
            if step.table_off == ADDITION {
                let nn = step.n_new;
                for x in xs.iter_mut() {
                    let (q, r) = np.divmod(*x);
                    let t = nn.rem(q);
                    *x = if t < np.d { q - t + r } else { q };
                }
            } else {
                let nn = step.n_new.d;
                // r < N_{j-1} always, so the table slice is exactly
                // N_{j-1} long and the inner bounds check never fires.
                let table = &self.tables[step.table_off..step.table_off + np.d as usize];
                for x in xs.iter_mut() {
                    let (q, r) = np.divmod(*x);
                    let m = table[r as usize];
                    *x = if m == RemovedSet::REMOVED {
                        q
                    } else {
                        q * nn + u64::from(m)
                    };
                }
            }
        }
    }

    /// `AF()` against the compiled log: `D_j = fold(x0) mod N_j`.
    #[inline]
    pub fn locate(&self, x0: u64) -> DiskIndex {
        DiskIndex((self.fold(x0) % u64::from(self.current_disks.max(1))) as u32)
    }

    /// Bulk `AF()`: batch-folds every `x0` and reduces mod `N_j`.
    pub fn locate_batch(&self, x0s: &[u64]) -> Vec<DiskIndex> {
        let mut xs = x0s.to_vec();
        self.fold_batch(&mut xs);
        let disks = u64::from(self.current_disks.max(1));
        xs.into_iter()
            .map(|x| DiskIndex((x % disks) as u32))
            .collect()
    }

    /// Bulk `AF()` across `threads` scoped worker threads, each batch-
    /// folding a contiguous chunk. Output order matches input order;
    /// results are identical to [`RemapPipeline::locate_batch`].
    pub fn locate_batch_parallel(&self, x0s: &[u64], threads: usize) -> Vec<DiskIndex> {
        let threads = threads.max(1);
        if threads == 1 || x0s.len() < 2 * threads {
            return self.locate_batch(x0s);
        }
        let mut out = vec![DiskIndex(0); x0s.len()];
        let chunk = x0s.len().div_ceil(threads);
        let disks = u64::from(self.current_disks.max(1));
        crossbeam::scope(|scope| {
            for (xs, outs) in x0s.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move |_| {
                    let mut buf = xs.to_vec();
                    self.fold_batch(&mut buf);
                    for (x, slot) in buf.iter().zip(outs.iter_mut()) {
                        *slot = DiskIndex((x % disks) as u32);
                    }
                });
            }
        })
        .expect("locate workers join cleanly");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{locate, x_at_current_epoch};
    use crate::ops::ScalingOp;

    #[test]
    fn magic_division_is_exact() {
        // Stress the reciprocal against hardware division across divisor
        // shapes (1, 2, powers of two, primes, u32::MAX) and extreme x.
        let xs = [
            0u64,
            1,
            12345,
            u64::from(u32::MAX),
            1 << 33,
            u64::MAX - 1,
            u64::MAX,
        ];
        for d in [
            1u64,
            2,
            3,
            4,
            5,
            6,
            7,
            8,
            64,
            97,
            1 << 20,
            u64::from(u32::MAX),
        ] {
            let m = MagicDivisor::new(d);
            for &x in &xs {
                assert_eq!(m.divmod(x), (x / d, x % d), "x={x} d={d}");
                assert_eq!(m.rem(x), x % d, "x={x} d={d}");
            }
        }
    }

    fn log_with(initial: u32, ops: &[ScalingOp]) -> ScalingLog {
        let mut log = ScalingLog::new(initial).unwrap();
        for op in ops {
            log.push(op).unwrap();
        }
        log
    }

    fn mixed_log() -> ScalingLog {
        log_with(
            4,
            &[
                ScalingOp::Add { count: 2 },
                ScalingOp::remove_one(1),
                ScalingOp::Add { count: 1 },
                ScalingOp::Remove { disks: vec![0, 3] },
                ScalingOp::Add { count: 3 },
            ],
        )
    }

    #[test]
    fn empty_log_is_identity() {
        let log = ScalingLog::new(5).unwrap();
        let pipe = RemapPipeline::compile(&log);
        assert_eq!(pipe.epoch(), 0);
        assert_eq!(pipe.current_disks(), 5);
        assert_eq!(pipe.fold(12345), 12345);
        assert_eq!(pipe.locate(12), DiskIndex(2));
    }

    #[test]
    fn fold_matches_reference_on_mixed_log() {
        let log = mixed_log();
        let pipe = RemapPipeline::compile(&log);
        assert_eq!(pipe.current_disks(), log.current_disks());
        for x0 in (0..200_000u64).step_by(37).chain([u64::MAX, u64::MAX / 3]) {
            assert_eq!(pipe.fold(x0), x_at_current_epoch(x0, &log), "x0={x0}");
            assert_eq!(pipe.locate(x0), locate(x0, &log), "x0={x0}");
        }
    }

    #[test]
    fn single_disk_and_growth_from_one() {
        // N = 1 exercises the d == 1 branch of the magic divisor.
        let log = log_with(1, &[ScalingOp::Add { count: 3 }, ScalingOp::remove_one(0)]);
        let pipe = RemapPipeline::compile(&log);
        for x0 in [0u64, 5, 999_999, u64::MAX] {
            assert_eq!(pipe.fold(x0), x_at_current_epoch(x0, &log), "x0={x0}");
        }
    }

    #[test]
    fn paper_removal_example_through_pipeline() {
        // §4.2.1: remove disk 4 of 6; X=28 moves to disk 4 (new
        // numbering), X=41 stays put as X_j = 34.
        let log = log_with(6, &[ScalingOp::remove_one(4)]);
        let pipe = RemapPipeline::compile(&log);
        assert_eq!(pipe.fold(28), 4);
        assert_eq!(pipe.fold(41), 34);
        assert_eq!(pipe.step(0, 28), (4, true));
        assert_eq!(pipe.step(0, 41), (34, false));
    }

    #[test]
    fn extend_from_matches_full_compile() {
        let log = mixed_log();
        let full = RemapPipeline::compile(&log);
        let mut incremental = RemapPipeline::compile_prefix(&log, 0);
        for e in 1..=log.epoch() {
            let partial = {
                let mut l = ScalingLog::new(4).unwrap();
                for r in &log.records()[..e] {
                    let op = match r.action() {
                        RecordAction::Added { count } => ScalingOp::Add { count: *count },
                        RecordAction::Removed(set) => ScalingOp::Remove {
                            disks: set.indices().to_vec(),
                        },
                    };
                    l.push(&op).unwrap();
                }
                l
            };
            incremental.extend_from(&partial);
            assert_eq!(incremental.epoch(), e);
        }
        assert_eq!(incremental, full);
    }

    #[test]
    fn fold_from_composes() {
        let log = mixed_log();
        let pipe = RemapPipeline::compile(&log);
        for x0 in [0u64, 7, 999_999, u64::MAX / 7] {
            let mid = RemapPipeline::compile_prefix(&log, 2).fold(x0);
            assert_eq!(pipe.fold_from(2, mid), pipe.fold(x0));
        }
    }

    #[test]
    fn fold_batch_matches_scalar_fold() {
        let log = mixed_log();
        let pipe = RemapPipeline::compile(&log);
        let mut xs: Vec<u64> = (0..5_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .chain([u64::MAX, 0])
            .collect();
        let expected: Vec<u64> = xs.iter().map(|&x| pipe.fold(x)).collect();
        pipe.fold_batch(&mut xs);
        assert_eq!(xs, expected);
    }

    #[test]
    fn locate_batch_parallel_matches_serial() {
        let log = mixed_log();
        let pipe = RemapPipeline::compile(&log);
        let x0s: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9))
            .collect();
        let serial = pipe.locate_batch(&x0s);
        for threads in [1, 2, 3, 8] {
            assert_eq!(pipe.locate_batch_parallel(&x0s, threads), serial);
        }
    }

    #[test]
    #[should_panic(expected = "not a continuation")]
    fn extend_from_rejects_divergent_log() {
        let mut pipe = RemapPipeline::compile(&log_with(4, &[ScalingOp::add_one()]));
        pipe.extend_from(&log_with(5, &[ScalingOp::add_one()]));
    }
}
