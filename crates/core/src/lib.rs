//! # scaddar-core — SCAling Disks for Data Arranged Randomly
//!
//! A faithful implementation of **SCADDAR** (Goel, Shahabi, Yao,
//! Zimmermann; USC TR-742 / ICDE 2002): pseudo-random placement of
//! continuous-media blocks that survives disk additions and removals with
//!
//! * **RO1** — minimal block movement (exactly the optimal fraction
//!   `z_j`),
//! * **RO2** — preserved randomization (and hence load balance), and
//! * **AO1** — directory-free, `O(j)` mod/div block lookup,
//!
//! for up to a provable number of scaling operations (§4.3), after which
//! a full redistribution is recommended and the counters reset.
//!
//! ## Layout
//!
//! | module | paper section | contents |
//! |--------|---------------|----------|
//! | [`remap`] | §4.2, Eqs. 3 & 5 | the `REMAP_j` functions |
//! | [`address`] | §4, AO1 | the access function `AF()`, tracing |
//! | [`plan`] | §4, RO1 | the redistribution function `RF()` |
//! | [`ops`], [`log`] | Def. 3.3 | scaling operations and the scaling log |
//! | [`bounds`] | §4.3 | unfairness analysis, rule of thumb, tracker |
//! | [`object`] | Def. 3.2 | objects, seeds, the catalog |
//!
//! ## Quick start
//!
//! ```
//! use scaddar_core::{Scaddar, ScaddarConfig, ScalingOp};
//!
//! // A server with 4 disks, 32-bit placement randomness.
//! let mut server = Scaddar::new(ScaddarConfig::new(4)).unwrap();
//! let movie = server.add_object(10_000); // 10k blocks
//!
//! // Blocks are spread across all 4 disks.
//! let d = server.locate(movie, 1234).unwrap();
//! assert!(d.0 < 4);
//!
//! // Add a disk group: only ~2/6 of blocks move, all onto disks 4 and 5.
//! let plan = server.scale(ScalingOp::Add { count: 2 }).unwrap();
//! assert!((plan.moved_fraction() - 2.0 / 6.0).abs() < 0.02);
//! assert!(plan.moves.iter().all(|m| m.to.0 >= 4));
//!
//! // Lookup still works, no directory anywhere.
//! let d = server.locate(movie, 1234).unwrap();
//! assert!(d.0 < 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod audit;
pub mod bounds;
pub mod error;
pub mod log;
pub mod object;
pub mod ops;
pub mod persist;
pub mod pipeline;
pub mod plan;
pub mod remap;
pub mod stats;
pub mod xcache;

pub use address::{locate, locate_at_epoch, trace, DiskIndex, TraceStep};
pub use audit::{audit_balance, audit_census, audit_plan, AuditReport, Finding};
pub use bounds::{
    exact_unfairness, rule_of_thumb_max_ops, unfairness_coefficient, FairnessReport,
    FairnessTracker,
};
pub use error::ScalingError;
pub use log::{RecordAction, ScalingLog, ScalingRecord};
pub use object::{BlockRef, Catalog, CmObject, ObjectId};
pub use ops::{RemovedSet, ScalingOp};
pub use persist::{PersistError, Snapshot};
pub use pipeline::RemapPipeline;
pub use plan::{
    plan_last_op, plan_last_op_parallel, plan_last_op_parallel_instrumented, plan_last_op_with_x,
    BlockMove, MovePlan, OpMovement,
};
pub use stats::EngineStats;
pub use xcache::XCache;

use scaddar_prng::{Bits, RngKind};
use std::sync::Arc;

/// Configuration of a SCADDAR placement engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaddarConfig {
    /// Initial number of disks `N_0`.
    pub initial_disks: u32,
    /// Bit width `b` of placement random numbers (paper: 32 or 64).
    pub bits: Bits,
    /// Generator family for `p_r(s)`.
    pub rng: RngKind,
    /// Server-wide seed decorrelating object seeds.
    pub catalog_seed: u64,
    /// Fairness tolerance `eps` for the §4.3 precondition
    /// ([`Scaddar::next_op_is_safe`]). Paper's §5 uses 5%.
    pub epsilon: f64,
}

impl ScaddarConfig {
    /// Paper-flavoured defaults: 32-bit randomness, `eps = 5%`,
    /// SplitMix64 generator.
    pub fn new(initial_disks: u32) -> Self {
        ScaddarConfig {
            initial_disks,
            bits: Bits::B32,
            rng: RngKind::SplitMix64,
            catalog_seed: 0,
            epsilon: 0.05,
        }
    }

    /// Overrides the bit width.
    pub fn with_bits(mut self, bits: Bits) -> Self {
        self.bits = bits;
        self
    }

    /// Overrides the generator family.
    pub fn with_rng(mut self, rng: RngKind) -> Self {
        self.rng = rng;
        self
    }

    /// Overrides the catalog seed.
    pub fn with_catalog_seed(mut self, seed: u64) -> Self {
        self.catalog_seed = seed;
        self
    }

    /// Overrides the fairness tolerance.
    pub fn with_epsilon(mut self, eps: f64) -> Self {
        self.epsilon = eps;
        self
    }
}

/// Errors from the high-level [`Scaddar`] engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScaddarError {
    /// Underlying scaling-log error.
    Scaling(ScalingError),
    /// Unknown object id.
    UnknownObject(ObjectId),
    /// Block index out of range for the object.
    BlockOutOfRange {
        /// The object.
        object: ObjectId,
        /// The requested block.
        block: u64,
        /// The object's block count.
        blocks: u64,
    },
}

impl std::fmt::Display for ScaddarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaddarError::Scaling(e) => write!(f, "scaling error: {e}"),
            ScaddarError::UnknownObject(id) => write!(f, "unknown {id}"),
            ScaddarError::BlockOutOfRange {
                object,
                block,
                blocks,
            } => write!(f, "{object} has {blocks} blocks, no block {block}"),
        }
    }
}

impl std::error::Error for ScaddarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScaddarError::Scaling(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScalingError> for ScaddarError {
    fn from(e: ScalingError) -> Self {
        ScaddarError::Scaling(e)
    }
}

/// The high-level SCADDAR placement engine: a [`Catalog`], a
/// [`ScalingLog`], and a [`FairnessTracker`], behind one API.
///
/// This is pure placement logic — it decides *where blocks live*, not how
/// bytes move. The `cmsim` crate wraps it in a simulated CM server with
/// disks, streams, and an online redistribution executor.
///
/// Internally the engine keeps two accelerations in lockstep with the
/// log — a compiled [`RemapPipeline`] and an epoch-tagged [`XCache`] of
/// every block's current `X_j` — which make [`Scaddar::locate`] O(1),
/// [`Scaddar::locate_all`] O(B), and [`Scaddar::scale`] O(B) per
/// operation instead of the stateless O(j)/O(B·j) folds. Both are
/// derived state: always reconstructible from catalog + log, and the
/// stateless fold remains available as [`locate`]/[`plan_last_op`] (the
/// reference oracle the accelerated paths are property-tested against).
#[derive(Debug, Clone)]
pub struct Scaddar {
    catalog: Catalog,
    log: ScalingLog,
    pipeline: RemapPipeline,
    cache: XCache,
    fairness: FairnessTracker,
    epsilon: f64,
    movements: Vec<OpMovement>,
    stats: Option<Arc<EngineStats>>,
    /// Placement generation: bumped by a rehash compaction, which
    /// re-derives every `X_0` from a fresh catalog seed and restarts the
    /// scaling log (see [`Scaddar::open_next_generation`]).
    generation: u64,
}

/// Generation `g`'s catalog seed, chained from generation `g-1`'s via a
/// SplitMix64-style finalizer. Deterministic, so two replicas compacting
/// the same state open identical generations.
fn next_generation_seed(seed: u64, generation: u64) -> u64 {
    let mut z = seed
        .wrapping_add(generation.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Scaddar {
    /// Creates an engine with `config.initial_disks` empty disks.
    pub fn new(config: ScaddarConfig) -> Result<Self, ScaddarError> {
        let log = ScalingLog::new(config.initial_disks)?;
        Ok(Scaddar {
            catalog: Catalog::new(config.rng, config.bits, config.catalog_seed),
            pipeline: RemapPipeline::compile(&log),
            cache: XCache::new(),
            fairness: FairnessTracker::new(config.bits, config.initial_disks),
            log,
            epsilon: config.epsilon,
            movements: Vec::new(),
            stats: None,
            generation: 0,
        })
    }

    /// Attaches metric handles; subsequent engine activity records into
    /// them. Clones of the engine share the same handles.
    pub fn attach_stats(&mut self, stats: Arc<EngineStats>) {
        self.stats = Some(stats);
    }

    /// Detaches metric handles; subsequent activity is unobserved.
    /// Used by dry-run probes cloned from a live engine so preview
    /// work does not pollute the live registry.
    pub fn detach_stats(&mut self) {
        self.stats = None;
    }

    /// The attached metric handles, if any.
    pub fn stats(&self) -> Option<&Arc<EngineStats>> {
        self.stats.as_ref()
    }

    /// The object catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The scaling log (read-only).
    pub fn log(&self) -> &ScalingLog {
        &self.log
    }

    /// Current number of disks `N_j`.
    pub fn disks(&self) -> u32 {
        self.log.current_disks()
    }

    /// Current epoch `j`.
    pub fn epoch(&self) -> usize {
        self.log.epoch()
    }

    /// Current placement generation (0 for an engine that has never
    /// been rehash-compacted).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The compiled remap pipeline kept in lockstep with the log.
    pub fn pipeline(&self) -> &RemapPipeline {
        &self.pipeline
    }

    /// Registers a new object of `blocks` blocks.
    pub fn add_object(&mut self, blocks: u64) -> ObjectId {
        let id = self.catalog.add_object(blocks);
        let obj = *self.catalog.object(id).expect("object was just added");
        self.cache
            .insert_object(&self.catalog, &obj, &self.pipeline);
        if let Some(stats) = &self.stats {
            // Admission folds every new block X_0 → X_j.
            stats
                .pipeline_folds
                .add(blocks.saturating_mul(self.log.epoch() as u64));
        }
        id
    }

    /// Deletes an object from the catalog.
    pub fn remove_object(&mut self, id: ObjectId) -> Result<CmObject, ScaddarError> {
        let obj = self
            .catalog
            .remove_object(id)
            .ok_or(ScaddarError::UnknownObject(id))?;
        self.cache.remove_object(id);
        Ok(obj)
    }

    /// `AF()`: the disk of `block` of `object` at the current epoch.
    /// O(1): one lookup in the X-cache and one `mod` — no per-epoch fold.
    ///
    /// With stats attached the overhead is one relaxed atomic increment
    /// per call (the X-cache hit counter, which doubles as the sampling
    /// basis); 1 in [`stats::LOCATE_SAMPLE_MASK`]` + 1` calls also pay
    /// two clock reads to feed the latency histogram.
    pub fn locate(&self, object: ObjectId, block: u64) -> Result<DiskIndex, ScaddarError> {
        if let Some(stats) = &self.stats {
            let calls = stats.xcache_hits.inc_weak();
            if calls & stats.sample_mask == 0 {
                let start = stats.clock.now_ns();
                let out = self.locate_inner(object, block);
                stats
                    .locate_ns
                    .record(stats.clock.now_ns().saturating_sub(start));
                return out;
            }
        }
        self.locate_inner(object, block)
    }

    #[inline]
    fn locate_inner(&self, object: ObjectId, block: u64) -> Result<DiskIndex, ScaddarError> {
        let obj = self
            .catalog
            .object(object)
            .ok_or(ScaddarError::UnknownObject(object))?;
        if block >= obj.blocks {
            return Err(ScaddarError::BlockOutOfRange {
                object,
                block,
                blocks: obj.blocks,
            });
        }
        let x = self
            .cache
            .x(object, block)
            .expect("cache holds every catalog block");
        Ok(DiskIndex((x % u64::from(self.disks())) as u32))
    }

    /// Bulk `AF()`: the disks of *every* block of `object`, in block
    /// order. O(B): one `mod` per cached `X_j`.
    pub fn locate_all(&self, object: ObjectId) -> Result<Vec<DiskIndex>, ScaddarError> {
        let xs = self
            .cache
            .xs(object)
            .ok_or(ScaddarError::UnknownObject(object))?;
        let disks = u64::from(self.disks());
        if let Some(stats) = &self.stats {
            stats.locate_bulk_blocks.add(xs.len() as u64);
        }
        Ok(xs.iter().map(|&x| DiskIndex((x % disks) as u32)).collect())
    }

    /// Bulk `AF()` for an arbitrary list of blocks of one object, in
    /// input order. The batch companion of [`Scaddar::locate`] (same
    /// validation, same O(1)-per-block cost).
    pub fn locate_batch(
        &self,
        object: ObjectId,
        blocks: &[u64],
    ) -> Result<Vec<DiskIndex>, ScaddarError> {
        let xs = self
            .cache
            .xs(object)
            .ok_or(ScaddarError::UnknownObject(object))?;
        let disks = u64::from(self.disks());
        if let Some(stats) = &self.stats {
            stats.locate_bulk_blocks.add(blocks.len() as u64);
        }
        blocks
            .iter()
            .map(|&block| {
                let x = xs
                    .get(block as usize)
                    .ok_or(ScaddarError::BlockOutOfRange {
                        object,
                        block,
                        blocks: xs.len() as u64,
                    })?;
                Ok(DiskIndex((x % disks) as u32))
            })
            .collect()
    }

    /// The full remap history of one block (worked examples, debugging).
    pub fn trace(&self, object: ObjectId, block: u64) -> Result<Vec<TraceStep>, ScaddarError> {
        let obj = self
            .catalog
            .object(object)
            .ok_or(ScaddarError::UnknownObject(object))?;
        if let Some(stats) = &self.stats {
            // Tracing bypasses the cache: a stateless O(j) fold.
            stats.xcache_misses.inc();
            stats.pipeline_folds.add(self.log.epoch() as u64);
        }
        Ok(trace(self.catalog.x0(obj, block), &self.log))
    }

    /// Applies a scaling operation and returns the move plan (`RF()`).
    ///
    /// O(B): the cache already holds every block's `X_{j-1}`, so the plan
    /// applies only the new record, and advancing the cache afterwards is
    /// the same single [`RemapPipeline::step`] per block. (The stateless
    /// O(B·j) [`plan_last_op`] computes the identical plan.)
    pub fn scale(&mut self, op: ScalingOp) -> Result<MovePlan, ScaddarError> {
        let scale_start = self.stats.as_ref().map(|s| s.clock.now_ns());
        let disks_before = self.log.current_disks();
        let record = self.log.push(&op)?;
        let disks_after = record.disks_after();
        self.fairness.record_op(disks_after);
        self.pipeline.extend_from(&self.log);
        let plan_start = self.stats.as_ref().map(|s| s.clock.now_ns());
        let plan = plan_last_op_with_x(self.cache.blocks_with_x(&self.catalog), &self.log);
        if let (Some(stats), Some(start)) = (&self.stats, plan_start) {
            stats
                .plan_ns
                .record(stats.clock.now_ns().saturating_sub(start));
            stats.plan_blocks.add(plan.total_blocks);
        }
        self.cache.advance_to(&self.pipeline);
        self.movements
            .push(OpMovement::from_plan(&plan, disks_before, disks_after));
        if let (Some(stats), Some(start)) = (&self.stats, scale_start) {
            stats.scale_ops.inc();
            stats.scale_moved_blocks.add(plan.moves.len() as u64);
            stats.xcache_epoch_bumps.inc();
            // Planning applied the new record once per block; advancing
            // the cache applied it once more.
            stats
                .pipeline_folds
                .add(plan.total_blocks.saturating_mul(2));
            stats
                .scale_ns
                .record(stats.clock.now_ns().saturating_sub(start));
        }
        Ok(plan)
    }

    /// Lemma 4.3 guard: is one more operation (ending at `disks_after`
    /// disks) within the configured fairness tolerance?
    pub fn next_op_is_safe(&self, disks_after: u32) -> bool {
        self.fairness.next_op_is_safe(disks_after, self.epsilon)
    }

    /// Analytic fairness snapshot (§4.3).
    pub fn fairness(&self) -> FairnessReport {
        self.fairness.report()
    }

    /// The configured fairness tolerance `eps` (§4.3).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Movement accounting for every scaling operation applied through
    /// *this* engine value, oldest first — the RO1 audit trail a health
    /// monitor replays ([`OpMovement::moved_fraction`] vs the recorded
    /// optimal `z_j`). Cleared by [`Scaddar::full_redistribution`] (the
    /// log restarts) and empty on snapshot restore (the log records
    /// operations, not move counts).
    pub fn op_movements(&self) -> &[OpMovement] {
        &self.movements
    }

    /// Performs the paper's recommended escape hatch once the §4.3
    /// precondition fails: a **full redistribution**. The scaling log
    /// restarts at the current disk count (placement becomes plain
    /// `X_0 mod N`) and the fairness tracker resets. Returns how many
    /// blocks change disks — essentially a `z`-independent, near-complete
    /// reshuffle, which is why the paper avoids doing this often.
    pub fn full_redistribution(&mut self) -> u64 {
        let disks = u64::from(self.disks());
        // Old disk from the cached X_j, fresh disk from X_0; the two
        // iterators walk the same catalog order.
        let moved = self
            .cache
            .blocks_with_x(&self.catalog)
            .zip(self.catalog.iter_x0())
            .filter(|((_, x_j), (_, x0))| x_j % disks != x0 % disks)
            .count() as u64;
        self.log = ScalingLog::new(disks as u32).expect("disks > 0 by invariant");
        self.fairness.reset(disks as u32);
        self.movements.clear();
        self.pipeline = RemapPipeline::compile(&self.log);
        self.cache = XCache::rebuild(&self.catalog, &self.pipeline);
        if let Some(stats) = &self.stats {
            stats.xcache_rebuilds.inc();
        }
        moved
    }

    /// Opens the **next placement generation**: a staging engine with
    /// the same objects under re-derived seeds (fresh `X_0` per block),
    /// a scaling log restarted at the current disk count (locate
    /// collapses back to one `X_0 mod N` hash), and a full fairness
    /// budget. The staging engine serves nothing by itself — a caller
    /// (cmsim's compaction) migrates block residency toward it and then
    /// flips over. Deterministic: the new catalog seed is chained from
    /// the current one, so the next generation is a pure function of
    /// the current placement state.
    pub fn open_next_generation(&self) -> Scaddar {
        let generation = self.generation + 1;
        let catalog = self.catalog.reseeded(next_generation_seed(
            self.catalog.catalog_seed(),
            generation,
        ));
        let disks = self.disks();
        let log = ScalingLog::new(disks).expect("disks > 0 by invariant");
        let pipeline = RemapPipeline::compile(&log);
        let cache = XCache::rebuild(&catalog, &pipeline);
        Scaddar {
            fairness: FairnessTracker::new(catalog.bits(), disks),
            catalog,
            log,
            pipeline,
            cache,
            epsilon: self.epsilon,
            movements: Vec::new(),
            // Staging engines are unobserved; the caller re-attaches
            // handles at flip time so preview work never double-counts.
            stats: None,
            generation,
        }
    }

    /// **Offline** rehash compaction: replaces this engine with its next
    /// generation in place and returns how many blocks change disks.
    /// Unlike [`Scaddar::full_redistribution`] — which keeps the old
    /// `X_0`s and merely restarts the log — this re-derives every
    /// placement from a fresh seed, so the expected moved fraction is
    /// `1 - 1/N` regardless of history. The online, rate-limited path
    /// lives in cmsim's compaction machinery on top of
    /// [`Scaddar::open_next_generation`].
    pub fn rehash_to_next_generation(&mut self) -> u64 {
        let next = self.open_next_generation();
        let disks = u64::from(self.disks());
        let moved = self
            .cache
            .blocks_with_x(&self.catalog)
            .zip(next.cache.blocks_with_x(&next.catalog))
            .filter(|((_, x_old), (_, x_new))| x_old % disks != x_new % disks)
            .count() as u64;
        let stats = self.stats.take();
        *self = next;
        self.stats = stats;
        if let Some(stats) = &self.stats {
            stats.xcache_rebuilds.inc();
        }
        moved
    }

    /// Serializes the engine's entire placement state (catalog + log) to
    /// the compact [`persist`] format — everything a restarted server
    /// needs to relocate every block.
    pub fn snapshot(&self) -> Vec<u8> {
        let bytes = persist::encode(&Snapshot {
            log: self.log.clone(),
            catalog: self.catalog.clone(),
            generation: self.generation,
        });
        if let Some(stats) = &self.stats {
            stats.persist_bytes_written.add(bytes.len() as u64);
        }
        bytes
    }

    /// Rebuilds an engine from a [`Scaddar::snapshot`]. The fairness
    /// tolerance is configuration, not placement state, so it is passed
    /// fresh.
    pub fn from_snapshot(bytes: &[u8], epsilon: f64) -> Result<Self, PersistError> {
        Self::from_snapshot_with_stats(bytes, epsilon, None)
    }

    /// [`Scaddar::from_snapshot`] with metric handles attached from the
    /// start, so the restore itself is counted: bytes read, validation
    /// failures, and the X-cache rebuild.
    pub fn from_snapshot_with_stats(
        bytes: &[u8],
        epsilon: f64,
        stats: Option<Arc<EngineStats>>,
    ) -> Result<Self, PersistError> {
        if let Some(s) = &stats {
            s.persist_bytes_read.add(bytes.len() as u64);
        }
        let snap = match persist::decode(bytes) {
            Ok(snap) => snap,
            Err(e) => {
                if let Some(s) = &stats {
                    s.persist_validation_failures.inc();
                }
                return Err(e);
            }
        };
        let fairness = FairnessTracker::from_log(snap.catalog.bits(), &snap.log);
        let pipeline = RemapPipeline::compile(&snap.log);
        let cache = XCache::rebuild(&snap.catalog, &pipeline);
        if let Some(s) = &stats {
            s.xcache_rebuilds.inc();
            s.pipeline_folds.add(
                snap.catalog
                    .total_blocks()
                    .saturating_mul(snap.log.epoch() as u64),
            );
        }
        Ok(Scaddar {
            catalog: snap.catalog,
            log: snap.log,
            pipeline,
            cache,
            fairness,
            epsilon,
            // The log records the operations but not their per-plan
            // move counts, so restored engines restart RO1 accounting.
            movements: Vec::new(),
            stats,
            generation: snap.generation,
        })
    }

    /// Audits the engine's derived state (pipeline, X-cache, fairness
    /// tracker) against a from-scratch re-derivation from the only
    /// authoritative state, catalog + log. `Ok(())` when everything is
    /// in lockstep; `Err` names the first divergence.
    ///
    /// O(B·j) — this is a *testing* hook (used by the simulation
    /// harness after every step and by recovery checks), not a hot
    /// path.
    pub fn verify_derived_state(&self) -> Result<(), String> {
        if self.pipeline.epoch() != self.log.epoch() {
            return Err(format!(
                "pipeline epoch {} != log epoch {}",
                self.pipeline.epoch(),
                self.log.epoch()
            ));
        }
        if self.pipeline.current_disks() != self.log.current_disks() {
            return Err(format!(
                "pipeline disks {} != log disks {}",
                self.pipeline.current_disks(),
                self.log.current_disks()
            ));
        }
        let fresh_pipeline = RemapPipeline::compile(&self.log);
        if fresh_pipeline != self.pipeline {
            return Err("incrementally extended pipeline != recompiled pipeline".into());
        }
        if self.cache.epoch() != self.log.epoch() {
            return Err(format!(
                "x-cache epoch {} != log epoch {}",
                self.cache.epoch(),
                self.log.epoch()
            ));
        }
        let rebuilt = XCache::rebuild(&self.catalog, &self.pipeline);
        if self.cache.objects() != self.catalog.objects().len() {
            return Err(format!(
                "x-cache holds {} objects, catalog has {}",
                self.cache.objects(),
                self.catalog.objects().len()
            ));
        }
        for obj in self.catalog.objects() {
            if self.cache.xs(obj.id) != rebuilt.xs(obj.id) {
                return Err(format!("x-cache diverges from rebuild for {}", obj.id));
            }
        }
        let replayed = FairnessTracker::from_log(self.catalog.bits(), &self.log);
        if replayed != self.fairness {
            return Err(format!(
                "fairness tracker {:?} != log replay {:?}",
                self.fairness.report(),
                replayed.report()
            ));
        }
        Ok(())
    }

    /// Per-disk block counts across the whole catalog — the load census
    /// behind every balance experiment. O(B) over the cached `X_j`.
    pub fn load_distribution(&self) -> Vec<u64> {
        let disks = u64::from(self.disks());
        let mut counts = vec![0u64; disks as usize];
        for (_, x) in self.cache.blocks_with_x(&self.catalog) {
            counts[(x % disks) as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(disks: u32, blocks: u64) -> (Scaddar, ObjectId) {
        let mut s = Scaddar::new(ScaddarConfig::new(disks).with_catalog_seed(11)).unwrap();
        let id = s.add_object(blocks);
        (s, id)
    }

    #[test]
    fn locate_validates_inputs() {
        let (s, id) = engine(4, 100);
        assert!(s.locate(id, 99).is_ok());
        assert_eq!(
            s.locate(id, 100),
            Err(ScaddarError::BlockOutOfRange {
                object: id,
                block: 100,
                blocks: 100
            })
        );
        assert_eq!(
            s.locate(ObjectId(42), 0),
            Err(ScaddarError::UnknownObject(ObjectId(42)))
        );
    }

    #[test]
    fn scale_moves_minimum_and_locate_follows() {
        let (mut s, id) = engine(4, 50_000);
        let before: Vec<_> = (0..50_000).map(|b| s.locate(id, b).unwrap()).collect();
        let plan = s.scale(ScalingOp::Add { count: 1 }).unwrap();
        let after: Vec<_> = (0..50_000).map(|b| s.locate(id, b).unwrap()).collect();
        let mut observed_moves = 0;
        for b in 0..50_000usize {
            if before[b] != after[b] {
                observed_moves += 1;
                assert_eq!(after[b], DiskIndex(4), "block {b} moved to an old disk");
            }
        }
        assert_eq!(observed_moves, plan.moves.len());
    }

    #[test]
    fn load_stays_balanced_through_mixed_ops() {
        let (mut s, _) = engine(4, 2_000);
        for _ in 0..19 {
            s.add_object(2_000);
        }
        for op in [
            ScalingOp::Add { count: 2 },
            ScalingOp::remove_one(3),
            ScalingOp::Add { count: 1 },
        ] {
            s.scale(op).unwrap();
        }
        let loads = s.load_distribution();
        assert_eq!(loads.iter().sum::<u64>(), 40_000);
        let mean = 40_000.0 / loads.len() as f64;
        for (d, &l) in loads.iter().enumerate() {
            let dev = (l as f64 - mean).abs() / mean;
            assert!(dev < 0.1, "disk {d} load {l} deviates {dev:.3} from mean");
        }
    }

    #[test]
    fn fairness_guard_trips_near_paper_threshold() {
        // b=32, hovering at 8 disks, eps=5%: the §4.3 budget admits
        // sigma up to ~2^27.6; alternating remove/add multiplies sigma by
        // 7·8 per round-trip, so the guard must trip within a handful of
        // round-trips but not immediately.
        let mut s = Scaddar::new(ScaddarConfig::new(8)).unwrap();
        let mut ops = 0;
        while s.next_op_is_safe(if ops % 2 == 0 { 7 } else { 8 }) && ops < 100 {
            if ops % 2 == 0 {
                s.scale(ScalingOp::remove_one(0)).unwrap();
            } else {
                s.scale(ScalingOp::Add { count: 1 }).unwrap();
            }
            ops += 1;
        }
        assert!((4..=10).contains(&ops), "guard tripped at {ops} ops");
    }

    #[test]
    fn op_movements_record_the_ro1_audit_trail() {
        let (mut s, _) = engine(4, 10_000);
        assert!(s.op_movements().is_empty());
        let p1 = s.scale(ScalingOp::Add { count: 2 }).unwrap();
        let p2 = s.scale(ScalingOp::remove_one(1)).unwrap();
        let trail = s.op_movements();
        assert_eq!(trail.len(), 2);
        assert_eq!(trail[0].epoch, 1);
        assert_eq!((trail[0].disks_before, trail[0].disks_after), (4, 6));
        assert_eq!(trail[0].moved, p1.moves.len() as u64);
        assert_eq!(trail[0].total, p1.total_blocks);
        assert_eq!(trail[0].optimal_fraction, p1.optimal_fraction);
        assert!((trail[0].moved_fraction() - p1.moved_fraction()).abs() < 1e-15);
        assert_eq!((trail[1].disks_before, trail[1].disks_after), (6, 5));
        assert_eq!(trail[1].moved, p2.moves.len() as u64);
        // A full redistribution restarts the log and the trail with it.
        s.full_redistribution();
        assert!(s.op_movements().is_empty());
    }

    #[test]
    fn full_redistribution_resets_fairness() {
        let (mut s, _) = engine(8, 10_000);
        for _ in 0..12 {
            s.scale(ScalingOp::remove_one(0)).unwrap();
            s.scale(ScalingOp::Add { count: 1 }).unwrap();
        }
        assert!(!s.next_op_is_safe(8));
        let moved = s.full_redistribution();
        assert!(moved > 0, "a late full redistribution moves many blocks");
        assert_eq!(s.epoch(), 0);
        assert!(s.next_op_is_safe(8));
        let loads = s.load_distribution();
        assert_eq!(loads.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn next_generation_collapses_locate_to_one_hash() {
        let (mut s, id) = engine(8, 10_000);
        for _ in 0..6 {
            s.scale(ScalingOp::remove_one(0)).unwrap();
            s.scale(ScalingOp::Add { count: 1 }).unwrap();
        }
        assert_eq!(s.epoch(), 12);
        assert_eq!(s.generation(), 0);
        let next = s.open_next_generation();
        assert_eq!(next.generation(), 1);
        assert_eq!(next.epoch(), 0, "fresh log: locate is X_0 mod N again");
        assert_eq!(next.disks(), s.disks());
        assert!(next.next_op_is_safe(7), "fairness budget is full again");
        next.verify_derived_state().unwrap();
        // Same library, new placement: every block locatable, loads
        // balanced straight from X_0.
        let loads = next.load_distribution();
        assert_eq!(loads.iter().sum::<u64>(), 10_000);
        let mean = 10_000.0 / loads.len() as f64;
        for &l in &loads {
            assert!((l as f64 - mean).abs() / mean < 0.15, "{loads:?}");
        }
        // Determinism: opening the next generation twice is identical.
        let again = s.open_next_generation();
        for blk in (0..10_000).step_by(997) {
            assert_eq!(
                next.locate(id, blk).unwrap(),
                again.locate(id, blk).unwrap()
            );
        }
    }

    #[test]
    fn offline_rehash_replaces_in_place_and_counts_moves() {
        let (mut s, id) = engine(5, 8_000);
        s.scale(ScalingOp::Add { count: 2 }).unwrap();
        s.scale(ScalingOp::remove_one(1)).unwrap();
        let staged = s.open_next_generation();
        let moved = s.rehash_to_next_generation();
        assert_eq!(s.generation(), 1);
        assert_eq!(s.epoch(), 0);
        // A rehash is a near-complete reshuffle: expect ~(1 - 1/6) moved.
        let frac = moved as f64 / 8_000.0;
        assert!((frac - 5.0 / 6.0).abs() < 0.05, "moved fraction {frac}");
        // In-place result equals the staged next generation.
        for blk in (0..8_000).step_by(271) {
            assert_eq!(s.locate(id, blk).unwrap(), staged.locate(id, blk).unwrap());
        }
        s.verify_derived_state().unwrap();
        // Generations chain: the second rehash lands on generation 2
        // with yet another placement.
        s.rehash_to_next_generation();
        assert_eq!(s.generation(), 2);
    }

    #[test]
    fn generation_survives_snapshot_round_trip() {
        let (mut s, id) = engine(4, 1_000);
        s.rehash_to_next_generation();
        s.scale(ScalingOp::Add { count: 1 }).unwrap();
        let restored = Scaddar::from_snapshot(&s.snapshot(), 0.05).unwrap();
        assert_eq!(restored.generation(), 1);
        for blk in (0..1_000).step_by(97) {
            assert_eq!(
                restored.locate(id, blk).unwrap(),
                s.locate(id, blk).unwrap()
            );
        }
        // The next generation after restore matches the next generation
        // before restore (the chain is a function of placement state).
        let a = s.open_next_generation();
        let b = restored.open_next_generation();
        for blk in (0..1_000).step_by(97) {
            assert_eq!(a.locate(id, blk).unwrap(), b.locate(id, blk).unwrap());
        }
    }

    #[test]
    fn engines_are_reproducible() {
        let build = || {
            let (mut s, id) = engine(5, 1_000);
            s.scale(ScalingOp::Add { count: 2 }).unwrap();
            s.scale(ScalingOp::remove_one(1)).unwrap();
            (s, id)
        };
        let (a, id_a) = build();
        let (b, id_b) = build();
        assert_eq!(id_a, id_b);
        for blk in 0..1_000 {
            assert_eq!(a.locate(id_a, blk).unwrap(), b.locate(id_b, blk).unwrap());
        }
    }

    #[test]
    fn locate_all_matches_per_block_locate() {
        use scaddar_prng::RngKind;
        // Include the O(i)-indexed generator: the bulk path must agree
        // with the slow path for every family.
        for rng in [RngKind::SplitMix64, RngKind::XorShift64Star] {
            let mut s =
                Scaddar::new(ScaddarConfig::new(5).with_catalog_seed(3).with_rng(rng)).unwrap();
            let id = s.add_object(2_000);
            s.scale(ScalingOp::Add { count: 2 }).unwrap();
            s.scale(ScalingOp::remove_one(0)).unwrap();
            let bulk = s.locate_all(id).unwrap();
            assert_eq!(bulk.len(), 2_000);
            for (b, &d) in bulk.iter().enumerate() {
                assert_eq!(d, s.locate(id, b as u64).unwrap(), "{rng} block {b}");
            }
        }
        let s = Scaddar::new(ScaddarConfig::new(2)).unwrap();
        assert_eq!(
            s.locate_all(ObjectId(9)),
            Err(ScaddarError::UnknownObject(ObjectId(9)))
        );
    }

    #[test]
    fn snapshot_round_trips_through_bytes() {
        let (mut s, id) = engine(5, 2_000);
        s.scale(ScalingOp::Add { count: 2 }).unwrap();
        s.scale(ScalingOp::remove_one(1)).unwrap();
        let bytes = s.snapshot();
        let restored = Scaddar::from_snapshot(&bytes, 0.05).unwrap();
        assert_eq!(restored.disks(), s.disks());
        assert_eq!(restored.epoch(), s.epoch());
        for blk in (0..2_000).step_by(13) {
            assert_eq!(
                restored.locate(id, blk).unwrap(),
                s.locate(id, blk).unwrap()
            );
        }
        // Fairness state is re-derived from the log.
        assert_eq!(restored.fairness(), s.fairness());
    }

    #[test]
    fn derived_state_verifies_through_churn_and_recovery() {
        let (mut s, id) = engine(5, 1_200);
        s.verify_derived_state().unwrap();
        s.scale(ScalingOp::Add { count: 2 }).unwrap();
        s.add_object(400);
        s.scale(ScalingOp::remove_one(1)).unwrap();
        s.remove_object(id).unwrap();
        s.verify_derived_state().unwrap();
        let restored = Scaddar::from_snapshot(&s.snapshot(), 0.05).unwrap();
        restored.verify_derived_state().unwrap();
        s.full_redistribution();
        s.verify_derived_state().unwrap();
    }

    #[test]
    fn derived_state_detects_stale_cache() {
        let (mut s, _) = engine(4, 500);
        s.scale(ScalingOp::Add { count: 1 }).unwrap();
        // Sabotage: regress the cache to epoch 0 as a stale-state stand-in.
        s.cache = XCache::new();
        s.cache = XCache::rebuild(
            &s.catalog,
            &RemapPipeline::compile(&ScalingLog::new(4).unwrap()),
        );
        let err = s.verify_derived_state().unwrap_err();
        assert!(err.contains("epoch"), "unexpected diagnosis: {err}");
    }

    #[test]
    fn attached_stats_track_engine_activity() {
        use scaddar_obs::{Registry, VirtualClock};
        let registry = Registry::new();
        let clock = Arc::new(VirtualClock::new());
        let stats = EngineStats::register(&registry, clock);
        let mut s = Scaddar::new(ScaddarConfig::new(4).with_catalog_seed(5)).unwrap();
        s.attach_stats(stats.clone());
        assert!(s.stats().is_some());

        let id = s.add_object(1_000);
        for call in 0..1_025u64 {
            s.locate(id, call % 1_000).unwrap();
        }
        assert_eq!(stats.xcache_hits.get(), 1_025);
        // Mask 1023 samples calls 0 and 1024.
        assert_eq!(stats.locate_ns.snapshot().count, 2);

        s.scale(ScalingOp::Add { count: 1 }).unwrap();
        assert_eq!(stats.scale_ops.get(), 1);
        assert_eq!(stats.xcache_epoch_bumps.get(), 1);
        assert_eq!(stats.plan_blocks.get(), 1_000);
        assert_eq!(stats.scale_ns.snapshot().count, 1);
        assert_eq!(stats.plan_ns.snapshot().count, 1);

        s.trace(id, 3).unwrap();
        assert_eq!(stats.xcache_misses.get(), 1);
        s.locate_all(id).unwrap();
        s.locate_batch(id, &[1, 2, 3]).unwrap();
        assert_eq!(stats.locate_bulk_blocks.get(), 1_003);

        let bytes = s.snapshot();
        assert_eq!(stats.persist_bytes_written.get(), bytes.len() as u64);
        let restored =
            Scaddar::from_snapshot_with_stats(&bytes, 0.05, Some(stats.clone())).unwrap();
        assert!(restored.stats().is_some());
        assert_eq!(stats.persist_bytes_read.get(), bytes.len() as u64);
        assert_eq!(stats.xcache_rebuilds.get(), 1);

        // A truncated snapshot counts as a validation failure.
        assert!(Scaddar::from_snapshot_with_stats(&bytes[..4], 0.05, Some(stats.clone())).is_err());
        assert_eq!(stats.persist_validation_failures.get(), 1);

        s.full_redistribution();
        assert_eq!(stats.xcache_rebuilds.get(), 2);
    }

    #[test]
    fn bare_engine_records_nothing_and_stays_correct() {
        let (mut s, id) = engine(4, 500);
        assert!(s.stats().is_none());
        let before = s.locate(id, 7).unwrap();
        // Attaching stats must not change placement decisions.
        let registry = scaddar_obs::Registry::new();
        s.attach_stats(EngineStats::register_monotonic(&registry));
        assert_eq!(s.locate(id, 7).unwrap(), before);
        s.verify_derived_state().unwrap();
    }

    #[test]
    fn error_display_is_informative() {
        let err = ScaddarError::BlockOutOfRange {
            object: ObjectId(3),
            block: 10,
            blocks: 5,
        };
        let msg = err.to_string();
        assert!(msg.contains("object 3") && msg.contains("10") && msg.contains('5'));
    }
}
