//! The redistribution function `RF()` — planning which blocks move.
//!
//! During scaling operation `j`, `RF()` computes each block's `X_j` and
//! emits a move for every block whose disk changed (§4):
//!
//! * **addition** — all blocks are examined (cheap integer math per
//!   block), the `(N_j - N_{j-1})/N_j` fraction that remaps onto an added
//!   disk is moved;
//! * **removal** — only blocks on the removed disks move; callers that
//!   track residency (the simulator's block store) can restrict the scan
//!   accordingly, and the plan they get is identical.
//!
//! A [`MovePlan`] is pure data: applying it to actual storage is the
//! simulator's job (`cmsim::redistribute`), which is also where the
//! *online* aspects (rate limiting, bandwidth accounting) live.

use crate::address::DiskIndex;
use crate::log::{RecordAction, ScalingLog, ScalingRecord};
use crate::object::{BlockRef, Catalog};
use crate::pipeline::RemapPipeline;
use crate::remap::{remap_add, remap_remove};
use crate::stats::EngineStats;

/// One block that must change disks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMove {
    /// Which block.
    pub block: BlockRef,
    /// Its disk before the operation (pre-op logical numbering).
    pub from: DiskIndex,
    /// Its disk after the operation (post-op logical numbering).
    pub to: DiskIndex,
}

/// The complete set of moves for one scaling operation, plus censuses.
#[derive(Debug, Clone, PartialEq)]
pub struct MovePlan {
    /// Epoch the plan transitions *into* (the `j` of `REMAP_j`).
    pub target_epoch: usize,
    /// Every block that changes disks.
    pub moves: Vec<BlockMove>,
    /// Total blocks examined (`B`).
    pub total_blocks: u64,
    /// Optimal fraction `z_j` for this operation (Def. 3.4).
    pub optimal_fraction: f64,
}

impl MovePlan {
    /// Fraction of all blocks moved. RO1 requires this to be ~`z_j`.
    pub fn moved_fraction(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.moves.len() as f64 / self.total_blocks as f64
        }
    }

    /// How far above optimal the plan is, as a ratio
    /// (`1.0` = exactly optimal). The headline RO1 metric.
    pub fn overhead_ratio(&self) -> f64 {
        if self.optimal_fraction == 0.0 {
            if self.moves.is_empty() {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.moved_fraction() / self.optimal_fraction
        }
    }

    /// Census of move targets: how many blocks each destination disk
    /// receives. Indexed by post-op logical disk.
    pub fn target_census(&self, disks_after: u32) -> Vec<u64> {
        let mut counts = vec![0u64; disks_after as usize];
        for mv in &self.moves {
            counts[mv.to.0 as usize] += 1;
        }
        counts
    }

    /// Census of move sources, indexed by pre-op logical disk. Used by
    /// experiment E2 to expose the naive scheme's biased sourcing.
    pub fn source_census(&self, disks_before: u32) -> Vec<u64> {
        let mut counts = vec![0u64; disks_before as usize];
        for mv in &self.moves {
            counts[mv.from.0 as usize] += 1;
        }
        counts
    }
}

/// Movement accounting for one *applied* scaling operation: the RO1
/// numbers of a [`MovePlan`] without the per-block move list. The
/// engine retains one of these per `scale()` call
/// ([`Scaddar::op_movements`](crate::Scaddar::op_movements)) so health
/// monitors can audit the moved fraction against the optimal `z_j`
/// (Def. 3.4) after the fact, at ~40 bytes per operation instead of
/// `O(B)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMovement {
    /// Epoch the operation transitioned into (the `j` of `REMAP_j`).
    pub epoch: usize,
    /// Disk count before the operation (`N_{j-1}`).
    pub disks_before: u32,
    /// Disk count after the operation (`N_j`).
    pub disks_after: u32,
    /// Blocks the plan moved.
    pub moved: u64,
    /// Total blocks examined (`B`).
    pub total: u64,
    /// Optimal fraction `z_j` for this operation (Def. 3.4).
    pub optimal_fraction: f64,
}

impl OpMovement {
    /// Summarizes a plan, recording the disk counts it transitioned
    /// between.
    pub fn from_plan(plan: &MovePlan, disks_before: u32, disks_after: u32) -> Self {
        OpMovement {
            epoch: plan.target_epoch,
            disks_before,
            disks_after,
            moved: plan.moves.len() as u64,
            total: plan.total_blocks,
            optimal_fraction: plan.optimal_fraction,
        }
    }

    /// Fraction of all blocks moved (cf. [`MovePlan::moved_fraction`]).
    pub fn moved_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.moved as f64 / self.total as f64
        }
    }
}

/// Plans the moves for the *last* operation in `log`, given the catalog.
///
/// The log must already contain the operation (push first, then plan);
/// this keeps a single source of truth for epochs. For each block the
/// chain `X_0 … X_{j-1}` is recomputed and the final record applied —
/// `O(B·j)` total. [`plan_last_op_with_x`] is the `O(B)` variant for
/// callers that cache `X_{j-1}`.
///
/// # Panics
/// If the log has no operations.
pub fn plan_last_op(catalog: &Catalog, log: &ScalingLog) -> MovePlan {
    let j = log.epoch();
    assert!(j > 0, "log has no scaling operation to plan");
    let prefix: Vec<&ScalingRecord> = log.records()[..j - 1].iter().collect();
    let record = &log.records()[j - 1];
    let x_prev_of = |x0: u64| {
        prefix.iter().fold(x0, |x, r| match r.action() {
            RecordAction::Added { .. } => {
                remap_add(x, u64::from(r.disks_before()), u64::from(r.disks_after())).x
            }
            RecordAction::Removed(set) => remap_remove(x, u64::from(r.disks_before()), set).x,
        })
    };
    plan_from_x_prev(
        catalog
            .iter_x0()
            .map(|(blockref, x0)| (blockref, x_prev_of(x0))),
        record,
        j,
    )
}

/// Parallel `RF()`: the same plan as [`plan_last_op`], computed by up
/// to `threads` scoped worker threads.
///
/// The catalog's flattened block index space is split into one
/// contiguous span per thread; each worker seeks into the random
/// streams with [`Catalog::iter_x0_range`], folds `X_0 → X_{j-1}`
/// through a compiled prefix [`RemapPipeline`] in cache-sized batches
/// ([`RemapPipeline::fold_batch`], step-outer/block-inner), applies the
/// final record, and emits a partial plan. Partial move lists are
/// concatenated in span order — which *is* catalog order — so the
/// result is equal to the serial plan, moves and censuses included.
///
/// Spans shorter than [`MIN_SPAN_PER_THREAD`] blocks are not worth a
/// thread: the requested thread count is clamped so no span falls below
/// it, and the single-thread case runs the same compiled batch-fold
/// inline with no spawn/join at all — `threads == 1` is the *fast*
/// serial path, beating [`plan_last_op`]'s record-by-record reference
/// fold rather than delegating to it.
///
/// # Panics
/// If the log has no operations.
pub fn plan_last_op_parallel(catalog: &Catalog, log: &ScalingLog, threads: usize) -> MovePlan {
    plan_parallel_inner(catalog, log, threads, None)
}

/// [`plan_last_op_parallel`] recording telemetry: overall planning
/// latency and block count into `stats.plan_ns` / `stats.plan_blocks`,
/// and each worker's span duration into `stats.plan_chunk_ns` — the
/// chunk histogram's spread is the planner's load-imbalance signal.
///
/// # Panics
/// If the log has no operations.
pub fn plan_last_op_parallel_instrumented(
    catalog: &Catalog,
    log: &ScalingLog,
    threads: usize,
    stats: &EngineStats,
) -> MovePlan {
    plan_parallel_inner(catalog, log, threads, Some(stats))
}

/// Smallest span worth a planner thread. Below this the batch fold
/// finishes in tens of microseconds and spawn/join overhead plus the
/// partial-plan merge cost more than the parallelism buys; the clamp
/// in [`plan_parallel_inner`] also sends small catalogs down the
/// inline single-thread path.
pub const MIN_SPAN_PER_THREAD: u64 = 8_192;

/// Blocks batch-folded per [`RemapPipeline::fold_batch`] call on the
/// planning path: 4096 × 8 B = 32 KiB of `X` values — comfortably L1
/// resident alongside the step constants, big enough to amortize the
/// step-outer loop.
const PLAN_FOLD_CHUNK: usize = 4_096;

/// Iterator adapter that folds `X_0 → X_{j-1}` through a compiled
/// prefix pipeline in [`PLAN_FOLD_CHUNK`]-sized batches while yielding
/// `(BlockRef, X_{j-1})` pairs one at a time — the glue that lets the
/// streaming [`plan_from_x_prev`] consume the step-outer/block-inner
/// bulk fold without materializing a whole span.
struct BatchFolded<'a, I> {
    inner: I,
    prefix: &'a RemapPipeline,
    buf: Vec<(BlockRef, u64)>,
    xs: Vec<u64>,
    pos: usize,
}

impl<'a, I: Iterator<Item = (BlockRef, u64)>> BatchFolded<'a, I> {
    fn new(inner: I, prefix: &'a RemapPipeline) -> Self {
        BatchFolded {
            inner,
            prefix,
            buf: Vec::with_capacity(PLAN_FOLD_CHUNK),
            xs: Vec::with_capacity(PLAN_FOLD_CHUNK),
            pos: 0,
        }
    }
}

impl<I: Iterator<Item = (BlockRef, u64)>> Iterator for BatchFolded<'_, I> {
    type Item = (BlockRef, u64);

    fn next(&mut self) -> Option<(BlockRef, u64)> {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.xs.clear();
            self.pos = 0;
            while self.buf.len() < PLAN_FOLD_CHUNK {
                match self.inner.next() {
                    Some((blockref, x0)) => {
                        self.buf.push((blockref, 0));
                        self.xs.push(x0);
                    }
                    None => break,
                }
            }
            if self.buf.is_empty() {
                return None;
            }
            self.prefix.fold_batch(&mut self.xs);
            for (slot, &x) in self.buf.iter_mut().zip(&self.xs) {
                slot.1 = x;
            }
        }
        let item = self.buf[self.pos];
        self.pos += 1;
        Some(item)
    }
}

fn plan_parallel_inner(
    catalog: &Catalog,
    log: &ScalingLog,
    threads: usize,
    stats: Option<&EngineStats>,
) -> MovePlan {
    let j = log.epoch();
    assert!(j > 0, "log has no scaling operation to plan");
    let plan_start = stats.map(|s| s.clock.now_ns());
    let total = catalog.total_blocks();
    let threads = threads
        .max(1)
        .min(total.div_ceil(MIN_SPAN_PER_THREAD).max(1) as usize);
    let prefix = RemapPipeline::compile_prefix(log, j - 1);
    let record = &log.records()[j - 1];
    let merged = if threads == 1 {
        // Inline fast path: same compiled batch fold, no spawn/join.
        let chunk_start = stats.map(|s| s.clock.now_ns());
        let merged = plan_from_x_prev(BatchFolded::new(catalog.iter_x0(), &prefix), record, j);
        if let (Some(s), Some(t0)) = (stats, chunk_start) {
            s.plan_chunk_ns.record(s.clock.now_ns().saturating_sub(t0));
        }
        merged
    } else {
        let chunk = total.div_ceil(threads as u64);
        let partials: Vec<MovePlan> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..threads as u64)
                .map(|t| {
                    let start = t * chunk;
                    // With few blocks, ceil-sized chunks can exhaust the
                    // catalog before the last thread: its span is empty.
                    let len = chunk.min(total.saturating_sub(start));
                    let prefix = &prefix;
                    scope.spawn(move |_| {
                        let chunk_start = stats.map(|s| s.clock.now_ns());
                        let partial = plan_from_x_prev(
                            BatchFolded::new(catalog.iter_x0_range(start, len), prefix),
                            record,
                            j,
                        );
                        if let (Some(s), Some(t0)) = (stats, chunk_start) {
                            s.plan_chunk_ns.record(s.clock.now_ns().saturating_sub(t0));
                        }
                        partial
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("planner worker panicked"))
                .collect()
        })
        .expect("planner scope joins cleanly");
        let mut merged = MovePlan {
            target_epoch: j,
            moves: Vec::with_capacity(partials.iter().map(|p| p.moves.len()).sum()),
            total_blocks: 0,
            optimal_fraction: record.optimal_move_fraction(),
        };
        for partial in partials {
            merged.moves.extend(partial.moves);
            merged.total_blocks += partial.total_blocks;
        }
        merged
    };
    if let (Some(s), Some(t0)) = (stats, plan_start) {
        s.plan_ns.record(s.clock.now_ns().saturating_sub(t0));
        s.plan_blocks.add(merged.total_blocks);
        // Each worker folded its span X_0 → X_{j-1}, then applied the
        // final record: j steps per block in total.
        s.pipeline_folds
            .add(merged.total_blocks.saturating_mul(j as u64));
    }
    merged
}

/// Plans the moves for the last operation given each block's *current*
/// random number `X_{j-1}` (e.g. from the simulator's residency store).
pub fn plan_last_op_with_x<I>(blocks_with_x_prev: I, log: &ScalingLog) -> MovePlan
where
    I: IntoIterator<Item = (BlockRef, u64)>,
{
    let j = log.epoch();
    assert!(j > 0, "log has no scaling operation to plan");
    plan_from_x_prev(blocks_with_x_prev, &log.records()[j - 1], j)
}

fn plan_from_x_prev<I>(blocks: I, record: &ScalingRecord, target_epoch: usize) -> MovePlan
where
    I: IntoIterator<Item = (BlockRef, u64)>,
{
    let n_prev = u64::from(record.disks_before());
    let n_new = u64::from(record.disks_after());
    let mut moves = Vec::new();
    let mut total = 0u64;
    for (blockref, x_prev) in blocks {
        total += 1;
        let from = DiskIndex((x_prev % n_prev) as u32);
        let out = match record.action() {
            RecordAction::Added { .. } => remap_add(x_prev, n_prev, n_new),
            RecordAction::Removed(set) => remap_remove(x_prev, n_prev, set),
        };
        if out.moved {
            moves.push(BlockMove {
                block: blockref,
                from,
                to: DiskIndex((out.x % n_new) as u32),
            });
        }
    }
    MovePlan {
        target_epoch,
        moves,
        total_blocks: total,
        optimal_fraction: record.optimal_move_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ScalingOp;
    use scaddar_prng::{Bits, RngKind};

    fn setup(blocks: u64) -> (Catalog, ScalingLog) {
        let mut catalog = Catalog::new(RngKind::SplitMix64, Bits::B32, 7);
        catalog.add_object(blocks);
        let log = ScalingLog::new(4).unwrap();
        (catalog, log)
    }

    #[test]
    fn addition_plan_moves_near_optimal_fraction() {
        let (catalog, mut log) = setup(100_000);
        log.push(&ScalingOp::Add { count: 1 }).unwrap();
        let plan = plan_last_op(&catalog, &log);
        assert_eq!(plan.total_blocks, 100_000);
        assert_eq!(plan.target_epoch, 1);
        assert!((plan.optimal_fraction - 0.2).abs() < 1e-12);
        // Statistical: the binomial fraction should be within ~1% of z_j.
        assert!(
            (plan.moved_fraction() - 0.2).abs() < 0.01,
            "moved {}",
            plan.moved_fraction()
        );
        // Every move must target the added disk (index 4).
        assert!(plan.moves.iter().all(|m| m.to == DiskIndex(4)));
    }

    #[test]
    fn removal_plan_moves_exactly_the_victims_blocks() {
        let (catalog, mut log) = setup(50_000);
        // Locate blocks on disk 2 before the removal.
        let n0 = 4u64;
        let on_victim: u64 = catalog.iter_x0().filter(|(_, x0)| x0 % n0 == 2).count() as u64;
        log.push(&ScalingOp::remove_one(2)).unwrap();
        let plan = plan_last_op(&catalog, &log);
        assert_eq!(plan.moves.len() as u64, on_victim);
        assert!(plan.moves.iter().all(|m| m.from == DiskIndex(2)));
        // Targets are post-op indices 0..3, roughly uniform.
        let census = plan.target_census(3);
        let min = *census.iter().min().unwrap() as f64;
        let max = *census.iter().max().unwrap() as f64;
        assert!(max / min < 1.15, "skewed removal targets {census:?}");
    }

    #[test]
    fn cached_x_variant_agrees_with_full_recompute() {
        let (catalog, mut log) = setup(10_000);
        log.push(&ScalingOp::Add { count: 2 }).unwrap();
        log.push(&ScalingOp::remove_one(3)).unwrap();
        // Plan op 2 both ways.
        let full = plan_last_op(&catalog, &log);
        let mut one_op_log = ScalingLog::new(4).unwrap();
        one_op_log.push(&ScalingOp::Add { count: 2 }).unwrap();
        let cached: Vec<_> = catalog
            .iter_x0()
            .map(|(r, x0)| (r, crate::address::x_at_current_epoch(x0, &one_op_log)))
            .collect();
        let incremental = plan_last_op_with_x(cached, &log);
        assert_eq!(full, incremental);
    }

    #[test]
    fn parallel_plan_equals_serial_plan() {
        // Total is comfortably past MIN_SPAN_PER_THREAD so the span
        // split (not just the inline single-thread path) is exercised.
        let mut catalog = Catalog::new(RngKind::SplitMix64, Bits::B32, 7);
        catalog.add_object(15_000);
        catalog.add_object(1);
        catalog.add_object(9_000);
        let mut log = ScalingLog::new(4).unwrap();
        for op in [
            ScalingOp::Add { count: 2 },
            ScalingOp::remove_one(1),
            ScalingOp::Add { count: 1 },
        ] {
            log.push(&op).unwrap();
            let serial = plan_last_op(&catalog, &log);
            for threads in [1, 2, 3, 7, 64] {
                let parallel = plan_last_op_parallel(&catalog, &log, threads);
                assert_eq!(parallel, serial, "threads={threads} epoch={}", log.epoch());
            }
        }
    }

    /// Regression: with `total < chunk * (threads - 1)` (e.g. 5 blocks
    /// over 4 ceil-sized chunks of 2) the last thread's span start lands
    /// past the catalog and its length must clamp to zero, not
    /// underflow. Found by the simulation harness shrinking catalogs
    /// down to a handful of blocks.
    #[test]
    fn parallel_plan_handles_tiny_catalogs() {
        for blocks in 1..=9u64 {
            let mut catalog = Catalog::new(RngKind::SplitMix64, Bits::B32, 7);
            catalog.add_object(blocks);
            let mut log = ScalingLog::new(4).unwrap();
            log.push(&ScalingOp::Add { count: 1 }).unwrap();
            let serial = plan_last_op(&catalog, &log);
            for threads in 2..=6 {
                assert_eq!(
                    plan_last_op_parallel(&catalog, &log, threads),
                    serial,
                    "blocks={blocks} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn instrumented_parallel_plan_matches_and_records() {
        use scaddar_obs::{Registry, VirtualClock};
        use std::sync::Arc;
        let (catalog, mut log) = setup(4_000);
        log.push(&ScalingOp::Add { count: 1 }).unwrap();
        let registry = Registry::new();
        let stats = EngineStats::register(&registry, Arc::new(VirtualClock::new()));
        let instrumented = plan_last_op_parallel_instrumented(&catalog, &log, 4, &stats);
        assert_eq!(instrumented, plan_last_op_parallel(&catalog, &log, 4));
        assert_eq!(stats.plan_blocks.get(), 4_000);
        assert_eq!(stats.plan_ns.snapshot().count, 1);
        // 4 000 blocks is below MIN_SPAN_PER_THREAD: the clamp sends
        // the whole catalog down the inline path as one chunk.
        assert_eq!(stats.plan_chunk_ns.snapshot().count, 1);
        // j = 1: one fold per block.
        assert_eq!(stats.pipeline_folds.get(), 4_000);
    }

    #[test]
    fn instrumented_parallel_plan_splits_large_catalogs() {
        use scaddar_obs::{Registry, VirtualClock};
        use std::sync::Arc;
        let (catalog, mut log) = setup(40_000);
        log.push(&ScalingOp::Add { count: 1 }).unwrap();
        let registry = Registry::new();
        let stats = EngineStats::register(&registry, Arc::new(VirtualClock::new()));
        let instrumented = plan_last_op_parallel_instrumented(&catalog, &log, 4, &stats);
        assert_eq!(instrumented, plan_last_op(&catalog, &log));
        // 40 000 / 8 192 rounds up to 5 ≥ 4: all four workers spin up,
        // each recording its span.
        assert_eq!(stats.plan_chunk_ns.snapshot().count, 4);
        assert_eq!(stats.plan_blocks.get(), 40_000);
    }

    #[test]
    fn parallel_plan_handles_empty_catalog() {
        let catalog = Catalog::new(RngKind::SplitMix64, Bits::B32, 7);
        let mut log = ScalingLog::new(2).unwrap();
        log.push(&ScalingOp::Add { count: 1 }).unwrap();
        let plan = plan_last_op_parallel(&catalog, &log, 8);
        assert_eq!(plan, plan_last_op(&catalog, &log));
    }

    #[test]
    fn overhead_ratio_is_near_one_for_scaddar() {
        let (catalog, mut log) = setup(200_000);
        log.push(&ScalingOp::Add { count: 4 }).unwrap();
        let plan = plan_last_op(&catalog, &log);
        assert!((plan.overhead_ratio() - 1.0).abs() < 0.05);
    }

    #[test]
    fn empty_catalog_yields_empty_plan() {
        let catalog = Catalog::new(RngKind::SplitMix64, Bits::B32, 7);
        let mut log = ScalingLog::new(2).unwrap();
        log.push(&ScalingOp::Add { count: 1 }).unwrap();
        let plan = plan_last_op(&catalog, &log);
        assert_eq!(plan.total_blocks, 0);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.moved_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "no scaling operation")]
    fn planning_without_op_panics() {
        let (catalog, log) = setup(10);
        let _ = plan_last_op(&catalog, &log);
    }
}
