//! Durable encoding of SCADDAR's metadata.
//!
//! The entire placement state of a server is the catalog (object seeds
//! and sizes) plus the scaling log — the paper's storage argument (§1,
//! Appendix A). For that argument to hold operationally, the metadata
//! must actually survive restarts, so this module defines a compact,
//! versioned, self-checking binary encoding for both.
//!
//! Format (little-endian, varint = LEB128):
//!
//! ```text
//! magic "SCDR" | version u8 | generation varint (v2+) |
//! log:     initial_disks varint | record count varint |
//!          per record: tag u8 (0=add, 1=remove) |
//!                      add: count varint
//!                      remove: k varint, k ascending varint indices
//! catalog: rng tag u8 | bits u8 | catalog_seed u64 | next_id varint |
//!          object count varint |
//!          per object: id varint | seed u64 | blocks varint
//! crc32 of everything above
//! ```
//!
//! Decoding validates structurally (every record is re-validated through
//! [`ScalingLog::push`]) and by checksum, so a truncated or bit-flipped
//! snapshot is rejected rather than silently mislocating every block.
//!
//! Version history: v1 predates rehash compaction; v2 adds the placement
//! generation right after the version byte. v1 snapshots still decode
//! (as generation 0); encoding always writes v2.

use crate::error::ScalingError;
use crate::log::{RecordAction, ScalingLog};
use crate::object::{Catalog, CmObject, ObjectId};
use scaddar_prng::{Bits, RngKind};

/// Errors from decoding a metadata snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unknown format version.
    UnknownVersion(u8),
    /// Input ended mid-field.
    Truncated,
    /// A varint ran past 64 bits.
    VarintOverflow,
    /// Unknown enum tag in the stream.
    BadTag(u8),
    /// Checksum mismatch (corruption).
    ChecksumMismatch,
    /// Trailing bytes after the checksum.
    TrailingBytes,
    /// The stream decoded structurally but described an invalid history.
    InvalidHistory(ScalingError),
    /// An invalid bit width.
    BadBits(u8),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a SCADDAR metadata snapshot"),
            PersistError::UnknownVersion(v) => write!(f, "unknown snapshot version {v}"),
            PersistError::Truncated => write!(f, "snapshot truncated"),
            PersistError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            PersistError::BadTag(t) => write!(f, "unknown tag {t}"),
            PersistError::ChecksumMismatch => write!(f, "checksum mismatch — snapshot corrupted"),
            PersistError::TrailingBytes => write!(f, "trailing bytes after snapshot"),
            PersistError::InvalidHistory(e) => write!(f, "snapshot describes invalid history: {e}"),
            PersistError::BadBits(b) => write!(f, "invalid bit width {b}"),
        }
    }
}

impl std::error::Error for PersistError {}

const MAGIC: &[u8; 4] = b"SCDR";
const VERSION: u8 = 2;
/// The oldest format version [`decode`] still accepts.
const OLDEST_SUPPORTED_VERSION: u8 = 1;

/// A complete placement-metadata snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The scaling log.
    pub log: ScalingLog,
    /// The object catalog.
    pub catalog: Catalog,
    /// The placement generation (0 for pre-compaction v1 snapshots).
    pub generation: u64,
}

// --- primitives ---------------------------------------------------------

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, PersistError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(PersistError::Truncated)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(PersistError::VarintOverflow);
        }
        out |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, PersistError> {
    let end = pos.checked_add(8).ok_or(PersistError::Truncated)?;
    let bytes = buf.get(*pos..end).ok_or(PersistError::Truncated)?;
    *pos = end;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8, PersistError> {
    let &b = buf.get(*pos).ok_or(PersistError::Truncated)?;
    *pos += 1;
    Ok(b)
}

/// CRC-32 (IEEE 802.3, reflected), table-free bitwise variant — metadata
/// snapshots are small, so simplicity beats a 1 KiB table.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn rng_tag(kind: RngKind) -> u8 {
    match kind {
        RngKind::SplitMix64 => 0,
        RngKind::Lcg64 => 1,
        RngKind::Pcg64 => 2,
        RngKind::XorShift64Star => 3,
        RngKind::Philox4x32 => 4,
    }
}

fn rng_from_tag(tag: u8) -> Result<RngKind, PersistError> {
    Ok(match tag {
        0 => RngKind::SplitMix64,
        1 => RngKind::Lcg64,
        2 => RngKind::Pcg64,
        3 => RngKind::XorShift64Star,
        4 => RngKind::Philox4x32,
        t => return Err(PersistError::BadTag(t)),
    })
}

// --- encode --------------------------------------------------------------

/// Encodes a snapshot.
pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    put_varint(&mut buf, snapshot.generation);

    // Log.
    put_varint(&mut buf, u64::from(snapshot.log.initial_disks()));
    put_varint(&mut buf, snapshot.log.records().len() as u64);
    for record in snapshot.log.records() {
        match record.action() {
            RecordAction::Added { count } => {
                buf.push(0);
                put_varint(&mut buf, u64::from(*count));
            }
            RecordAction::Removed(set) => {
                buf.push(1);
                put_varint(&mut buf, set.indices().len() as u64);
                for &d in set.indices() {
                    put_varint(&mut buf, u64::from(d));
                }
            }
        }
    }

    // Catalog.
    buf.push(rng_tag(snapshot.catalog.rng_kind()));
    buf.push(snapshot.catalog.bits().get());
    put_u64(&mut buf, snapshot.catalog.catalog_seed());
    put_varint(&mut buf, snapshot.catalog.next_object_id());
    put_varint(&mut buf, snapshot.catalog.objects().len() as u64);
    for obj in snapshot.catalog.objects() {
        put_varint(&mut buf, obj.id.0);
        put_u64(&mut buf, obj.seed);
        put_varint(&mut buf, obj.blocks);
    }

    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

// --- decode --------------------------------------------------------------

/// Decodes and fully validates a snapshot.
pub fn decode(data: &[u8]) -> Result<Snapshot, PersistError> {
    if data.len() < 4 + 1 + 4 {
        return Err(if data.get(..4) == Some(MAGIC.as_slice()) {
            PersistError::Truncated
        } else {
            PersistError::BadMagic
        });
    }
    if &data[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(PersistError::ChecksumMismatch);
    }

    let mut pos = 4usize;
    let version = get_u8(body, &mut pos)?;
    if !(OLDEST_SUPPORTED_VERSION..=VERSION).contains(&version) {
        return Err(PersistError::UnknownVersion(version));
    }
    // v1 predates compaction: every v1 snapshot is generation 0.
    let generation = if version >= 2 {
        get_varint(body, &mut pos)?
    } else {
        0
    };

    // Log, re-validated operation by operation.
    let initial =
        u32::try_from(get_varint(body, &mut pos)?).map_err(|_| PersistError::VarintOverflow)?;
    let mut log = ScalingLog::new(initial).map_err(PersistError::InvalidHistory)?;
    let records = get_varint(body, &mut pos)?;
    for _ in 0..records {
        let tag = get_u8(body, &mut pos)?;
        let op = match tag {
            0 => {
                let count = u32::try_from(get_varint(body, &mut pos)?)
                    .map_err(|_| PersistError::VarintOverflow)?;
                crate::ops::ScalingOp::Add { count }
            }
            1 => {
                let k = get_varint(body, &mut pos)?;
                let mut disks = Vec::with_capacity(k as usize);
                for _ in 0..k {
                    disks.push(
                        u32::try_from(get_varint(body, &mut pos)?)
                            .map_err(|_| PersistError::VarintOverflow)?,
                    );
                }
                crate::ops::ScalingOp::Remove { disks }
            }
            t => return Err(PersistError::BadTag(t)),
        };
        log.push(&op).map_err(PersistError::InvalidHistory)?;
    }

    // Catalog.
    let kind = rng_from_tag(get_u8(body, &mut pos)?)?;
    let bits_raw = get_u8(body, &mut pos)?;
    let bits = Bits::new(bits_raw).ok_or(PersistError::BadBits(bits_raw))?;
    let catalog_seed = get_u64(body, &mut pos)?;
    let next_id = get_varint(body, &mut pos)?;
    let objects = get_varint(body, &mut pos)?;
    let mut restored = Vec::with_capacity(objects as usize);
    for _ in 0..objects {
        let id = ObjectId(get_varint(body, &mut pos)?);
        let seed = get_u64(body, &mut pos)?;
        let blocks = get_varint(body, &mut pos)?;
        restored.push(CmObject { id, seed, blocks });
    }
    let catalog = Catalog::restore(kind, bits, catalog_seed, restored, next_id);

    if pos != body.len() {
        return Err(PersistError::TrailingBytes);
    }
    Ok(Snapshot {
        log,
        catalog,
        generation,
    })
}

/// Decode-and-discard: `Ok(())` iff `data` is a byte-exact valid
/// snapshot. The crash-recovery hook used to pick the latest valid
/// snapshot (e.g. by the simulation harness) without keeping the
/// decoded state.
pub fn validate(data: &[u8]) -> Result<(), PersistError> {
    decode(data).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ScalingOp;
    use proptest::prelude::*;

    fn sample_snapshot() -> Snapshot {
        let mut log = ScalingLog::new(4).unwrap();
        log.push(&ScalingOp::Add { count: 2 }).unwrap();
        log.push(&ScalingOp::Remove { disks: vec![1, 4] }).unwrap();
        log.push(&ScalingOp::Add { count: 1 }).unwrap();
        let mut catalog = Catalog::new(RngKind::Pcg64, Bits::B32, 0xFACE);
        catalog.add_object(10_000);
        catalog.add_object(25);
        let first = catalog.objects()[0].id;
        catalog.remove_object(first).unwrap();
        catalog.add_object(7);
        Snapshot {
            log,
            catalog,
            generation: 3,
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let snap = sample_snapshot();
        let bytes = encode(&snap);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.log, snap.log);
        assert_eq!(back.generation, snap.generation);
        assert_eq!(back.catalog.rng_kind(), snap.catalog.rng_kind());
        assert_eq!(back.catalog.bits(), snap.catalog.bits());
        assert_eq!(back.catalog.objects(), snap.catalog.objects());
        // Id allocation continues where it left off (no id reuse).
        let mut a = snap.catalog.clone();
        let mut b = back.catalog.clone();
        assert_eq!(a.add_object(1), b.add_object(1));
    }

    #[test]
    fn round_trip_preserves_placement() {
        let snap = sample_snapshot();
        let back = decode(&encode(&snap)).unwrap();
        for obj in snap.catalog.objects() {
            let restored = back.catalog.object(obj.id).unwrap();
            for blk in 0..obj.blocks.min(500) {
                let x_orig = snap.catalog.x0(obj, blk);
                let x_back = back.catalog.x0(restored, blk);
                assert_eq!(x_orig, x_back);
                assert_eq!(
                    crate::address::locate(x_orig, &snap.log),
                    crate::address::locate(x_back, &back.log)
                );
            }
        }
    }

    #[test]
    fn snapshot_is_compact() {
        let bytes = encode(&sample_snapshot());
        // 3 ops + 3 objects: well under 200 bytes.
        assert!(bytes.len() < 200, "snapshot is {} bytes", bytes.len());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(
            decode(b"NOPEnope-nope"),
            Err(PersistError::BadMagic)
        ));
        // Valid magic, bumped version.
        let mut bytes = encode(&sample_snapshot());
        bytes[4] = 99;
        let fixed_crc = crc32(&bytes[..bytes.len() - 4]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&fixed_crc.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(PersistError::UnknownVersion(99))
        ));
    }

    /// Re-encodes `snap` as a v1 byte stream (no generation field) —
    /// what a pre-compaction build would have written.
    fn encode_as_v1(snap: &Snapshot) -> Vec<u8> {
        let mut bytes = encode(snap);
        // The generation varint of a generation-0 snapshot is the
        // single byte right after the version byte; drop it and rewrite
        // version + checksum.
        assert_eq!(snap.generation, 0, "v1 can only express generation 0");
        assert_eq!(bytes[5], 0);
        bytes.remove(5);
        bytes[4] = 1;
        let n = bytes.len();
        let fixed_crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&fixed_crc.to_le_bytes());
        bytes
    }

    #[test]
    fn decodes_legacy_v1_snapshots_as_generation_zero() {
        let mut snap = sample_snapshot();
        snap.generation = 0;
        let v1 = encode_as_v1(&snap);
        let back = decode(&v1).unwrap();
        assert_eq!(back.generation, 0);
        assert_eq!(back.log, snap.log);
        assert_eq!(back.catalog.objects(), snap.catalog.objects());
        // The v1 bytes still fail on corruption like any other stream.
        let mut bad = v1.clone();
        bad[8] ^= 0x10;
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn rejects_corruption_everywhere() {
        let bytes = encode(&sample_snapshot());
        // Flip every single byte in turn: decode must never succeed with
        // different content, and must never panic.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match decode(&bad) {
                Err(_) => {}
                Ok(snap) => {
                    // A collision would require beating CRC32 with a
                    // 1-byte flip — impossible; any Ok must equal input.
                    let orig = decode(&bytes).unwrap();
                    assert_eq!(snap.log, orig.log, "silent corruption at byte {i}");
                }
            }
        }
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode(&sample_snapshot());
        for len in 0..bytes.len() {
            assert!(
                decode(&bytes[..len]).is_err(),
                "accepted truncation at {len}"
            );
        }
    }

    #[test]
    fn crc32_known_answer() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    proptest! {
        #[test]
        fn prop_varint_round_trips(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode(&bytes);
        }

        #[test]
        fn prop_random_histories_round_trip(
            initial in 1u32..16,
            adds in proptest::collection::vec(1u32..4, 0..6),
            seed in any::<u64>(),
        ) {
            let mut log = ScalingLog::new(initial).unwrap();
            for count in adds {
                log.push(&ScalingOp::Add { count }).unwrap();
            }
            let mut catalog = Catalog::new(RngKind::SplitMix64, Bits::B64, seed);
            catalog.add_object(seed % 1_000);
            let snap = Snapshot { log, catalog, generation: seed % 5 };
            let back = decode(&encode(&snap)).unwrap();
            prop_assert_eq!(back.log, snap.log);
            prop_assert_eq!(back.generation, snap.generation);
            prop_assert_eq!(back.catalog.objects(), snap.catalog.objects());
        }
    }
}
