//! The scaling log — SCADDAR's only persistent metadata.
//!
//! The paper's key storage claim: instead of a directory with one entry
//! per block (millions of entries), the server records only the *scaling
//! operations themselves* — "a storage structure for recording scaling
//! operations, which is significantly less than the number of all block
//! locations" (§1). Every block location at every epoch is a pure function
//! of (object seed, block index, this log).
//!
//! Epoch terminology: epoch `0` is the initial state with `N_0` disks;
//! operation `j` (1-based) transitions the server from `N_{j-1}` to `N_j`
//! disks. [`ScalingLog::epoch`] equals the number of operations applied.

use crate::error::ScalingError;
use crate::ops::{RemovedSet, ScalingOp};

/// What operation `j` did, in validated, query-friendly form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordAction {
    /// `count` disks were appended (logical indices `N_{j-1}..N_j`).
    Added {
        /// Size of the added group.
        count: u32,
    },
    /// The listed disks were removed and survivors renumbered by rank.
    Removed(RemovedSet),
}

/// One applied scaling operation, with the disk counts on both sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalingRecord {
    action: RecordAction,
    disks_before: u32,
    disks_after: u32,
}

impl ScalingRecord {
    /// The operation, in validated form.
    pub fn action(&self) -> &RecordAction {
        &self.action
    }

    /// `N_{j-1}`: disks before this operation.
    pub fn disks_before(&self) -> u32 {
        self.disks_before
    }

    /// `N_j`: disks after this operation.
    pub fn disks_after(&self) -> u32 {
        self.disks_after
    }

    /// Optimal moved fraction `z_j` for this operation (Def. 3.4 RO1):
    /// `(N_j - N_{j-1})/N_j` for additions, `(N_{j-1} - N_j)/N_{j-1}`
    /// for removals.
    pub fn optimal_move_fraction(&self) -> f64 {
        let before = f64::from(self.disks_before);
        let after = f64::from(self.disks_after);
        if after > before {
            (after - before) / after
        } else {
            (before - after) / before
        }
    }
}

/// The append-only log of scaling operations since server creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalingLog {
    initial_disks: u32,
    records: Vec<ScalingRecord>,
}

impl ScalingLog {
    /// Starts a log for a server created with `initial_disks` (`N_0 >= 1`).
    pub fn new(initial_disks: u32) -> Result<Self, ScalingError> {
        if initial_disks == 0 {
            return Err(ScalingError::NoInitialDisks);
        }
        Ok(ScalingLog {
            initial_disks,
            records: Vec::new(),
        })
    }

    /// `N_0`.
    pub fn initial_disks(&self) -> u32 {
        self.initial_disks
    }

    /// The current epoch `j` (number of operations applied).
    pub fn epoch(&self) -> usize {
        self.records.len()
    }

    /// `N_j` for the current epoch.
    pub fn current_disks(&self) -> u32 {
        self.records
            .last()
            .map_or(self.initial_disks, ScalingRecord::disks_after)
    }

    /// `N_e` for an arbitrary epoch `0 <= e <= epoch()`.
    ///
    /// # Panics
    /// If `e > epoch()`.
    pub fn disks_at(&self, e: usize) -> u32 {
        assert!(e <= self.epoch(), "epoch {e} is in the future");
        if e == 0 {
            self.initial_disks
        } else {
            self.records[e - 1].disks_after()
        }
    }

    /// The applied operations, oldest first.
    pub fn records(&self) -> &[ScalingRecord] {
        &self.records
    }

    /// Validates and appends operation `j = epoch() + 1`.
    ///
    /// Returns the stored record. On error the log is unchanged.
    pub fn push(&mut self, op: &ScalingOp) -> Result<&ScalingRecord, ScalingError> {
        let disks_before = self.current_disks();
        let disks_after = op.disks_after(disks_before)?;
        let action = match op {
            ScalingOp::Add { count } => RecordAction::Added { count: *count },
            ScalingOp::Remove { disks } => {
                RecordAction::Removed(RemovedSet::new(disks, disks_before)?)
            }
        };
        self.records.push(ScalingRecord {
            action,
            disks_before,
            disks_after,
        });
        Ok(self.records.last().expect("just pushed"))
    }

    /// Disk counts `N_0, N_1, …, N_j` — the sequence §4.3's `sigma`
    /// product and the rule-of-thumb average are computed over.
    pub fn disk_counts(&self) -> Vec<u32> {
        let mut counts = Vec::with_capacity(self.epoch() + 1);
        counts.push(self.initial_disks);
        counts.extend(self.records.iter().map(ScalingRecord::disks_after));
        counts
    }

    /// The metadata footprint of the log in bytes, as reported by the
    /// storage-overhead experiment (directory vs log comparison).
    pub fn metadata_bytes(&self) -> usize {
        // One u32 per removal index plus two u32 per record plus the
        // header; a deliberately simple accounting model matching what a
        // compact on-disk encoding would take.
        let per_record: usize = self
            .records
            .iter()
            .map(|r| {
                8 + match r.action() {
                    RecordAction::Added { .. } => 4,
                    RecordAction::Removed(set) => 4 * set.indices().len(),
                }
            })
            .sum();
        4 + per_record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(initial: u32, ops: &[ScalingOp]) -> ScalingLog {
        let mut log = ScalingLog::new(initial).unwrap();
        for op in ops {
            log.push(op).unwrap();
        }
        log
    }

    #[test]
    fn rejects_zero_initial_disks() {
        assert_eq!(ScalingLog::new(0), Err(ScalingError::NoInitialDisks));
    }

    #[test]
    fn tracks_counts_across_mixed_operations() {
        let log = log_with(
            4,
            &[
                ScalingOp::Add { count: 2 },          // 4 -> 6
                ScalingOp::Remove { disks: vec![4] }, // 6 -> 5
                ScalingOp::Add { count: 3 },          // 5 -> 8
            ],
        );
        assert_eq!(log.epoch(), 3);
        assert_eq!(log.disk_counts(), vec![4, 6, 5, 8]);
        assert_eq!(log.current_disks(), 8);
        assert_eq!(log.disks_at(0), 4);
        assert_eq!(log.disks_at(2), 5);
    }

    #[test]
    fn failed_push_leaves_log_unchanged() {
        let mut log = log_with(4, &[ScalingOp::Add { count: 1 }]);
        let before = log.clone();
        assert!(log.push(&ScalingOp::Remove { disks: vec![99] }).is_err());
        assert_eq!(log, before);
    }

    #[test]
    fn optimal_fraction_matches_def_3_4() {
        let log = log_with(
            4,
            &[
                ScalingOp::Add { count: 1 },
                ScalingOp::Remove { disks: vec![0] },
            ],
        );
        // Addition 4 -> 5: z = 1/5.
        assert!((log.records()[0].optimal_move_fraction() - 0.2).abs() < 1e-12);
        // Removal 5 -> 4: z = 1/5.
        assert!((log.records()[1].optimal_move_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn metadata_is_small_and_grows_with_ops() {
        let empty = ScalingLog::new(10).unwrap();
        let log = log_with(10, &[ScalingOp::Add { count: 5 }, ScalingOp::remove_one(3)]);
        assert!(empty.metadata_bytes() < log.metadata_bytes());
        // The whole point: metadata stays tiny no matter how many blocks
        // the server stores.
        assert!(log.metadata_bytes() < 64);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn disks_at_future_epoch_panics() {
        let log = ScalingLog::new(4).unwrap();
        let _ = log.disks_at(1);
    }
}
