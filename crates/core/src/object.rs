//! Continuous media objects and the server catalog.
//!
//! An object is fully described by `(id, seed, block count)` — per the
//! paper, *no per-block location is ever stored*. The catalog is the
//! directory-free metadata that, together with the scaling log, locates
//! every block in the server.

use scaddar_prng::{Bits, BlockRandoms, RngKind, SeedDeriver};

/// Identifier of a CM object (a movie, an audio track, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "object {}", self.0)
    }
}

/// A reference to one block of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockRef {
    /// Owning object.
    pub object: ObjectId,
    /// Block index within the object, `0..blocks`.
    pub block: u64,
}

/// Metadata of one stored object. The seed `s_m` is all that is needed to
/// regenerate the placement of each of its `blocks` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmObject {
    /// Identifier.
    pub id: ObjectId,
    /// Placement seed `s_m`.
    pub seed: u64,
    /// Number of fixed-size blocks the object is split into.
    pub blocks: u64,
}

/// The server's object catalog: generator family, bit width, per-object
/// seeds. This plus the scaling log is the *entire* placement state.
#[derive(Debug, Clone)]
pub struct Catalog {
    kind: RngKind,
    bits: Bits,
    deriver: SeedDeriver,
    objects: Vec<CmObject>,
    next_id: u64,
}

impl Catalog {
    /// Creates an empty catalog. `catalog_seed` decorrelates the object
    /// seeds of different server instances.
    pub fn new(kind: RngKind, bits: Bits, catalog_seed: u64) -> Self {
        Catalog {
            kind,
            bits,
            deriver: SeedDeriver::new(catalog_seed),
            objects: Vec::new(),
            next_id: 0,
        }
    }

    /// Reconstructs a catalog from persisted parts (see
    /// [`crate::persist`]). `next_id` must be at least one past every id
    /// in `objects` so ids are never reused after a restore.
    pub fn restore(
        kind: RngKind,
        bits: Bits,
        catalog_seed: u64,
        objects: Vec<CmObject>,
        next_id: u64,
    ) -> Self {
        debug_assert!(
            objects.iter().all(|o| o.id.0 < next_id),
            "next_id must exceed every restored object id"
        );
        Catalog {
            kind,
            bits,
            deriver: SeedDeriver::new(catalog_seed),
            objects,
            next_id,
        }
    }

    /// The generator family used for placement.
    pub fn rng_kind(&self) -> RngKind {
        self.kind
    }

    /// The server-wide catalog seed.
    pub fn catalog_seed(&self) -> u64 {
        self.deriver.catalog_seed()
    }

    /// The next object id to be allocated (persisted so restores never
    /// reuse ids).
    pub fn next_object_id(&self) -> u64 {
        self.next_id
    }

    /// The bit width `b` of placement random numbers.
    pub fn bits(&self) -> Bits {
        self.bits
    }

    /// Registers a new object of `blocks` blocks and returns its id.
    pub fn add_object(&mut self, blocks: u64) -> ObjectId {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        let seed = self.deriver.object_seed(id.0);
        self.objects.push(CmObject { id, seed, blocks });
        id
    }

    /// Removes an object (e.g. content retired from the service).
    /// Returns its metadata, or `None` if unknown.
    pub fn remove_object(&mut self, id: ObjectId) -> Option<CmObject> {
        let pos = self.objects.iter().position(|o| o.id == id)?;
        Some(self.objects.remove(pos))
    }

    /// Looks up one object.
    pub fn object(&self, id: ObjectId) -> Option<&CmObject> {
        self.objects.iter().find(|o| o.id == id)
    }

    /// All stored objects.
    pub fn objects(&self) -> &[CmObject] {
        &self.objects
    }

    /// Total number of blocks across the catalog (`B` in the paper).
    pub fn total_blocks(&self) -> u64 {
        self.objects.iter().map(|o| o.blocks).sum()
    }

    /// A catalog with the same objects (ids, block counts, id
    /// allocation) but every object seed re-derived from `new_seed` —
    /// the content side of opening a new placement *generation*: the
    /// same library, fresh `X_0` sequences.
    pub fn reseeded(&self, new_seed: u64) -> Catalog {
        let deriver = SeedDeriver::new(new_seed);
        let objects = self
            .objects
            .iter()
            .map(|o| CmObject {
                id: o.id,
                seed: deriver.object_seed(o.id.0),
                blocks: o.blocks,
            })
            .collect();
        Catalog {
            kind: self.kind,
            bits: self.bits,
            deriver,
            objects,
            next_id: self.next_id,
        }
    }

    /// The random sequence `p_r(s_m)` of an object.
    pub fn randoms(&self, object: &CmObject) -> BlockRandoms {
        BlockRandoms::new(self.kind, object.seed, self.bits)
    }

    /// `X_0` for one block of one object.
    pub fn x0(&self, object: &CmObject, block: u64) -> u64 {
        self.randoms(object).value_at(block)
    }

    /// Iterates `(BlockRef, X_0)` over every block of every object, in
    /// catalog order. The workhorse of full-scan operations (initial
    /// load, redistribution planning, load censuses).
    pub fn iter_x0(&self) -> impl Iterator<Item = (BlockRef, u64)> + '_ {
        self.objects.iter().flat_map(move |obj| {
            let seq = self.randoms(obj);
            (0..obj.blocks).map(move |block| {
                (
                    BlockRef {
                        object: obj.id,
                        block,
                    },
                    seq.value_at(block),
                )
            })
        })
    }

    /// Iterates `(BlockRef, X_0)` over the contiguous span
    /// `start..start + len` of the catalog's *flattened* block index
    /// space (catalog order, objects concatenated). Produces exactly what
    /// [`Catalog::iter_x0`] yields for those positions, but seeks into
    /// each object's random stream with the generator's jump-ahead
    /// instead of regenerating the prefix — what lets parallel bulk scans
    /// hand each worker a mid-catalog span for the price of one O(log i)
    /// seek per object touched.
    pub fn iter_x0_range(
        &self,
        start: u64,
        len: u64,
    ) -> impl Iterator<Item = (BlockRef, u64)> + '_ {
        let mut skip = start;
        let mut remaining = len;
        // Resolve the span into per-object (object, first block, count)
        // segments up front; each segment then walks a seeked cursor.
        let mut segments = Vec::new();
        for obj in &self.objects {
            if remaining == 0 {
                break;
            }
            if skip >= obj.blocks {
                skip -= obj.blocks;
                continue;
            }
            let take = (obj.blocks - skip).min(remaining);
            segments.push((obj, skip, take));
            remaining -= take;
            skip = 0;
        }
        segments.into_iter().flat_map(move |(obj, first, take)| {
            self.randoms(obj)
                .cursor_at(first)
                .take(take as usize)
                .enumerate()
                .map(move |(i, x0)| {
                    (
                        BlockRef {
                            object: obj.id,
                            block: first + i as u64,
                        },
                        x0,
                    )
                })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::new(RngKind::SplitMix64, Bits::B32, 99)
    }

    #[test]
    fn ids_are_sequential_and_stable_after_removal() {
        let mut c = catalog();
        let a = c.add_object(10);
        let b = c.add_object(20);
        assert_eq!((a, b), (ObjectId(0), ObjectId(1)));
        c.remove_object(a).unwrap();
        let d = c.add_object(5);
        assert_eq!(d, ObjectId(2), "ids must never be reused");
        assert!(c.object(a).is_none());
        assert_eq!(c.object(b).unwrap().blocks, 20);
    }

    #[test]
    fn seeds_differ_between_objects() {
        let mut c = catalog();
        let a = c.add_object(1);
        let b = c.add_object(1);
        assert_ne!(c.object(a).unwrap().seed, c.object(b).unwrap().seed);
    }

    #[test]
    fn iter_x0_covers_every_block_once() {
        let mut c = catalog();
        c.add_object(3);
        c.add_object(2);
        let pairs: Vec<_> = c.iter_x0().collect();
        assert_eq!(pairs.len(), 5);
        let refs: std::collections::HashSet<_> = pairs.iter().map(|(r, _)| *r).collect();
        assert_eq!(refs.len(), 5);
        assert_eq!(c.total_blocks(), 5);
    }

    #[test]
    fn iter_x0_range_matches_full_iteration() {
        // Exercise the seeking path for every generator family, spans
        // crossing object boundaries and clipping past the end.
        for kind in RngKind::ALL {
            let mut c = Catalog::new(kind, Bits::B32, 7);
            c.add_object(100);
            c.add_object(1);
            c.add_object(250);
            let full: Vec<_> = c.iter_x0().collect();
            for (start, len) in [(0, 351), (0, 0), (99, 3), (100, 1), (340, 100), (351, 5)] {
                let span: Vec<_> = c.iter_x0_range(start, len).collect();
                let end = (start + len).min(351) as usize;
                assert_eq!(span, full[start as usize..end], "{kind} [{start}, +{len})");
            }
        }
    }

    #[test]
    fn reseeding_keeps_content_and_changes_placement() {
        let mut c = catalog();
        let a = c.add_object(10);
        let b = c.add_object(20);
        c.remove_object(a).unwrap();
        let r = c.reseeded(0xDEAD_BEEF);
        // Same library: ids, block counts, and id allocation survive.
        assert!(r.object(a).is_none());
        assert_eq!(r.object(b).unwrap().blocks, 20);
        assert_eq!(r.next_object_id(), c.next_object_id());
        assert_eq!(r.catalog_seed(), 0xDEAD_BEEF);
        // Fresh placement: seeds differ, and so do the X_0 streams.
        assert_ne!(r.object(b).unwrap().seed, c.object(b).unwrap().seed);
        assert_ne!(r.x0(r.object(b).unwrap(), 0), c.x0(c.object(b).unwrap(), 0));
        // New objects in the reseeded catalog derive from the new seed.
        let mut r2 = r.clone();
        let mut fresh = Catalog::new(c.rng_kind(), c.bits(), 0xDEAD_BEEF);
        fresh.add_object(10);
        fresh.add_object(20);
        let d = r2.add_object(5);
        let mut fresh2 = fresh.clone();
        assert_eq!(fresh2.add_object(5), d);
        assert_eq!(r2.object(d).unwrap().seed, fresh2.object(d).unwrap().seed);
        // Reseeding is idempotent in distribution: same seed, same result.
        assert_eq!(c.reseeded(0xDEAD_BEEF).objects(), r.objects());
    }

    #[test]
    fn x0_matches_iter_and_is_reproducible() {
        let mut c = catalog();
        let id = c.add_object(64);
        let obj = *c.object(id).unwrap();
        for (blockref, x0) in c.iter_x0() {
            assert_eq!(c.x0(&obj, blockref.block), x0);
        }
        // A freshly constructed identical catalog yields the same values.
        let mut c2 = catalog();
        let id2 = c2.add_object(64);
        let obj2 = *c2.object(id2).unwrap();
        assert_eq!(c.x0(&obj, 17), c2.x0(&obj2, 17));
    }
}
