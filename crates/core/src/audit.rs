//! Auditing: machine-checkable statements of the paper's objectives,
//! runnable against a live server.
//!
//! A production operator cannot re-derive Lemma 4.3 at 3 a.m.; they can
//! run an audit. This module turns RO1/RO2/AO1 into concrete checks over
//! a (catalog, log) pair and optionally a claimed on-disk census:
//!
//! * [`audit_plan`] — a move plan respects RO1: moved count within
//!   binomial bounds of `z_j·B`, correct directions (additions move only
//!   onto added disks; removals move exactly the victims' blocks);
//! * [`audit_census`] — a claimed census matches what the placement
//!   arithmetic says block-by-block (detects residency drift);
//! * [`audit_balance`] — RO2 as a statistic: CoV and worst deviation of
//!   the derived census, with the §4.3 bound for context.

use crate::address::locate;
use crate::bounds::FairnessTracker;
use crate::log::{RecordAction, ScalingLog};
use crate::object::Catalog;
use crate::plan::MovePlan;

/// A single audit finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// A move plan moved suspiciously many/few blocks.
    MovedCountOutOfBounds {
        /// Blocks moved.
        moved: u64,
        /// Expected (optimal) count.
        expected: f64,
        /// Allowed absolute slack (4-sigma binomial).
        slack: f64,
    },
    /// An addition plan moved a block onto a pre-existing disk.
    AdditionMovedToOldDisk {
        /// Offending destination.
        to: u32,
    },
    /// A removal plan moved a block that was not on a removed disk, or
    /// missed one that was.
    RemovalVictimMismatch {
        /// Blocks moved from non-removed disks.
        non_victims_moved: u64,
        /// Victim blocks left unmoved.
        victims_unmoved: u64,
    },
    /// A claimed census entry disagrees with the placement arithmetic.
    CensusMismatch {
        /// Logical disk index.
        disk: u32,
        /// Claimed block count.
        claimed: u64,
        /// Derived block count.
        derived: u64,
    },
    /// Census has the wrong number of disks.
    CensusShape {
        /// Claimed length.
        claimed: usize,
        /// Current disk count.
        disks: u32,
    },
    /// Load imbalance beyond the tolerance.
    ImbalanceBeyondTolerance {
        /// Observed worst relative deviation from the mean.
        worst_deviation: f64,
        /// The tolerance used.
        tolerance: f64,
    },
}

/// Outcome of an audit: empty findings = pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// All findings, in detection order.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// Did the audit pass?
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Audits a move plan against RO1 for the last operation in `log`.
///
/// # Panics
/// If the log is empty (there is nothing the plan could belong to).
pub fn audit_plan(plan: &MovePlan, log: &ScalingLog) -> AuditReport {
    assert!(log.epoch() > 0, "no operation to audit against");
    let record = &log.records()[log.epoch() - 1];
    let mut findings = Vec::new();

    // Moved-count bounds: z_j·B ± 4 sigma (binomial).
    let z = record.optimal_move_fraction();
    let b = plan.total_blocks as f64;
    let expected = z * b;
    let slack = 4.0 * (b * z * (1.0 - z)).sqrt() + 1.0;
    let moved = plan.moves.len() as u64;
    match record.action() {
        RecordAction::Added { .. } => {
            if (moved as f64 - expected).abs() > slack {
                findings.push(Finding::MovedCountOutOfBounds {
                    moved,
                    expected,
                    slack,
                });
            }
            let n_prev = record.disks_before();
            for mv in &plan.moves {
                if mv.to.0 < n_prev {
                    findings.push(Finding::AdditionMovedToOldDisk { to: mv.to.0 });
                    break; // one example suffices
                }
            }
        }
        RecordAction::Removed(set) => {
            // For removals RO1 is exact, not statistical: everything on a
            // victim moves, nothing else does.
            let non_victims_moved = plan
                .moves
                .iter()
                .filter(|m| !set.contains(m.from.0))
                .count() as u64;
            // Victim totals need the pre-op census; the plan carries the
            // total moved, so we check directionally here and leave the
            // exact victim count to `audit_census` callers.
            if non_victims_moved > 0 {
                findings.push(Finding::RemovalVictimMismatch {
                    non_victims_moved,
                    victims_unmoved: 0,
                });
            }
        }
    }
    AuditReport { findings }
}

/// Derives the true census from (catalog, log).
pub fn derived_census(catalog: &Catalog, log: &ScalingLog) -> Vec<u64> {
    let mut census = vec![0u64; log.current_disks() as usize];
    for (_, x0) in catalog.iter_x0() {
        census[locate(x0, log).0 as usize] += 1;
    }
    census
}

/// Audits a claimed census (e.g. from the storage layer) against the
/// placement arithmetic.
pub fn audit_census(catalog: &Catalog, log: &ScalingLog, claimed: &[u64]) -> AuditReport {
    let mut findings = Vec::new();
    let disks = log.current_disks();
    if claimed.len() != disks as usize {
        findings.push(Finding::CensusShape {
            claimed: claimed.len(),
            disks,
        });
        return AuditReport { findings };
    }
    let derived = derived_census(catalog, log);
    for (disk, (&c, &d)) in claimed.iter().zip(&derived).enumerate() {
        if c != d {
            findings.push(Finding::CensusMismatch {
                disk: disk as u32,
                claimed: c,
                derived: d,
            });
        }
    }
    AuditReport { findings }
}

/// Audits RO2: worst relative deviation of the derived census against a
/// tolerance. A reasonable tolerance is the §4.3 bound plus binomial
/// noise; [`suggested_tolerance`] computes one.
pub fn audit_balance(catalog: &Catalog, log: &ScalingLog, tolerance: f64) -> AuditReport {
    let census = derived_census(catalog, log);
    let total: u64 = census.iter().sum();
    if total == 0 {
        return AuditReport::default();
    }
    let mean = total as f64 / census.len() as f64;
    let worst = census
        .iter()
        .map(|&c| ((c as f64) - mean).abs() / mean)
        .fold(0.0f64, f64::max);
    let mut findings = Vec::new();
    if worst > tolerance {
        findings.push(Finding::ImbalanceBeyondTolerance {
            worst_deviation: worst,
            tolerance,
        });
    }
    AuditReport { findings }
}

/// A balance tolerance combining the analytic §4.3 bound with 5-sigma
/// binomial noise for `total_blocks` over the current disks.
pub fn suggested_tolerance(catalog: &Catalog, log: &ScalingLog) -> f64 {
    let tracker = FairnessTracker::from_log(catalog.bits(), log);
    let bound = tracker.report().unfairness_bound;
    let disks = f64::from(log.current_disks());
    let blocks = catalog.total_blocks() as f64;
    let binomial = if blocks > 0.0 {
        5.0 * (disks / blocks).sqrt()
    } else {
        0.0
    };
    // An exhausted budget yields an infinite bound; cap at "anything
    // goes" = 100% deviation so the audit still reports gross anomalies.
    (bound + binomial).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ScalingOp;
    use crate::plan::plan_last_op;
    use scaddar_prng::{Bits, RngKind};

    fn setup() -> (Catalog, ScalingLog) {
        let mut catalog = Catalog::new(RngKind::SplitMix64, Bits::B32, 9);
        catalog.add_object(40_000);
        let log = ScalingLog::new(5).unwrap();
        (catalog, log)
    }

    #[test]
    fn honest_plans_pass() {
        let (catalog, mut log) = setup();
        log.push(&ScalingOp::Add { count: 2 }).unwrap();
        let plan = plan_last_op(&catalog, &log);
        assert!(audit_plan(&plan, &log).passed());

        log.push(&ScalingOp::remove_one(3)).unwrap();
        let plan = plan_last_op(&catalog, &log);
        assert!(audit_plan(&plan, &log).passed());
    }

    #[test]
    fn tampered_plan_is_caught() {
        let (catalog, mut log) = setup();
        log.push(&ScalingOp::Add { count: 1 }).unwrap();
        let mut plan = plan_last_op(&catalog, &log);
        // Tamper 1: redirect a move to an old disk.
        plan.moves[0].to = crate::address::DiskIndex(0);
        let report = audit_plan(&plan, &log);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::AdditionMovedToOldDisk { to: 0 })));

        // Tamper 2: drop most moves (suspiciously few).
        let mut plan = plan_last_op(&catalog, &log);
        plan.moves.truncate(10);
        let report = audit_plan(&plan, &log);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::MovedCountOutOfBounds { .. })));
    }

    #[test]
    fn census_audit_catches_drift() {
        let (catalog, mut log) = setup();
        log.push(&ScalingOp::Add { count: 1 }).unwrap();
        let mut census = derived_census(&catalog, &log);
        assert!(audit_census(&catalog, &log, &census).passed());
        census[2] += 5; // a phantom block appeared
        let report = audit_census(&catalog, &log, &census);
        assert_eq!(
            report.findings,
            vec![Finding::CensusMismatch {
                disk: 2,
                claimed: census[2],
                derived: census[2] - 5
            }]
        );
        // Wrong shape short-circuits.
        let report = audit_census(&catalog, &log, &census[..3]);
        assert!(matches!(report.findings[0], Finding::CensusShape { .. }));
    }

    #[test]
    fn balance_audit_with_suggested_tolerance_passes_healthy_state() {
        let (catalog, mut log) = setup();
        for op in [ScalingOp::Add { count: 1 }, ScalingOp::remove_one(0)] {
            log.push(&op).unwrap();
        }
        let tol = suggested_tolerance(&catalog, &log);
        assert!(
            audit_balance(&catalog, &log, tol).passed(),
            "tolerance {tol}"
        );
        // An absurdly tight tolerance fails, proving the check is live.
        let report = audit_balance(&catalog, &log, 1e-9);
        assert!(matches!(
            report.findings[0],
            Finding::ImbalanceBeyondTolerance { .. }
        ));
    }

    #[test]
    fn empty_catalog_balance_is_vacuous() {
        let catalog = Catalog::new(RngKind::SplitMix64, Bits::B32, 1);
        let log = ScalingLog::new(3).unwrap();
        assert!(audit_balance(&catalog, &log, 0.0).passed());
    }
}
