//! Epoch-tagged cache of current random numbers `X_j` — the engine-side
//! state that makes `locate()` O(1) amortized and `plan_last_op` O(B).
//!
//! SCADDAR's access function recomputes `X_0 → X_j` on every lookup —
//! O(j) per block, O(B·j) per planning pass. But `X_j` evolves by
//! exactly one `REMAP` per scaling operation, so a server that stores
//! each block's current `X_j` next to the catalog only ever pays:
//!
//! * **lookup** — one `mod` (the stored `X_j` is already current);
//! * **scaling** — one [`RemapPipeline::step`] per block
//!   ([`XCache::advance_to`]), i.e. O(B) per operation instead of the
//!   O(B·j) replay, and the same values feed
//!   [`crate::plan_last_op_with_x`] so planning is O(B) too.
//!
//! The invalidation rule is the epoch tag: a cache at epoch `e` is valid
//! against a pipeline at epoch `e` and is advanced by folding every
//! entry through steps `e..pipeline.epoch()` — never rebuilt from
//! scratch unless the log itself restarts (full redistribution).
//!
//! The cache is an engine-layer acceleration, not placement state: it is
//! always reconstructible from catalog + log ([`XCache::rebuild`]), and
//! equivalence with the stateless `X_0`-fold oracle is property-tested.

use crate::object::{BlockRef, Catalog, CmObject, ObjectId};
use crate::pipeline::RemapPipeline;
use std::collections::HashMap;

/// Per-block current random numbers `X_e`, tagged with their epoch `e`.
#[derive(Debug, Clone, Default)]
pub struct XCache {
    epoch: usize,
    xs: HashMap<ObjectId, Vec<u64>>,
}

impl XCache {
    /// An empty cache at epoch 0.
    pub fn new() -> Self {
        XCache::default()
    }

    /// Rebuilds the cache from scratch: every block's `X_0` folded to the
    /// pipeline's epoch. O(B·j) — the cost the incremental path avoids;
    /// used at construction, restore, and log restarts.
    pub fn rebuild(catalog: &Catalog, pipeline: &RemapPipeline) -> Self {
        let mut cache = XCache {
            epoch: pipeline.epoch(),
            xs: HashMap::with_capacity(catalog.objects().len()),
        };
        for obj in catalog.objects() {
            cache
                .xs
                .insert(obj.id, Self::fold_object(catalog, obj, pipeline));
        }
        cache
    }

    fn fold_object(catalog: &Catalog, obj: &CmObject, pipeline: &RemapPipeline) -> Vec<u64> {
        catalog
            .randoms(obj)
            .cursor()
            .take(obj.blocks as usize)
            .map(|x0| pipeline.fold(x0))
            .collect()
    }

    /// The epoch the cached values are valid at.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Number of cached objects.
    pub fn objects(&self) -> usize {
        self.xs.len()
    }

    /// The cached `X_e` values of one object, in block order.
    pub fn xs(&self, id: ObjectId) -> Option<&[u64]> {
        self.xs.get(&id).map(Vec::as_slice)
    }

    /// The cached `X_e` of one block.
    pub fn x(&self, id: ObjectId, block: u64) -> Option<u64> {
        self.xs.get(&id)?.get(block as usize).copied()
    }

    /// Admits a newly registered object: its `X_0` stream folded to the
    /// cache's epoch.
    ///
    /// # Panics
    /// If the pipeline's epoch differs from the cache's.
    pub fn insert_object(&mut self, catalog: &Catalog, obj: &CmObject, pipeline: &RemapPipeline) {
        assert_eq!(self.epoch, pipeline.epoch(), "cache and pipeline diverged");
        self.xs
            .insert(obj.id, Self::fold_object(catalog, obj, pipeline));
    }

    /// Evicts a removed object.
    pub fn remove_object(&mut self, id: ObjectId) {
        self.xs.remove(&id);
    }

    /// Advances every cached value to the pipeline's epoch — the
    /// incremental invalidation rule: one [`RemapPipeline::step`] per
    /// block per epoch bump (normally exactly one bump, right after a
    /// scaling operation extended the pipeline).
    ///
    /// # Panics
    /// If the pipeline is *behind* the cache (stale pipeline).
    pub fn advance_to(&mut self, pipeline: &RemapPipeline) {
        assert!(
            self.epoch <= pipeline.epoch(),
            "pipeline at epoch {} is behind the cache at epoch {}",
            pipeline.epoch(),
            self.epoch
        );
        if self.epoch == pipeline.epoch() {
            return;
        }
        for xs in self.xs.values_mut() {
            for x in xs.iter_mut() {
                *x = pipeline.fold_from(self.epoch, *x);
            }
        }
        self.epoch = pipeline.epoch();
    }

    /// `(BlockRef, X_e)` for every catalog block, **in catalog order**
    /// (the iteration order of [`Catalog::iter_x0`], which planners rely
    /// on for deterministic plans). Objects present in the catalog but
    /// not the cache are skipped — callers keep the two in lockstep.
    pub fn blocks_with_x<'a>(
        &'a self,
        catalog: &'a Catalog,
    ) -> impl Iterator<Item = (BlockRef, u64)> + 'a {
        catalog
            .objects()
            .iter()
            .filter_map(|obj| Some((obj, self.xs.get(&obj.id)?)))
            .flat_map(|(obj, xs)| {
                xs.iter().enumerate().map(move |(block, &x)| {
                    (
                        BlockRef {
                            object: obj.id,
                            block: block as u64,
                        },
                        x,
                    )
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::x_at_current_epoch;
    use crate::log::ScalingLog;
    use crate::ops::ScalingOp;
    use scaddar_prng::{Bits, RngKind};

    fn setup() -> (Catalog, ScalingLog) {
        let mut catalog = Catalog::new(RngKind::SplitMix64, Bits::B32, 3);
        catalog.add_object(500);
        catalog.add_object(200);
        (catalog, ScalingLog::new(4).unwrap())
    }

    #[test]
    fn incremental_advance_matches_rebuild_and_oracle() {
        let (catalog, mut log) = setup();
        let mut pipeline = RemapPipeline::compile(&log);
        let mut cache = XCache::rebuild(&catalog, &pipeline);
        for op in [
            ScalingOp::Add { count: 2 },
            ScalingOp::remove_one(0),
            ScalingOp::Add { count: 1 },
            ScalingOp::Remove { disks: vec![2, 5] },
        ] {
            log.push(&op).unwrap();
            pipeline.extend_from(&log);
            cache.advance_to(&pipeline);
            assert_eq!(cache.epoch(), log.epoch());
            let rebuilt = XCache::rebuild(&catalog, &pipeline);
            for obj in catalog.objects() {
                assert_eq!(cache.xs(obj.id), rebuilt.xs(obj.id));
                let seq = catalog.randoms(obj);
                for block in (0..obj.blocks).step_by(37) {
                    assert_eq!(
                        cache.x(obj.id, block),
                        Some(x_at_current_epoch(seq.value_at(block), &log)),
                        "{} block {block} epoch {}",
                        obj.id,
                        log.epoch()
                    );
                }
            }
        }
    }

    #[test]
    fn advance_is_idempotent_at_same_epoch() {
        let (catalog, mut log) = setup();
        log.push(&ScalingOp::add_one()).unwrap();
        let pipeline = RemapPipeline::compile(&log);
        let mut cache = XCache::rebuild(&catalog, &pipeline);
        let snapshot = cache.clone();
        cache.advance_to(&pipeline);
        assert_eq!(cache.epoch(), snapshot.epoch());
        for obj in catalog.objects() {
            assert_eq!(cache.xs(obj.id), snapshot.xs(obj.id));
        }
    }

    #[test]
    fn blocks_with_x_follows_catalog_order() {
        let (mut catalog, log) = setup();
        let pipeline = RemapPipeline::compile(&log);
        let mut cache = XCache::rebuild(&catalog, &pipeline);
        let id = catalog.add_object(50);
        cache.insert_object(&catalog, catalog.object(id).unwrap(), &pipeline);
        let cached: Vec<_> = cache.blocks_with_x(&catalog).collect();
        let oracle: Vec<_> = catalog.iter_x0().collect();
        assert_eq!(cached, oracle, "epoch 0 cache is the X_0 stream, in order");
        cache.remove_object(id);
        assert_eq!(cache.blocks_with_x(&catalog).count(), 700);
        assert_eq!(cache.x(id, 0), None);
    }

    #[test]
    #[should_panic(expected = "behind the cache")]
    fn stale_pipeline_is_rejected() {
        let (catalog, mut log) = setup();
        let empty = RemapPipeline::compile(&log);
        log.push(&ScalingOp::add_one()).unwrap();
        let mut cache = XCache::rebuild(&catalog, &RemapPipeline::compile(&log));
        cache.advance_to(&empty);
    }
}
