//! The access function `AF()` — deriving a block's disk at any epoch.
//!
//! After `j` scaling operations, `AF()` folds the block's original random
//! number `X_0` through `REMAP_1 … REMAP_j` and returns
//! `D_j = X_j mod N_j` (§4). The cost is `O(j)` integer operations — the
//! paper's AO1 objective ("low complexity computation... inexpensive mod
//! and div functions instead of a disk-resident directory"). Benchmarked
//! in `crates/bench/benches/access.rs`.

use crate::log::{RecordAction, ScalingLog};
use crate::remap::{remap_add, remap_remove, split_qr};
use std::fmt;

/// A logical disk index at some epoch (`0..N_j`).
///
/// Logical indices are dense and renumbered on removal; the simulator
/// layer maps them to stable physical identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiskIndex(pub u32);

impl fmt::Display for DiskIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk {}", self.0)
    }
}

/// One step of a block's remap history, for tracing and the worked-example
/// experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Epoch after the step (`0` = initial placement).
    pub epoch: usize,
    /// `X_e` at that epoch.
    pub x: u64,
    /// `N_e` at that epoch.
    pub disks: u32,
    /// `D_e = X_e mod N_e`.
    pub disk: DiskIndex,
    /// Did the step move the block? (`false` for epoch 0.)
    pub moved: bool,
}

/// Applies `REMAP_{e}` for the record at epoch `e` (1-based) to `x_prev`.
fn apply_record(x_prev: u64, record: &crate::log::ScalingRecord) -> crate::remap::Remapped {
    let n_prev = u64::from(record.disks_before());
    match record.action() {
        RecordAction::Added { .. } => remap_add(x_prev, n_prev, u64::from(record.disks_after())),
        RecordAction::Removed(set) => remap_remove(x_prev, n_prev, set),
    }
}

/// `X_j`: folds `x0` through every operation in the log.
pub fn x_at_current_epoch(x0: u64, log: &ScalingLog) -> u64 {
    x_at_epoch(x0, log, log.epoch())
}

/// `X_e` for an arbitrary epoch `e <= log.epoch()`.
///
/// # Panics
/// If `e` exceeds the log's epoch.
pub fn x_at_epoch(x0: u64, log: &ScalingLog, e: usize) -> u64 {
    assert!(e <= log.epoch(), "epoch {e} is in the future");
    log.records()[..e]
        .iter()
        .fold(x0, |x, record| apply_record(x, record).x)
}

/// `AF()`: the disk of a block with original random number `x0` at the
/// current epoch.
pub fn locate(x0: u64, log: &ScalingLog) -> DiskIndex {
    locate_at_epoch(x0, log, log.epoch())
}

/// `D_e` for an arbitrary epoch.
pub fn locate_at_epoch(x0: u64, log: &ScalingLog, e: usize) -> DiskIndex {
    let x = x_at_epoch(x0, log, e);
    let n = u64::from(log.disks_at(e));
    DiskIndex((x % n) as u32)
}

/// The full remap history of a block: `X_0 … X_j` with disks and move
/// flags. Powers the §4.2 worked-example reproduction and debugging.
pub fn trace(x0: u64, log: &ScalingLog) -> Vec<TraceStep> {
    let mut steps = Vec::with_capacity(log.epoch() + 1);
    let n0 = u64::from(log.initial_disks());
    steps.push(TraceStep {
        epoch: 0,
        x: x0,
        disks: log.initial_disks(),
        disk: DiskIndex((x0 % n0) as u32),
        moved: false,
    });
    let mut x = x0;
    for (idx, record) in log.records().iter().enumerate() {
        let out = apply_record(x, record);
        x = out.x;
        let n = u64::from(record.disks_after());
        steps.push(TraceStep {
            epoch: idx + 1,
            x,
            disks: record.disks_after(),
            disk: DiskIndex((x % n) as u32),
            moved: out.moved,
        });
    }
    steps
}

/// The residual random quotient `q_j = X_j div N_j` at the current epoch —
/// the randomness left for *future* operations (§4.3).
pub fn residual_randomness(x0: u64, log: &ScalingLog) -> u64 {
    let x = x_at_current_epoch(x0, log);
    split_qr(x, u64::from(log.current_disks())).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ScalingOp;

    fn log_with(initial: u32, ops: &[ScalingOp]) -> ScalingLog {
        let mut log = ScalingLog::new(initial).unwrap();
        for op in ops {
            log.push(op).unwrap();
        }
        log
    }

    #[test]
    fn epoch_zero_is_plain_mod() {
        let log = ScalingLog::new(4).unwrap();
        assert_eq!(locate(10, &log), DiskIndex(2));
        assert_eq!(locate(3, &log), DiskIndex(3));
    }

    #[test]
    fn trace_is_consistent_with_locate() {
        let log = log_with(
            4,
            &[
                ScalingOp::Add { count: 2 },
                ScalingOp::remove_one(1),
                ScalingOp::Add { count: 1 },
            ],
        );
        for x0 in [0u64, 7, 28, 41, 123_456_789, u64::MAX] {
            let steps = trace(x0, &log);
            assert_eq!(steps.len(), 4);
            for (e, step) in steps.iter().enumerate() {
                assert_eq!(step.epoch, e);
                assert_eq!(step.disk, locate_at_epoch(x0, &log, e));
                assert_eq!(step.x, x_at_epoch(x0, &log, e));
            }
        }
    }

    #[test]
    fn trace_moved_flags_match_disk_changes_for_additions() {
        // For pure additions there is no renumbering, so `moved` must
        // coincide exactly with a disk change between epochs.
        let log = log_with(
            4,
            &[ScalingOp::Add { count: 1 }, ScalingOp::Add { count: 2 }],
        );
        for x0 in 0..10_000u64 {
            let steps = trace(x0, &log);
            for w in steps.windows(2) {
                assert_eq!(w[1].moved, w[0].disk != w[1].disk, "x0={x0}");
            }
        }
    }

    #[test]
    fn paper_removal_example_via_access_function() {
        // One removal of disk 4 out of 6. X_{j-1}=28 lives on disk 4 and
        // must move to the 4th surviving disk; X=41 stays.
        let log = log_with(6, &[ScalingOp::remove_one(4)]);
        assert_eq!(locate(28, &log), DiskIndex(4));
        assert_eq!(x_at_current_epoch(28, &log), 4);
        assert_eq!(locate(41, &log), DiskIndex(4));
        assert_eq!(x_at_current_epoch(41, &log), 34);
    }

    #[test]
    fn residual_randomness_shrinks() {
        let mut log = ScalingLog::new(4).unwrap();
        let x0 = u64::MAX - 12345;
        let q0 = residual_randomness(x0, &log);
        log.push(&ScalingOp::Add { count: 1 }).unwrap();
        let q1 = residual_randomness(x0, &log);
        assert!(q1 < q0, "quotient should shrink: {q0} -> {q1}");
    }

    #[test]
    #[should_panic(expected = "future")]
    fn future_epoch_panics() {
        let log = ScalingLog::new(4).unwrap();
        let _ = locate_at_epoch(1, &log, 1);
    }
}
