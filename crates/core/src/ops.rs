//! Scaling operations (Definition 3.3): adding or removing one *disk
//! group* — `k >= 1` disks added, or a named set of logical disks removed.
//!
//! Removals are specified by the disks' **logical indices at the epoch the
//! operation applies to** (`0..N_{j-1}`). After the removal, survivors are
//! renumbered by rank — the paper's `new()` function — so logical indices
//! are always dense `0..N_j`. [`RemovedSet`] precomputes that rank map.

use crate::error::ScalingError;

/// One scaling operation: add a group of disks, or remove a named group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalingOp {
    /// Add `count` fresh disks; they take logical indices
    /// `N_{j-1}..N_{j-1}+count`.
    Add {
        /// Number of disks in the added group (`>= 1`).
        count: u32,
    },
    /// Remove the disks whose logical indices (at epoch `j-1`) are listed.
    Remove {
        /// Logical indices to remove; need not be sorted, must be unique.
        disks: Vec<u32>,
    },
}

impl ScalingOp {
    /// Convenience constructor for a single-disk addition.
    pub fn add_one() -> Self {
        ScalingOp::Add { count: 1 }
    }

    /// Convenience constructor for a single-disk removal.
    pub fn remove_one(disk: u32) -> Self {
        ScalingOp::Remove { disks: vec![disk] }
    }

    /// Whether this is an addition.
    pub fn is_addition(&self) -> bool {
        matches!(self, ScalingOp::Add { .. })
    }

    /// The disk count after applying this operation to `disks_before`
    /// disks, validating the operation along the way.
    pub fn disks_after(&self, disks_before: u32) -> Result<u32, ScalingError> {
        match self {
            ScalingOp::Add { count } => {
                if *count == 0 {
                    return Err(ScalingError::EmptyAddition);
                }
                disks_before
                    .checked_add(*count)
                    .ok_or(ScalingError::TooManyDisks)
            }
            ScalingOp::Remove { disks } => {
                if disks.is_empty() {
                    return Err(ScalingError::EmptyRemoval);
                }
                let set = RemovedSet::new(disks, disks_before)?;
                let remaining = disks_before - set.len();
                if remaining == 0 {
                    return Err(ScalingError::WouldRemoveAllDisks);
                }
                Ok(remaining)
            }
        }
    }

    /// Structurally simpler variants of this operation, most aggressive
    /// first: additions shrink their count toward 1, group removals
    /// drop victims. Used by history minimizers (e.g. the simulation
    /// harness) to reduce a failing schedule while keeping each
    /// operation individually valid. Empty when already minimal.
    pub fn shrink_candidates(&self) -> Vec<ScalingOp> {
        match self {
            ScalingOp::Add { count } => {
                let mut out = Vec::new();
                if *count > 1 {
                    out.push(ScalingOp::Add { count: 1 });
                    let mut delta = (count - 1) / 2;
                    while delta > 0 {
                        let c = count - delta;
                        if c > 1 && !out.contains(&ScalingOp::Add { count: c }) {
                            out.push(ScalingOp::Add { count: c });
                        }
                        delta /= 2;
                    }
                }
                out
            }
            ScalingOp::Remove { disks } => {
                if disks.len() <= 1 {
                    return Vec::new();
                }
                let mut out = vec![ScalingOp::Remove {
                    disks: disks[..disks.len() / 2].to_vec(),
                }];
                for i in 0..disks.len() {
                    let mut fewer = disks.clone();
                    fewer.remove(i);
                    let cand = ScalingOp::Remove { disks: fewer };
                    if !out.contains(&cand) {
                        out.push(cand);
                    }
                }
                out
            }
        }
    }
}

/// A validated, sorted set of removed logical disk indices, supporting
/// the paper's `new()` renumbering (rank among survivors) in O(1) via a
/// precomputed dense rank table over `0..N_{j-1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemovedSet {
    sorted: Vec<u32>,
    /// `rank[d]` is the post-removal index of surviving disk `d`, or
    /// [`RemovedSet::REMOVED`] if `d` is removed; `rank.len()` is the
    /// pre-removal disk count.
    rank: Vec<u32>,
}

impl RemovedSet {
    /// Sentinel marking a removed disk in [`RemovedSet::rank_table`].
    /// Never collides with a real index: survivors number strictly fewer
    /// than `u32::MAX`.
    pub const REMOVED: u32 = u32::MAX;

    /// Validates and sorts a removal list against the current disk count.
    pub fn new(disks: &[u32], disks_before: u32) -> Result<Self, ScalingError> {
        if disks.is_empty() {
            return Err(ScalingError::EmptyRemoval);
        }
        let mut sorted = disks.to_vec();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            if pair[0] == pair[1] {
                return Err(ScalingError::DuplicateRemoval { disk: pair[0] });
            }
        }
        if let Some(&max) = sorted.last() {
            if max >= disks_before {
                return Err(ScalingError::RemovalOutOfRange {
                    disk: max,
                    disks: disks_before,
                });
            }
        }
        let mut rank = vec![0u32; disks_before as usize];
        let mut next_removed = 0usize;
        let mut new_index = 0u32;
        for d in 0..disks_before {
            if next_removed < sorted.len() && sorted[next_removed] == d {
                rank[d as usize] = Self::REMOVED;
                next_removed += 1;
            } else {
                rank[d as usize] = new_index;
                new_index += 1;
            }
        }
        Ok(RemovedSet { sorted, rank })
    }

    /// Number of removed disks.
    pub fn len(&self) -> u32 {
        self.sorted.len() as u32
    }

    /// True iff empty (never, by construction; present for API hygiene).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The removed indices, ascending.
    pub fn indices(&self) -> &[u32] {
        &self.sorted
    }

    /// The pre-removal disk count this set was validated against.
    pub fn disks_before(&self) -> u32 {
        self.rank.len() as u32
    }

    /// Is logical disk `d` removed by this operation?
    pub fn contains(&self, d: u32) -> bool {
        self.rank
            .get(d as usize)
            .is_some_and(|&m| m == Self::REMOVED)
    }

    /// The full dense renumber table over `0..N_{j-1}`: survivors map to
    /// their post-removal index, removed disks to
    /// [`RemovedSet::REMOVED`]. This is what [`RemapPipeline`] copies
    /// into its flat step list.
    ///
    /// [`RemapPipeline`]: crate::RemapPipeline
    pub fn rank_table(&self) -> &[u32] {
        &self.rank
    }

    /// The paper's `new()` function: the post-removal logical index of a
    /// *surviving* disk `d`, i.e. its rank among survivors. O(1) table
    /// lookup.
    ///
    /// # Panics
    /// In debug builds, if `d` is itself removed (callers must branch on
    /// [`RemovedSet::contains`] first, as Eq. 3 does); in all builds if
    /// `d` is outside `0..N_{j-1}`.
    pub fn renumber(&self, d: u32) -> u32 {
        debug_assert!(!self.contains(d), "renumber() called on a removed disk");
        self.rank[d as usize]
    }

    /// The original O(log k) binary-search renumbering, kept as a
    /// reference implementation cross-checked against the rank table.
    #[cfg(test)]
    pub(crate) fn renumber_by_search(&self, d: u32) -> u32 {
        let removed_below = match self.sorted.binary_search(&d) {
            Ok(pos) | Err(pos) => pos as u32,
        };
        d - removed_below
    }

    /// Inverse of [`RemovedSet::renumber`]: which old logical index does
    /// post-removal index `new_d` correspond to? Used by the simulator to
    /// keep physical-disk identity across renumbering.
    pub fn old_index(&self, new_d: u32) -> u32 {
        // Walk the removed list: every removed index <= candidate shifts
        // the candidate up by one.
        let mut candidate = new_d;
        for &r in &self.sorted {
            if r <= candidate {
                candidate += 1;
            } else {
                break;
            }
        }
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shrink_candidates_are_simpler_and_valid() {
        assert!(ScalingOp::add_one().shrink_candidates().is_empty());
        assert!(ScalingOp::remove_one(3).shrink_candidates().is_empty());

        let cands = ScalingOp::Add { count: 8 }.shrink_candidates();
        assert_eq!(cands[0], ScalingOp::Add { count: 1 });
        for c in &cands {
            match c {
                ScalingOp::Add { count } => assert!(*count < 8 && *count >= 1),
                _ => panic!("addition shrinks to additions"),
            }
            assert!(c.disks_after(4).is_ok());
        }

        let op = ScalingOp::Remove {
            disks: vec![0, 2, 5],
        };
        let cands = op.shrink_candidates();
        assert!(!cands.is_empty());
        for c in &cands {
            match c {
                ScalingOp::Remove { disks } => {
                    assert!(disks.len() < 3 && !disks.is_empty());
                    assert!(disks.iter().all(|d| [0, 2, 5].contains(d)));
                }
                _ => panic!("removal shrinks to removals"),
            }
            assert!(c.disks_after(8).is_ok());
        }
    }

    #[test]
    fn add_validates_and_counts() {
        assert_eq!(ScalingOp::Add { count: 3 }.disks_after(4), Ok(7));
        assert_eq!(
            ScalingOp::Add { count: 0 }.disks_after(4),
            Err(ScalingError::EmptyAddition)
        );
        assert_eq!(
            ScalingOp::Add { count: 1 }.disks_after(u32::MAX),
            Err(ScalingError::TooManyDisks)
        );
    }

    #[test]
    fn remove_validates_and_counts() {
        assert_eq!(
            ScalingOp::Remove { disks: vec![1, 3] }.disks_after(4),
            Ok(2)
        );
        assert_eq!(
            ScalingOp::Remove { disks: vec![] }.disks_after(4),
            Err(ScalingError::EmptyRemoval)
        );
        assert_eq!(
            ScalingOp::Remove { disks: vec![4] }.disks_after(4),
            Err(ScalingError::RemovalOutOfRange { disk: 4, disks: 4 })
        );
        assert_eq!(
            ScalingOp::Remove { disks: vec![2, 2] }.disks_after(4),
            Err(ScalingError::DuplicateRemoval { disk: 2 })
        );
        assert_eq!(
            ScalingOp::Remove { disks: vec![0, 1] }.disks_after(2),
            Err(ScalingError::WouldRemoveAllDisks)
        );
    }

    #[test]
    fn renumber_matches_paper_example() {
        // Paper §4.2.1: "if disk 1 were removed from the disk set 0,1,2,3
        // and r_{j-1} = 2 then new(r_{j-1}) should become 1".
        let set = RemovedSet::new(&[1], 4).unwrap();
        assert_eq!(set.renumber(2), 1);
        assert_eq!(set.renumber(0), 0);
        assert_eq!(set.renumber(3), 2);
    }

    #[test]
    fn renumber_matches_second_paper_example() {
        // §4.2.1 worked example: remove disk 4 of 0..=5; new(5) = 4.
        let set = RemovedSet::new(&[4], 6).unwrap();
        assert_eq!(set.renumber(5), 4);
        assert_eq!(set.renumber(3), 3);
    }

    #[test]
    fn old_index_round_trips() {
        let set = RemovedSet::new(&[0, 2, 5], 8).unwrap();
        // Survivors: 1,3,4,6,7 -> new indices 0..5.
        let survivors = [1u32, 3, 4, 6, 7];
        for (new_d, &old_d) in survivors.iter().enumerate() {
            assert_eq!(set.renumber(old_d), new_d as u32);
            assert_eq!(set.old_index(new_d as u32), old_d);
        }
    }

    #[test]
    fn removal_list_order_is_irrelevant() {
        let a = RemovedSet::new(&[5, 1, 3], 8).unwrap();
        let b = RemovedSet::new(&[1, 3, 5], 8).unwrap();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_renumber_is_dense_and_ordered(
            removal in proptest::collection::btree_set(0u32..32, 1..8),
        ) {
            let disks = 32u32;
            let removal: Vec<u32> = removal.into_iter().collect();
            prop_assume!((removal.len() as u32) < disks);
            let set = RemovedSet::new(&removal, disks).unwrap();
            let mut expected_new = 0u32;
            for d in 0..disks {
                if !set.contains(d) {
                    prop_assert_eq!(set.renumber(d), expected_new);
                    prop_assert_eq!(set.old_index(expected_new), d);
                    expected_new += 1;
                }
            }
            prop_assert_eq!(expected_new, disks - set.len());
        }

        /// The dense rank table agrees with the original binary-search
        /// renumbering on every surviving disk, for arbitrary removals.
        #[test]
        fn prop_rank_table_matches_binary_search(
            removal in proptest::collection::btree_set(0u32..64, 1..12),
            disks in 64u32..128,
        ) {
            let removal: Vec<u32> = removal.into_iter().collect();
            let set = RemovedSet::new(&removal, disks).unwrap();
            for d in 0..disks {
                if set.contains(d) {
                    prop_assert_eq!(set.rank_table()[d as usize], RemovedSet::REMOVED);
                } else {
                    prop_assert_eq!(set.renumber(d), set.renumber_by_search(d));
                }
            }
        }
    }
}
