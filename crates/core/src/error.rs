//! Error types for scaling-log construction and scaling operations.

use std::fmt;

/// Errors raised when building or extending a [`crate::ScalingLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalingError {
    /// The server must start with at least one disk.
    NoInitialDisks,
    /// An addition of zero disks is meaningless.
    EmptyAddition,
    /// A removal of zero disks is meaningless.
    EmptyRemoval,
    /// A removal names a disk index `>= N_{j-1}`.
    RemovalOutOfRange {
        /// The offending logical disk index.
        disk: u32,
        /// The number of disks at the time of the operation.
        disks: u32,
    },
    /// A removal names the same disk twice.
    DuplicateRemoval {
        /// The duplicated logical disk index.
        disk: u32,
    },
    /// A removal would leave the server with zero disks.
    WouldRemoveAllDisks,
    /// Disk-count arithmetic would overflow `u32`.
    TooManyDisks,
}

impl fmt::Display for ScalingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalingError::NoInitialDisks => {
                write!(f, "a server needs at least one initial disk")
            }
            ScalingError::EmptyAddition => write!(f, "cannot add an empty disk group"),
            ScalingError::EmptyRemoval => write!(f, "cannot remove an empty disk group"),
            ScalingError::RemovalOutOfRange { disk, disks } => write!(
                f,
                "cannot remove disk {disk}: only {disks} disks exist at this epoch"
            ),
            ScalingError::DuplicateRemoval { disk } => {
                write!(f, "disk {disk} listed twice in removal group")
            }
            ScalingError::WouldRemoveAllDisks => {
                write!(f, "removal would leave the server with zero disks")
            }
            ScalingError::TooManyDisks => write!(f, "disk count overflows u32"),
        }
    }
}

impl std::error::Error for ScalingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_disk() {
        let err = ScalingError::RemovalOutOfRange { disk: 9, disks: 4 };
        let msg = err.to_string();
        assert!(msg.contains('9') && msg.contains('4'), "{msg}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ScalingError::EmptyAddition, ScalingError::EmptyAddition);
        assert_ne!(ScalingError::EmptyAddition, ScalingError::EmptyRemoval);
    }
}
