//! The `REMAP_j` functions — the heart of SCADDAR (§4.2, Eqs. 3 & 5).
//!
//! Each scaling operation `j` remaps a block's random number
//! `X_{j-1} -> X_j` such that `D_j = X_j mod N_j` is the block's disk
//! after the operation. The trick satisfying RO2 is that every remap
//! embeds a **fresh source of randomness** — the quotient
//! `q_{j-1} = X_{j-1} div N_{j-1}` — into the new number, instead of
//! reusing the already-spent residue. The cost is that the usable random
//! range shrinks by roughly a factor `N_{j-1}` per operation (§4.3;
//! quantified in [`crate::bounds`]).
//!
//! Overflow note: all arithmetic stays within `u64`. For removal,
//! `X_j = q·N_j + new(r) <= q·N_{j-1} + N_j <= X_{j-1} + N_j`, and whenever
//! `X_{j-1}` is large enough for that to matter, `q >= N_j` so
//! `q·N_j <= q·(N_{j-1}-1) = q·N_{j-1} - q <= X_{j-1} - q` keeps the sum
//! below `X_{j-1}`. For addition, `X_j <= q_{j-1} + N_{j-1} << 2^64`.
//! Debug builds carry overflow checks; the property tests sweep the
//! extremes of the 64-bit range.

use crate::ops::RemovedSet;

/// The outcome of one `REMAP_j` application to one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Remapped {
    /// The new random number `X_j`.
    pub x: u64,
    /// Did the block change disks (`D_j != D_{j-1}` in post-op numbering
    /// semantics — see [`remap_remove`] for the removal subtlety)?
    pub moved: bool,
}

/// Definition 4.1: splits `X` into `(q, r) = (X div N, X mod N)`.
///
/// `r` is the block's disk at this epoch; `q` is the remaining
/// randomness that later operations will draw on.
#[inline]
pub fn split_qr(x: u64, n: u64) -> (u64, u64) {
    debug_assert!(n > 0, "disk count must be positive");
    (x / n, x % n)
}

/// `REMAP_j` for a **disk addition** (Eq. 5), `n_prev -> n_new` disks,
/// `n_new > n_prev`.
///
/// The fresh random draw is `t = q_{j-1} mod N_j`:
/// * `t <  N_{j-1}` — the block *stays* on `r_{j-1}`
///   (`X_j = (q_{j-1} div N_j)·N_j + r_{j-1}`, Eq. 5a);
/// * `t >= N_{j-1}` — the block *moves* to added disk `t`
///   (`X_j = (q_{j-1} div N_j)·N_j + t = q_{j-1}`, Eq. 5b).
///
/// Since `t` is uniform over `0..N_j`, exactly the optimal fraction
/// `(N_j - N_{j-1})/N_j` of blocks moves (RO1) and movers land uniformly
/// on the added disks (RO2).
#[inline]
pub fn remap_add(x_prev: u64, n_prev: u64, n_new: u64) -> Remapped {
    debug_assert!(n_new > n_prev && n_prev > 0);
    let (q, r) = split_qr(x_prev, n_prev);
    let t = q % n_new;
    if t < n_prev {
        Remapped {
            x: (q / n_new) * n_new + r,
            moved: false,
        }
    } else {
        // (q div N_j)·N_j + (q mod N_j) == q.
        Remapped { x: q, moved: true }
    }
}

/// `REMAP_j` for a **disk removal** (Eq. 3), with survivors renumbered by
/// rank (the paper's `new()`).
///
/// * `r_{j-1}` survives — the block stays put; its disk merely gets a new
///   logical index: `X_j = q_{j-1}·N_j + new(r_{j-1})` (Eq. 3a). `moved`
///   is `false`.
/// * `r_{j-1}` is removed — the block must leave: `X_j = q_{j-1}`
///   (Eq. 3b), so its new disk is `q_{j-1} mod N_j`, uniform over the
///   survivors. `moved` is `true`.
///
/// `n_prev` is `N_{j-1}`; `N_j = n_prev - removed.len()`.
#[inline]
pub fn remap_remove(x_prev: u64, n_prev: u64, removed: &RemovedSet) -> Remapped {
    debug_assert!(n_prev > u64::from(removed.len()));
    let n_new = n_prev - u64::from(removed.len());
    let (q, r) = split_qr(x_prev, n_prev);
    let r32 = r as u32; // r < n_prev <= u32::MAX + 1, and disk counts are u32.
    if removed.contains(r32) {
        Remapped { x: q, moved: true }
    } else {
        Remapped {
            x: q * n_new + u64::from(removed.renumber(r32)),
            moved: false,
        }
    }
}

/// The **naive** single-operation remap the paper rejects (Eq. 2,
/// additions only): reuse `X_0`'s residue directly.
///
/// `X_j = X_0 mod`-style reuse satisfies RO1 and AO1 but, from the second
/// operation on, the moved blocks are *not* uniformly sourced (Fig. 1:
/// disks 0 and 2 contribute nothing to the new disk). Exposed here so the
/// baseline crate and experiment E1/E2 can reproduce that failure
/// exactly; production code paths never call it.
#[inline]
pub fn remap_add_naive(x0: u64, n_prev: u64, n_new: u64) -> Remapped {
    debug_assert!(n_new > n_prev && n_prev > 0);
    let d_new = x0 % n_new;
    if d_new >= n_prev {
        // Block lands on one of the added disks.
        Remapped { x: x0, moved: true }
    } else {
        // Block keeps whatever disk the previous epoch gave it; the
        // caller keeps X unchanged because the naive scheme always
        // re-derives from X_0.
        Remapped {
            x: x0,
            moved: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn split_qr_reconstructs() {
        let (q, r) = split_qr(28, 6);
        assert_eq!((q, r), (4, 4));
        assert_eq!(q * 6 + r, 28);
    }

    /// §4.2.1 worked example, case 1: block on removed disk 4 of 0..=5,
    /// X_{j-1} = 28 -> X_j = q = 4, new disk index 4 (physical "Disk 5").
    #[test]
    fn paper_removal_example_moved_block() {
        let removed = RemovedSet::new(&[4], 6).unwrap();
        let out = remap_remove(28, 6, &removed);
        assert!(out.moved);
        assert_eq!(out.x, 4);
        assert_eq!(out.x % 5, 4); // 4th disk of the survivors == old Disk 5
    }

    /// §4.2.1 worked example, case 2: block on surviving disk 5,
    /// X_{j-1} = 41 -> X_j = q·N_j + new(5) = 6·5 + 4 = 34; stays put.
    #[test]
    fn paper_removal_example_staying_block() {
        let removed = RemovedSet::new(&[4], 6).unwrap();
        let out = remap_remove(41, 6, &removed);
        assert!(!out.moved);
        assert_eq!(out.x, 34);
        assert_eq!(out.x % 5, 4); // still the disk formerly numbered 5
    }

    #[test]
    fn addition_keeps_or_moves_to_added_disks_only() {
        let n_prev = 4u64;
        let n_new = 6u64;
        for x in 0..100_000u64 {
            let before = x % n_prev;
            let out = remap_add(x, n_prev, n_new);
            let after = out.x % n_new;
            if out.moved {
                assert!(
                    after >= n_prev,
                    "x={x} claimed moved but landed on old disk {after}"
                );
            } else {
                assert_eq!(after, before, "x={x} claimed stay but changed disk");
            }
        }
    }

    #[test]
    fn addition_move_fraction_is_optimal() {
        // Over a full residue cycle of q the fraction moved is exactly
        // (n_new - n_prev)/n_new; over a large uniform sample it is close.
        let n_prev = 4u64;
        let n_new = 5u64;
        let total = 1_000_000u64;
        let moved = (0..total)
            .filter(|&x| remap_add(x, n_prev, n_new).moved)
            .count() as f64;
        let frac = moved / total as f64;
        assert!((frac - 0.2).abs() < 0.01, "moved fraction {frac}");
    }

    #[test]
    fn removal_moves_exactly_the_removed_disks_blocks() {
        let n_prev = 5u64;
        let removed = RemovedSet::new(&[2], 5).unwrap();
        for x in 0..50_000u64 {
            let out = remap_remove(x, n_prev, &removed);
            assert_eq!(out.moved, x % n_prev == 2);
            assert!(out.x % 4 < 4);
        }
    }

    #[test]
    fn removal_group_renumbers_consistently() {
        // Remove disks 1 and 3 of 0..=4; survivors 0,2,4 -> 0,1,2.
        let removed = RemovedSet::new(&[1, 3], 5).unwrap();
        for x in 0..10_000u64 {
            let r = x % 5;
            let out = remap_remove(x, 5, &removed);
            match r {
                0 => assert!(!out.moved && out.x.is_multiple_of(3)),
                2 => assert!(!out.moved && out.x % 3 == 1),
                4 => assert!(!out.moved && out.x % 3 == 2),
                _ => assert!(out.moved),
            }
        }
    }

    #[test]
    fn fresh_randomness_is_preserved_for_future_ops() {
        // Eq. 3a stores q_{j-1} as the new quotient: X_j div N_j == q_{j-1}.
        let removed = RemovedSet::new(&[4], 6).unwrap();
        let x_prev = 41u64;
        let (q_prev, _) = split_qr(x_prev, 6);
        let out = remap_remove(x_prev, 6, &removed);
        assert_eq!(out.x / 5, q_prev);
        // Eq. 5a stores q_{j-1} div N_j: X_j div N_j == q_{j-1} div N_j.
        let x_prev = 1234u64;
        let (q_prev, _) = split_qr(x_prev, 4);
        let out = remap_add(x_prev, 4, 6);
        assert_eq!(out.x / 6, q_prev / 6);
    }

    proptest! {
        /// No overflow and disk indices stay in range across the whole
        /// u64 input space (overflow checks are on under `cargo test`).
        #[test]
        fn prop_add_in_range(
            x in any::<u64>(),
            n_prev in 1u64..5000,
            extra in 1u64..5000,
        ) {
            let n_new = n_prev + extra;
            let out = remap_add(x, n_prev, n_new);
            prop_assert!(out.x % n_new < n_new);
            if !out.moved {
                prop_assert_eq!(out.x % n_new, x % n_prev);
            } else {
                prop_assert!(out.x % n_new >= n_prev);
            }
        }

        #[test]
        fn prop_remove_in_range(
            x in any::<u64>(),
            n_prev in 2u64..5000,
            seedling in any::<u64>(),
        ) {
            // Remove one pseudo-randomly chosen disk.
            let victim = (seedling % n_prev) as u32;
            let removed = RemovedSet::new(&[victim], n_prev as u32).unwrap();
            let out = remap_remove(x, n_prev, &removed);
            let n_new = n_prev - 1;
            prop_assert!(out.x % n_new < n_new);
            prop_assert_eq!(out.moved, x % n_prev == u64::from(victim));
        }

        /// The documented non-overflow argument, checked at the extremes.
        #[test]
        fn prop_no_overflow_near_u64_max(
            offset in 0u64..1_000_000,
            n_prev in 2u64..1_000_000,
        ) {
            let x = u64::MAX - offset;
            let removed = RemovedSet::new(&[0], n_prev as u32).unwrap();
            let _ = remap_remove(x, n_prev, &removed);
            let _ = remap_add(x, n_prev, n_prev + 1);
        }

        /// RO2 for a single addition: among moved blocks, all added disks
        /// are hit roughly equally.
        #[test]
        fn prop_added_disks_hit_uniformly(seed in any::<u32>()) {
            let n_prev = 4u64;
            let n_new = 8u64;
            let mut counts = [0u64; 8];
            // A cheap uniform sweep: consecutive x values cycle residues.
            let base = u64::from(seed);
            for x in base..base + 200_000 {
                let out = remap_add(x, n_prev, n_new);
                if out.moved {
                    counts[(out.x % n_new) as usize] += 1;
                }
            }
            for &old_disk_hits in &counts[..4] {
                prop_assert_eq!(old_disk_hits, 0);
            }
            let hits: Vec<u64> = counts[4..].to_vec();
            let min = *hits.iter().min().unwrap() as f64;
            let max = *hits.iter().max().unwrap() as f64;
            prop_assert!(max / min < 1.1, "uneven added-disk usage {hits:?}");
        }
    }
}
