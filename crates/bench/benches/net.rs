//! E21 — the price of the socket: wire codec throughput and the
//! loopback request path.
//!
//! Three layers, so a regression is attributable:
//!
//! 1. `net_codec` — encode/decode of the hot frames in isolation (the
//!    pure CPU cost a request pays before/after the kernel);
//! 2. `net_request` — one `locate` round-trip over a real loopback
//!    socket through `scaddard` (syscalls + framing + dispatch);
//! 3. `net_pipeline` — 16 pipelined locates per wakeup, the client
//!    library's batching path (amortizes the per-write syscall cost).
//!
//! The end-to-end percentile/overhead numbers in `BENCH_net.json` come
//! from the seeded load generator (`scaddard-load`), not from here —
//! these groups exist for profiling the components.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scaddar_net::{decode_frame, Frame, NetClient, NetServerConfig, Scaddard};
use scaddar_obs::{MonotonicClock, Registry, Tracer};
use std::hint::black_box;
use std::sync::Arc;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_codec");
    let locate = Frame::Locate {
        object: 3,
        block: 31_337,
    };
    let batch = Frame::BatchLocated {
        epoch: 4,
        disks: 10,
        locations: (0..64).map(|i| i % 10).collect(),
    };
    group.bench_function(BenchmarkId::from_parameter("encode_locate"), |b| {
        let mut buf = Vec::with_capacity(64);
        b.iter(|| {
            buf.clear();
            black_box(locate.encode(&mut buf))
        });
    });
    group.bench_function(BenchmarkId::from_parameter("encode_batch64"), |b| {
        let mut buf = Vec::with_capacity(1024);
        b.iter(|| {
            buf.clear();
            black_box(batch.encode(&mut buf))
        });
    });
    let locate_bytes = locate.to_bytes();
    let batch_bytes = batch.to_bytes();
    group.bench_function(BenchmarkId::from_parameter("decode_locate"), |b| {
        b.iter(|| black_box(decode_frame(black_box(&locate_bytes)).unwrap()));
    });
    group.bench_function(BenchmarkId::from_parameter("decode_batch64"), |b| {
        b.iter(|| black_box(decode_frame(black_box(&batch_bytes)).unwrap()));
    });
    group.finish();
}

fn boot() -> Scaddard {
    let mut server =
        cmsim::CmServer::new(cmsim::ServerConfig::new(4).with_catalog_seed(0xBE)).unwrap();
    server.add_object(10_000).unwrap();
    let registry = Registry::new();
    let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
    Scaddard::bind(
        "127.0.0.1:0",
        Arc::new(cmsim::SharedServer::new(server)),
        NetServerConfig::default(),
        &registry,
        tracer,
    )
    .unwrap()
}

fn bench_request_path(c: &mut Criterion) {
    let daemon = boot();
    let client = NetClient::connect(daemon.local_addr());
    let mut group = c.benchmark_group("net_request");
    group.bench_function(BenchmarkId::from_parameter("locate_roundtrip"), |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(client.locate(0, black_box(i)).expect("locate"))
        });
    });
    group.finish();

    let mut group = c.benchmark_group("net_pipeline");
    let requests: Vec<Frame> = (0..16)
        .map(|i| Frame::Locate {
            object: 0,
            block: i * 131,
        })
        .collect();
    group.bench_function(BenchmarkId::from_parameter("locate_x16"), |b| {
        b.iter(|| black_box(client.pipeline(black_box(&requests)).expect("pipeline")));
    });
    group.finish();
    drop(client);
    daemon.shutdown();
}

criterion_group!(benches, bench_codec, bench_request_path);
criterion_main!(benches);
