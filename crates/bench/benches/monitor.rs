//! E10 — the price of health: monitor-attached vs detached hot paths.
//!
//! The health monitor is a *polled* layer: the serving loop runs
//! uninstrumented, and an operator-frequency poll (here one poll every
//! 64k locates, i.e. roughly once a minute at realistic request rates)
//! pays for the RO1 audit-trail sweep, the census chi-square, and the
//! §4.3 budget simulation. The amortized overhead on the hot path must
//! stay within 10%; `bench_report` condenses these groups into
//! `BENCH_monitor.json` and CI's health-smoke job gates on the locate
//! ratio.

use cmsim::{CmServer, ServerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scaddar_core::{Scaddar, ScaddarConfig, ScalingOp};
use scaddar_monitor::{HealthMonitor, MonitorConfig};
use scaddar_obs::VirtualClock;
use std::hint::black_box;
use std::sync::Arc;

/// A churned engine: 8 disks, one 10k-block object, `ops` scale ops.
fn churned_engine(ops: usize) -> Scaddar {
    let mut engine = Scaddar::new(ScaddarConfig::new(8).with_catalog_seed(42)).unwrap();
    engine.add_object(10_000);
    for i in 0..ops {
        let op = if i % 2 == 0 {
            ScalingOp::remove_one(0)
        } else {
            ScalingOp::Add { count: 1 }
        };
        engine.scale(op).expect("valid churn op");
    }
    engine
}

/// A monitor riding a virtual clock, synced to `engine`.
fn monitor_for(engine: &Scaddar) -> HealthMonitor {
    HealthMonitor::for_engine(
        MonitorConfig::default(),
        Arc::new(VirtualClock::new()),
        engine,
    )
}

/// Locate polls are amortized over this many lookups — the monitor is
/// an operator-cadence observer, not a per-request tax.
const LOCATE_POLL_INTERVAL: u64 = 65_536;

/// Tick polls ride the cheap O(disks) server census, so they can afford
/// a much tighter cadence.
const TICK_POLL_INTERVAL: u64 = 1_024;

/// The headline comparison: the same cached lookup loop with and
/// without a health monitor polling it. The attached loop pays, every
/// [`LOCATE_POLL_INTERVAL`] lookups, one full observation round: the
/// engine's RO1 movement sweep, an O(blocks) census derivation, the
/// streaming chi-square, and the budget simulation.
fn bench_locate_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_locate_overhead");
    {
        let engine = churned_engine(8);
        let id = engine.catalog().objects()[0].id;
        group.bench_with_input(BenchmarkId::from_parameter("detached"), &(), |b, _| {
            let mut n = 0u64;
            b.iter(|| {
                n += 1;
                black_box(engine.locate(id, black_box(n % 10_000)).expect("valid"))
            });
        });
    }
    {
        let engine = churned_engine(8);
        let id = engine.catalog().objects()[0].id;
        let mut monitor = monitor_for(&engine);
        group.bench_with_input(BenchmarkId::from_parameter("attached"), &(), |b, _| {
            let mut n = 0u64;
            b.iter(|| {
                n += 1;
                if n.is_multiple_of(LOCATE_POLL_INTERVAL) {
                    monitor.observe_engine(&engine);
                    monitor.observe_census(&engine.load_distribution());
                }
                black_box(engine.locate(id, black_box(n % 10_000)).expect("valid"))
            });
        });
    }
    group.finish();
}

/// Service-round overhead: an idle server's `tick` with and without the
/// monitor polling the store census (an O(disks) read) each
/// [`TICK_POLL_INTERVAL`] rounds.
fn bench_tick_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_tick_overhead");
    let server_with_load = || {
        let mut server = CmServer::new(ServerConfig::new(8).with_catalog_seed(42)).unwrap();
        server.add_object(5_000).expect("capacity for one object");
        server
    };
    {
        let mut server = server_with_load();
        group.bench_with_input(BenchmarkId::from_parameter("detached"), &(), |b, _| {
            b.iter(|| {
                server.tick();
                black_box(server.backlog())
            });
        });
    }
    {
        let mut server = server_with_load();
        let mut monitor = monitor_for(server.engine());
        group.bench_with_input(BenchmarkId::from_parameter("attached"), &(), |b, _| {
            let mut n = 0u64;
            b.iter(|| {
                n += 1;
                server.tick();
                if n.is_multiple_of(TICK_POLL_INTERVAL) {
                    monitor.observe_census(&server.load_census());
                }
                black_box(server.backlog())
            });
        });
    }
    group.finish();
}

/// The raw poll primitives, un-amortized, for the budget table in
/// `DESIGN.md` §10: one census observation (ring push + mean +
/// chi-square + rule update), one full engine observation (movement
/// sweep + tracker sync + budget simulation), and one report render.
fn bench_poll_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_primitives");
    let engine = churned_engine(8);
    let census = engine.load_distribution();
    let mut monitor = monitor_for(&engine);
    group.bench_function(BenchmarkId::from_parameter("observe_census"), |b| {
        b.iter(|| monitor.observe_census(black_box(&census)));
    });
    group.bench_function(BenchmarkId::from_parameter("observe_engine"), |b| {
        b.iter(|| monitor.observe_engine(black_box(&engine)));
    });
    group.bench_function(BenchmarkId::from_parameter("report_render"), |b| {
        b.iter(|| black_box(monitor.report().render()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_locate_overhead,
    bench_tick_overhead,
    bench_poll_primitives
);
criterion_main!(benches);
