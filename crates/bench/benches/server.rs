//! E9 support — simulator throughput: service rounds per second under
//! load, and the cost of committing a scaling operation (plan + queue)
//! versus executing it offline.

use cmsim::{CmServer, ServerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scaddar_core::ScalingOp;
use std::hint::black_box;

fn loaded_server(streams: u32) -> CmServer {
    let mut s = CmServer::new(ServerConfig::new(8).with_bandwidth(32).with_catalog_seed(9))
        .expect("server builds");
    let obj = s.add_object(100_000).expect("ingest");
    for _ in 0..streams {
        let id = s.open_stream(obj).expect("admitted");
        // Spread positions so the round isn't a single-disk convoy.
        let pos = id.0 * 97 % 100_000;
        s.stream_mut(id).expect("live").seek(pos);
    }
    s
}

fn bench_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_tick");
    for streams in [10u32, 100, 200] {
        group.throughput(Throughput::Elements(u64::from(streams)));
        group.bench_with_input(BenchmarkId::from_parameter(streams), &streams, |b, &n| {
            let mut server = loaded_server(n);
            b.iter(|| {
                server.tick();
                black_box(server.metrics().len())
            });
        });
    }
    group.finish();
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_scale_100k_blocks");
    group.bench_function("plan_and_queue_online", |b| {
        b.iter_batched(
            || loaded_server(0),
            |mut s| black_box(s.scale(ScalingOp::Add { count: 1 }).expect("scale")),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("execute_offline", |b| {
        b.iter_batched(
            || loaded_server(0),
            |mut s| black_box(s.scale_offline(ScalingOp::Add { count: 1 }).expect("scale")),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_tick, bench_scale);
criterion_main!(benches);
