//! E8 — the cost of `AF()`: nanoseconds per block location, as a
//! function of the number of scaling operations `j` and the generator
//! family.
//!
//! AO1 claims lookup is "a low complexity function" — a chain of `j`
//! mod/div pairs after one PRNG evaluation. Expect: tens of ns at
//! `j = 0`, growing linearly by a few ns per operation; the O(1)
//! SplitMix64 and O(log i) PCG/LCG families differ only in the constant
//! for `X_0`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scaddar_bench::churn_log;
use scaddar_core::{locate, Scaddar, ScaddarConfig, ScalingOp};
use scaddar_prng::{Bits, BlockRandoms, RngKind};
use std::hint::black_box;

fn bench_locate_vs_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("af_locate_vs_epoch");
    let seq = BlockRandoms::new(RngKind::SplitMix64, 42, Bits::B32);
    for ops in [0usize, 2, 4, 8, 16, 32] {
        let log = churn_log(8, ops);
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 10_000;
                let x0 = seq.value_at(black_box(i));
                black_box(locate(x0, &log))
            });
        });
    }
    group.finish();
}

fn bench_x0_by_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("x0_indexed_access");
    for kind in RngKind::ALL {
        let seq = BlockRandoms::new(kind, 42, Bits::B32);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                // Mid-object index: the O(i) xorshift fallback pays here,
                // the jumpable generators do not.
                i = (i + 17) % 4_096;
                black_box(seq.value_at(black_box(i)))
            });
        });
    }
    group.finish();
}

fn bench_sequential_cursor(c: &mut Criterion) {
    let mut group = c.benchmark_group("x0_sequential_cursor");
    for kind in RngKind::ALL {
        let seq = BlockRandoms::new(kind, 42, Bits::B32);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for v in seq.cursor().take(1_000) {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

/// Engine lookups with the epoch-tagged X-cache vs the stateless O(j)
/// fold, at two log depths. The cached path is one table read and one
/// `mod`; it should be flat in `j` while the oracle grows linearly.
fn bench_cached_vs_oracle_locate(c: &mut Criterion) {
    let mut group = c.benchmark_group("af_cached_vs_oracle");
    for ops in [8usize, 32] {
        let mut engine = Scaddar::new(ScaddarConfig::new(8).with_catalog_seed(42)).unwrap();
        let id = engine.add_object(10_000);
        for i in 0..ops {
            let op = if i % 2 == 0 {
                ScalingOp::remove_one(0)
            } else {
                ScalingOp::Add { count: 1 }
            };
            engine.scale(op).expect("valid churn op");
        }
        let obj = *engine.catalog().object(id).expect("object exists");
        let seq = engine.catalog().randoms(&obj);
        group.bench_with_input(BenchmarkId::new("oracle", ops), &ops, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 10_000;
                let x0 = seq.value_at(black_box(i));
                black_box(locate(x0, engine.log()))
            });
        });
        group.bench_with_input(BenchmarkId::new("cached", ops), &ops, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 10_000;
                black_box(engine.locate(id, black_box(i)).expect("valid block"))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_locate_vs_epoch,
    bench_x0_by_rng,
    bench_sequential_cursor,
    bench_cached_vs_oracle_locate
);
criterion_main!(benches);
