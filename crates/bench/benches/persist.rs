//! Metadata persistence costs: snapshot encode/decode and the bulk
//! `locate_all` path that restores use to rebuild residency.
//!
//! Expect: snapshots are microseconds (they are tiny — that is the
//! paper's point); `locate_all` beats per-block `locate` by a large
//! factor for the O(i)-indexed generator family and a modest one for the
//! counter-based default.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scaddar_core::{Scaddar, ScaddarConfig, ScalingOp};
use scaddar_prng::RngKind;
use std::hint::black_box;

fn engine_with_history(rng: RngKind) -> (Scaddar, scaddar_core::ObjectId) {
    let mut e = Scaddar::new(ScaddarConfig::new(8).with_catalog_seed(4).with_rng(rng)).unwrap();
    let id = e.add_object(50_000);
    for i in 0..8 {
        if i % 2 == 0 {
            e.scale(ScalingOp::remove_one(0)).unwrap();
        } else {
            e.scale(ScalingOp::Add { count: 1 }).unwrap();
        }
    }
    (e, id)
}

fn bench_snapshot(c: &mut Criterion) {
    let (engine, _) = engine_with_history(RngKind::SplitMix64);
    let bytes = engine.snapshot();
    let mut group = c.benchmark_group("metadata_snapshot");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| b.iter(|| black_box(engine.snapshot())));
    group.bench_function("decode", |b| {
        b.iter(|| black_box(Scaddar::from_snapshot(&bytes, 0.05).expect("valid snapshot")))
    });
    group.finish();
}

fn bench_bulk_locate(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_locate_50k_blocks");
    group.throughput(Throughput::Elements(50_000));
    for rng in [RngKind::SplitMix64, RngKind::XorShift64Star] {
        let (engine, id) = engine_with_history(rng);
        group.bench_with_input(BenchmarkId::new("locate_all", rng), &rng, |b, _| {
            b.iter(|| black_box(engine.locate_all(id).expect("object exists")))
        });
        // Per-block indexed access, for contrast — quadratic for
        // xorshift (O(i) per call), so sample a slice to keep it sane.
        group.bench_with_input(
            BenchmarkId::new("locate_first_1000_individually", rng),
            &rng,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0u32;
                    for blk in 0..1_000 {
                        acc ^= engine.locate(id, blk).expect("in range").0;
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_snapshot, bench_bulk_locate);
criterion_main!(benches);
