//! E11 support — `place()` cost across placement strategies after a
//! mixed schedule, and the cost of applying a scaling operation.
//!
//! Expect: round-robin/full-redistribution ~1 ns (one mod); SCADDAR ~ns
//! per logged operation; jump hash ~log(N) loop iterations; consistent
//! hashing a BTree probe; directory a hash lookup.

use criterion::{criterion_group, criterion_main, Criterion};
use scaddar_baselines::{
    synthetic_population, BlockKey, ConsistentHashStrategy, DirectoryStrategy, FullRedistStrategy,
    JumpHashStrategy, NaiveStrategy, PlacementStrategy, RoundRobinStrategy, ScaddarStrategy,
};
use scaddar_core::ScalingOp;
use std::hint::black_box;

fn schedule() -> Vec<ScalingOp> {
    vec![
        ScalingOp::Add { count: 2 },
        ScalingOp::remove_one(3),
        ScalingOp::Add { count: 1 },
        ScalingOp::remove_one(0),
        ScalingOp::Add { count: 2 },
        ScalingOp::Add { count: 1 },
        ScalingOp::remove_one(5),
        ScalingOp::Add { count: 1 },
    ]
}

fn scheduled<S: PlacementStrategy>(mut s: S) -> S {
    for op in schedule() {
        s.apply(&op).expect("valid schedule");
    }
    s
}

fn bench_place(c: &mut Criterion) {
    let keys = synthetic_population(10_000, 3);
    let mut group = c.benchmark_group("place_after_8_ops");

    let mut dir = DirectoryStrategy::new(8, 1).expect("dir");
    dir.register(&keys);
    let strategies: Vec<Box<dyn PlacementStrategy>> = vec![
        Box::new(scheduled(ScaddarStrategy::new(8).expect("scaddar"))),
        Box::new(scheduled(NaiveStrategy::new(8).expect("naive"))),
        Box::new(scheduled(FullRedistStrategy::new(8).expect("full"))),
        Box::new(scheduled(RoundRobinStrategy::new(8).expect("rr"))),
        Box::new(scheduled(JumpHashStrategy::new(8).expect("jump"))),
        Box::new(scheduled(ConsistentHashStrategy::new(8, 256).expect("ch"))),
        Box::new(scheduled(dir)),
    ];
    for s in &strategies {
        group.bench_function(s.name(), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % keys.len();
                black_box(s.place(black_box(keys[i])))
            });
        });
    }
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_one_addition");
    group.bench_function("scaddar_log_push", |b| {
        b.iter_batched(
            || ScaddarStrategy::new(8).expect("scaddar"),
            |mut s| {
                s.apply(&ScalingOp::Add { count: 1 }).expect("valid");
                black_box(s.disks())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("consistent_hash_ring_insert", |b| {
        b.iter_batched(
            || ConsistentHashStrategy::new(8, 256).expect("ch"),
            |mut s| {
                s.apply(&ScalingOp::Add { count: 1 }).expect("valid");
                black_box(s.disks())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    // The directory must touch every entry — the Appendix A cost.
    let keys: Vec<BlockKey> = synthetic_population(100_000, 4);
    group.bench_function("directory_rewrite_100k", |b| {
        b.iter_batched(
            || {
                let mut d = DirectoryStrategy::new(8, 1).expect("dir");
                d.register(&keys);
                d
            },
            |mut d| {
                d.apply(&ScalingOp::Add { count: 1 }).expect("valid");
                black_box(d.disks())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_place, bench_apply);
criterion_main!(benches);
