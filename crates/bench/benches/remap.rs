//! E8 support — raw `REMAP_j` throughput and whole-operation `RF()`
//! planning cost.
//!
//! `remap_add`/`remap_remove` are a handful of integer divisions; expect
//! a few ns each. Planning a scaling operation over a 100k-block catalog
//! is `O(B·j)`; expect single-digit milliseconds at `j = 8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scaddar_bench::churn_log;
use scaddar_core::{plan_last_op, Catalog, RemovedSet, ScalingLog, ScalingOp};
use scaddar_core::remap::{remap_add, remap_remove};
use scaddar_prng::{Bits, RngKind};
use std::hint::black_box;

fn bench_remap_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("remap_primitive");
    group.throughput(Throughput::Elements(1));
    group.bench_function("add", |b| {
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(remap_add(black_box(x), 8, 9))
        });
    });
    let removed = RemovedSet::new(&[3], 8).expect("valid removal");
    group.bench_function("remove", |b| {
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(remap_remove(black_box(x), 8, &removed))
        });
    });
    group.finish();
}

fn catalog_100k() -> Catalog {
    let mut c = Catalog::new(RngKind::SplitMix64, Bits::B32, 7);
    for _ in 0..20 {
        c.add_object(5_000);
    }
    c
}

fn bench_plan_operation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rf_plan_100k_blocks");
    group.throughput(Throughput::Elements(100_000));
    let catalog = catalog_100k();
    for prior_ops in [0usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("addition_after", prior_ops),
            &prior_ops,
            |b, &prior| {
                b.iter_batched(
                    || {
                        let mut log = churn_log(8, prior);
                        log.push(&ScalingOp::Add { count: 1 }).expect("valid add");
                        log
                    },
                    |log: ScalingLog| black_box(plan_last_op(&catalog, &log)),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_remap_primitives, bench_plan_operation);
criterion_main!(benches);
