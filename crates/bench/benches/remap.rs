//! E8 support — raw `REMAP_j` throughput, whole-operation `RF()`
//! planning cost, and the bulk-engine comparisons: compiled
//! [`RemapPipeline`] fold vs the record-by-record reference fold, and
//! serial vs parallel planning over a million-block catalog.
//!
//! `remap_add`/`remap_remove` are a handful of integer divisions; expect
//! a few ns each. Planning a scaling operation over a 100k-block catalog
//! is `O(B·j)`; expect single-digit milliseconds at `j = 8`. The
//! `bench_report` binary turns the emitted JSON into `BENCH_remap.json`
//! speedup ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scaddar_bench::churn_log;
use scaddar_core::address::x_at_current_epoch;
use scaddar_core::remap::{remap_add, remap_remove};
use scaddar_core::{
    plan_last_op, plan_last_op_parallel, Catalog, RemapPipeline, RemovedSet, ScalingLog, ScalingOp,
};
use scaddar_prng::{Bits, RngKind};
use std::hint::black_box;

fn bench_remap_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("remap_primitive");
    group.throughput(Throughput::Elements(1));
    group.bench_function("add", |b| {
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(remap_add(black_box(x), 8, 9))
        });
    });
    let removed = RemovedSet::new(&[3], 8).expect("valid removal");
    group.bench_function("remove", |b| {
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(remap_remove(black_box(x), 8, &removed))
        });
    });
    group.finish();
}

fn catalog_100k() -> Catalog {
    let mut c = Catalog::new(RngKind::SplitMix64, Bits::B32, 7);
    for _ in 0..20 {
        c.add_object(5_000);
    }
    c
}

fn bench_plan_operation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rf_plan_100k_blocks");
    group.throughput(Throughput::Elements(100_000));
    let catalog = catalog_100k();
    for prior_ops in [0usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("addition_after", prior_ops),
            &prior_ops,
            |b, &prior| {
                b.iter_batched(
                    || {
                        let mut log = churn_log(8, prior);
                        log.push(&ScalingOp::Add { count: 1 }).expect("valid add");
                        log
                    },
                    |log: ScalingLog| black_box(plan_last_op(&catalog, &log)),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

/// Compiled pipeline vs record-by-record reference fold: a 256-block
/// batch folded `X_0 → X_j` at increasing log depth. Same work, same
/// answers. The record path walks each block through the log one record
/// at a time (enum dispatch + a hardware division per mod/div); the
/// pipeline batch-folds step-outer with precomputed reciprocals, so the
/// per-block multiply chains overlap instead of serializing on `div`
/// latency.
fn bench_pipeline_vs_fold(c: &mut Criterion) {
    const BATCH: usize = 256;
    let mut group = c.benchmark_group("x_fold");
    group.throughput(Throughput::Elements(BATCH as u64));
    let x0s: Vec<u64> = (0..BATCH as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    for j in [8usize, 16, 32] {
        let log = churn_log(8, j);
        let pipeline = RemapPipeline::compile(&log);
        group.bench_with_input(BenchmarkId::new("records", j), &j, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &x0 in &x0s {
                    acc = acc.wrapping_add(x_at_current_epoch(black_box(x0), &log));
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("pipeline", j), &j, |b, _| {
            b.iter_batched(
                || x0s.clone(),
                |mut xs| {
                    pipeline.fold_batch(&mut xs);
                    black_box(xs)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn catalog_1m() -> Catalog {
    let mut c = Catalog::new(RngKind::SplitMix64, Bits::B32, 7);
    for _ in 0..20 {
        c.add_object(50_000);
    }
    c
}

/// Serial vs parallel `RF()` planning over a 1M-block catalog at `j = 9`
/// (8 churn ops + the planned addition). The parallel path folds each
/// chunk through a compiled prefix pipeline on scoped threads; on a
/// multi-core runner it should scale near-linearly.
fn bench_plan_serial_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("rf_plan_1m_blocks");
    group.throughput(Throughput::Elements(1_000_000));
    group.sample_size(10);
    let catalog = catalog_1m();
    let mut log = churn_log(8, 8);
    log.push(&ScalingOp::Add { count: 1 }).expect("valid add");
    group.bench_function("serial", |b| {
        b.iter(|| black_box(plan_last_op(&catalog, &log)));
    });
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    group.bench_with_input(
        BenchmarkId::new("parallel", threads),
        &threads,
        |b, &threads| {
            b.iter(|| black_box(plan_last_op_parallel(&catalog, &log, threads)));
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_remap_primitives,
    bench_plan_operation,
    bench_pipeline_vs_fold,
    bench_plan_serial_vs_parallel
);
criterion_main!(benches);
