//! E9 — the price of watching: instrumented vs bare hot paths.
//!
//! The observability layer budgets one weak counter increment (a
//! relaxed load + store pair, no locked read-modify-write) per
//! `locate`; the counter doubles as the 1-in-1024 latency sampling
//! basis. The instrumented engine must stay within a few percent of
//! bare. `bench_report` condenses these groups into `BENCH_obs.json`;
//! CI's obs-smoke job fails if the locate overhead ratio exceeds 1.10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scaddar_core::{
    plan_last_op_parallel, plan_last_op_parallel_instrumented, EngineStats, Scaddar, ScaddarConfig,
    ScalingOp,
};
use scaddar_obs::{
    Counter, Histogram, MonotonicClock, Profiler, Registry, StateHandle, ThreadState, Tracer,
    VirtualClock,
};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A churned engine: 8 disks, one 10k-block object, `ops` scale ops.
fn churned_engine(ops: usize) -> Scaddar {
    let mut engine = Scaddar::new(ScaddarConfig::new(8).with_catalog_seed(42)).unwrap();
    engine.add_object(10_000);
    for i in 0..ops {
        let op = if i % 2 == 0 {
            ScalingOp::remove_one(0)
        } else {
            ScalingOp::Add { count: 1 }
        };
        engine.scale(op).expect("valid churn op");
    }
    engine
}

/// The headline comparison: the same cached lookup with and without
/// metric handles attached. `bare` pays one predicted-not-taken branch;
/// `instrumented` adds a weak counter increment (and, every 1024th
/// call, two clock reads plus a histogram record).
fn bench_locate_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_locate_overhead");
    for (label, instrument) in [("bare", false), ("instrumented", true)] {
        let mut engine = churned_engine(8);
        if instrument {
            let registry = Registry::new();
            engine.attach_stats(EngineStats::register_monotonic(&registry));
        }
        let id = engine.catalog().objects()[0].id;
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 10_000;
                black_box(engine.locate(id, black_box(i)).expect("valid block"))
            });
        });
    }
    group.finish();
}

/// Planning is a cold path, so it takes full timing (per-op and
/// per-chunk histograms); the ratio should still be ~1.0 because the
/// recording cost is amortized over thousands of blocks.
fn bench_plan_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_plan_overhead");
    let engine = churned_engine(4);
    let threads = 2;
    let registry = Registry::new();
    let stats = EngineStats::register_monotonic(&registry);
    group.bench_function(BenchmarkId::from_parameter("bare"), |b| {
        b.iter(|| {
            black_box(plan_last_op_parallel(
                engine.catalog(),
                engine.log(),
                threads,
            ))
        });
    });
    group.bench_function(BenchmarkId::from_parameter("instrumented"), |b| {
        b.iter(|| {
            black_box(plan_last_op_parallel_instrumented(
                engine.catalog(),
                engine.log(),
                threads,
                &stats,
            ))
        });
    });
    group.finish();
}

/// The armed-profiler tax on the serving hot path: both sides run the
/// fully instrumented locate loop and bracket every call with the two
/// state-word stores the reactor performs (`engine` on entry, `decode`
/// on exit). `bare` uses a detached handle and no sampler;
/// `instrumented` registers with a live [`Profiler`] whose 1 kHz
/// sampler thread runs for the whole measurement — so the ratio is
/// exactly what arming the profiler costs a worker. CI's
/// profile-smoke job gates this ratio at 1.10 via `BENCH_obs.json`.
fn bench_profile_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_profile_overhead");
    let run = |b: &mut criterion::Bencher, handle: &StateHandle| {
        let mut engine = churned_engine(8);
        let registry = Registry::new();
        engine.attach_stats(EngineStats::register_monotonic(&registry));
        let id = engine.catalog().objects()[0].id;
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            handle.set(ThreadState::Engine);
            let located = engine.locate(id, black_box(i)).expect("valid block");
            handle.set(ThreadState::Decode);
            black_box(located)
        });
    };
    let detached = StateHandle::detached();
    group.bench_with_input(BenchmarkId::from_parameter("bare"), &(), |b, ()| {
        run(b, &detached)
    });
    let profiler = Profiler::new(Arc::new(MonotonicClock::new()));
    let registered = profiler.register("bench-worker");
    let shutdown = Arc::new(AtomicBool::new(false));
    let sampler = profiler.spawn_sampler(Duration::from_millis(1), shutdown.clone());
    group.bench_with_input(BenchmarkId::from_parameter("instrumented"), &(), |b, ()| {
        run(b, &registered)
    });
    shutdown.store(true, Ordering::SeqCst);
    sampler.join().expect("sampler joins");
    assert!(profiler.rounds() > 0, "sampler never ran during the bench");
    group.finish();
}

/// The raw primitives, for the overhead budget table in `DESIGN.md` §9:
/// a relaxed counter increment, a histogram record (bucket index +
/// three relaxed atomics), and a full span open/event/drop cycle
/// against a virtual clock (two reads + one mutex push).
fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    let counter = Counter::new();
    group.bench_function(BenchmarkId::from_parameter("counter_inc"), |b| {
        b.iter(|| black_box(counter.inc_and_get()));
    });
    group.bench_function(BenchmarkId::from_parameter("counter_inc_weak"), |b| {
        b.iter(|| black_box(counter.inc_weak()));
    });
    let histogram = Histogram::new();
    group.bench_function(BenchmarkId::from_parameter("histogram_record"), |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            histogram.record(black_box(v >> 40));
        });
    });
    let clock = Arc::new(VirtualClock::new());
    let tracer = Tracer::new(clock.clone(), 64);
    group.bench_function(BenchmarkId::from_parameter("span_cycle"), |b| {
        b.iter(|| {
            let mut span = tracer.span("bench");
            clock.advance(1);
            span.event("k", 1u64);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_locate_overhead,
    bench_plan_overhead,
    bench_profile_overhead,
    bench_primitives
);
criterion_main!(benches);
