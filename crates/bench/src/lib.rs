//! # scaddar-bench — Criterion benchmark harness
//!
//! Benchmarks backing the paper's AO1 objective ("low complexity
//! computation ... inexpensive mod and div functions") and the
//! comparative cost claims:
//!
//! | bench target | measures | experiment |
//! |--------------|----------|------------|
//! | `access` | `AF()` ns/lookup vs epoch `j`, per RNG family | E8 |
//! | `remap` | raw `REMAP_j` throughput; `RF()` planning over 100k blocks | E8 |
//! | `strategies` | `place()` cost across all strategies | E11 support |
//! | `server` | cmsim round throughput; offline scale cost | E9 support |
//!
//! Run with `cargo bench --workspace`. Shared fixtures live here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use scaddar_core::{ScalingLog, ScalingOp};

/// Builds a scaling log of `ops` operations alternating removals and
/// additions around `disks` (the fixture every access bench uses).
pub fn churn_log(disks: u32, ops: usize) -> ScalingLog {
    let mut log = ScalingLog::new(disks).expect("positive disk count");
    for i in 0..ops {
        let op = if i % 2 == 0 {
            ScalingOp::remove_one(0)
        } else {
            ScalingOp::Add { count: 1 }
        };
        log.push(&op).expect("valid churn op");
    }
    log
}

/// Builds a log of `ops` single-disk additions starting from `disks`.
pub fn growth_log(disks: u32, ops: usize) -> ScalingLog {
    let mut log = ScalingLog::new(disks).expect("positive disk count");
    for _ in 0..ops {
        log.push(&ScalingOp::Add { count: 1 }).expect("valid add");
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_requested_depth() {
        assert_eq!(churn_log(8, 16).epoch(), 16);
        assert_eq!(churn_log(8, 16).current_disks(), 8);
        assert_eq!(growth_log(4, 10).current_disks(), 14);
    }
}
