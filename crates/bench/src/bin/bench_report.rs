//! Condenses the criterion JSON emitted by the `remap`, `access`, and
//! `obs` benches into machine-readable reports at the repo root:
//!
//! * `BENCH_remap.json` — raw ns-per-iteration plus the headline
//!   speedup ratios of the bulk location engine (pipeline fold vs
//!   record fold, parallel vs serial planning, cached vs oracle
//!   lookup);
//! * `BENCH_obs.json` (when the `obs` bench has run) — the telemetry
//!   overhead ratios (instrumented / bare), with a `within_gate`
//!   verdict per hot path keyed to the CI 1.10 acceptance gate on the
//!   locate ratio;
//! * `BENCH_monitor.json` (when the `monitor` bench has run) — the
//!   health monitor's amortized overhead ratios (attached / detached),
//!   with a `within_10pct` verdict per hot path. CI's health-smoke job
//!   gates on the locate ratio;
//! * `BENCH_net.json` (when the `scaddard-load` loopback harness or
//!   the `cluster_smoke` 3-shard harness has run) — end-to-end locate
//!   latency percentiles (p50/p95/p99/p999), throughput,
//!   error/violation counts, and the instrumented/bare serving
//!   overhead ratio with a `within_10pct` verdict; cluster runs add a
//!   `"cluster"` object with the routing/torn-epoch gates and the
//!   scale-out migration delta vs its 6σ bound. CI's net-smoke job
//!   gates on protocol errors and that ratio; cluster-smoke gates on
//!   the cluster object;
//! * `BENCH_compact.json` (when the `compaction_smoke` harness has
//!   run) — the rehash-compaction gates: locate ns before/after the
//!   flip vs a fresh chain-length-0 engine with a `within_gate`
//!   verdict keyed to the CI 1.2× ceiling, the mid-cutover hiccup and
//!   unknown-object counts (both must be zero), and the budget
//!   refill. CI's compaction-smoke job gates on all three.
//!
//! Run after the benches:
//!
//! ```text
//! cargo bench -p scaddar-bench --bench remap --bench access --bench obs --bench monitor
//! cargo run --release -p scaddar-net --bin scaddard-load
//! cargo run -p scaddar-bench --bin bench_report
//! ```
//!
//! Reads `target/criterion-json/{remap,access,obs,monitor,net,net_load,cluster,compact}.json`
//! relative to the current directory (override with `BENCH_JSON_DIR`)
//! and writes `BENCH_remap.json` (override with the first CLI
//! argument), `BENCH_obs.json` (override with `BENCH_OBS_PATH`),
//! `BENCH_monitor.json` (override with `BENCH_MONITOR_PATH`),
//! `BENCH_net.json` (override with `BENCH_NET_PATH`), and
//! `BENCH_compact.json` (override with `BENCH_COMPACT_PATH`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The instrumented/bare overhead ratio CI's obs-smoke job accepts on
/// the locate hot path; `within_gate` in `BENCH_obs.json` is keyed to
/// the same line so the report never reads as a standing failure while
/// CI is green.
const OBS_OVERHEAD_GATE: f64 = 1.10;

/// The post-compaction/fresh-engine locate ratio CI's compaction-smoke
/// job accepts: a collapsed generation must locate within 1.2× of a
/// brand-new chain-length-0 engine over the same catalog.
const COMPACT_LOCATE_GATE: f64 = 1.2;

/// One measured benchmark, keyed `group/bench`.
#[derive(Debug, Clone)]
struct Measurement {
    ns_per_iter: f64,
}

/// Scans a shim-criterion JSON report for `(group, bench, ns_per_iter)`
/// triples. The format is flat and machine-written (no nesting inside
/// the result objects, no escapes in the names we generate), so a
/// field-by-field scan is sufficient and keeps this binary
/// dependency-free.
fn parse_results(json: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    // Each result object lies between '{' and '}' inside the "results"
    // array; split on '{' and pick the pieces with the expected fields.
    for chunk in json.split('{').skip(1) {
        let obj = chunk.split('}').next().unwrap_or("");
        let (mut group, mut bench, mut ns) = (None, None, None);
        for field in obj.split(',') {
            let Some((key, value)) = field.split_once(':') else {
                continue;
            };
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            match key {
                "group" => group = Some(value.trim_matches('"').to_string()),
                "bench" => bench = Some(value.trim_matches('"').to_string()),
                "ns_per_iter" => ns = value.parse::<f64>().ok(),
                _ => {}
            }
        }
        if let (Some(g), Some(b), Some(n)) = (group, bench, ns) {
            out.push((g, b, n));
        }
    }
    out
}

fn load_measurements(dirs: &[std::path::PathBuf]) -> BTreeMap<String, Measurement> {
    let mut all = BTreeMap::new();
    for stem in [
        "remap", "access", "obs", "monitor", "net", "net_load", "cluster", "compact",
    ] {
        // Cargo runs bench binaries with the package directory as cwd,
        // so the shim's reports land under `crates/bench/target/` when
        // benches run from the workspace root; accept either location.
        let Some(json) = dirs
            .iter()
            .find_map(|dir| std::fs::read_to_string(dir.join(format!("{stem}.json"))).ok())
        else {
            eprintln!(
                "bench_report: missing {stem}.json (run `cargo bench -p scaddar-bench --bench {stem}` first)"
            );
            continue;
        };
        for (group, bench, ns_per_iter) in parse_results(&json) {
            all.insert(format!("{group}/{bench}"), Measurement { ns_per_iter });
        }
    }
    all
}

/// `baseline_ns / candidate_ns`: how many times faster the candidate is.
fn speedup(all: &BTreeMap<String, Measurement>, baseline: &str, candidate: &str) -> Option<f64> {
    let b = all.get(baseline)?.ns_per_iter;
    let c = all.get(candidate)?.ns_per_iter;
    (c > 0.0).then(|| b / c)
}

/// The `BENCH_obs.json` body: instrumented/bare overhead ratio per hot
/// path (with the acceptance verdict), plus the raw `obs_*`
/// measurements. `None` when the `obs` bench has not run.
fn obs_report(all: &BTreeMap<String, Measurement>) -> Option<String> {
    let mut overheads = String::new();
    for path in ["locate", "plan", "profile"] {
        let bare = all.get(&format!("obs_{path}_overhead/bare"))?.ns_per_iter;
        let inst = all
            .get(&format!("obs_{path}_overhead/instrumented"))?
            .ns_per_iter;
        if bare <= 0.0 {
            return None;
        }
        let ratio = inst / bare;
        if !overheads.is_empty() {
            overheads.push_str(",\n");
        }
        write!(
            overheads,
            "    {{\"name\": \"{path}\", \"bare_ns\": {bare:.3}, \"instrumented_ns\": {inst:.3}, \
             \"ratio\": {ratio:.4}, \"within_gate\": {}}}",
            ratio <= OBS_OVERHEAD_GATE
        )
        .expect("write to string");
    }
    let mut raw = String::new();
    for (key, m) in all.iter().filter(|(k, _)| k.starts_with("obs_")) {
        if !raw.is_empty() {
            raw.push_str(",\n");
        }
        write!(
            raw,
            "    {{\"bench\": \"{key}\", \"ns_per_iter\": {:.3}}}",
            m.ns_per_iter
        )
        .expect("write to string");
    }
    Some(format!(
        "{{\n  \"overheads\": [\n{overheads}\n  ],\n  \"raw\": [\n{raw}\n  ]\n}}\n"
    ))
}

/// The `BENCH_monitor.json` body: health-monitor overhead ratio
/// (attached / detached) per polled hot path, with the ≤1.10 acceptance
/// verdict, plus the raw `monitor_*` measurements. `None` when the
/// `monitor` bench has not run.
fn monitor_report(all: &BTreeMap<String, Measurement>) -> Option<String> {
    let mut overheads = String::new();
    for path in ["locate", "tick"] {
        let detached = all
            .get(&format!("monitor_{path}_overhead/detached"))?
            .ns_per_iter;
        let attached = all
            .get(&format!("monitor_{path}_overhead/attached"))?
            .ns_per_iter;
        if detached <= 0.0 {
            return None;
        }
        let ratio = attached / detached;
        if !overheads.is_empty() {
            overheads.push_str(",\n");
        }
        write!(
            overheads,
            "    {{\"name\": \"{path}\", \"detached_ns\": {detached:.3}, \"attached_ns\": {attached:.3}, \
             \"ratio\": {ratio:.4}, \"within_10pct\": {}}}",
            ratio <= 1.10
        )
        .expect("write to string");
    }
    let mut raw = String::new();
    for (key, m) in all.iter().filter(|(k, _)| k.starts_with("monitor_")) {
        if !raw.is_empty() {
            raw.push_str(",\n");
        }
        write!(
            raw,
            "    {{\"bench\": \"{key}\", \"ns_per_iter\": {:.3}}}",
            m.ns_per_iter
        )
        .expect("write to string");
    }
    Some(format!(
        "{{\n  \"overheads\": [\n{overheads}\n  ],\n  \"raw\": [\n{raw}\n  ]\n}}\n"
    ))
}

/// The `BENCH_compact.json` body: the rehash-compaction acceptance
/// gates from the `compaction_smoke` harness — the locate-ns triple
/// (long chain / post-flip / fresh engine) with the ≤1.2× `within_gate`
/// verdict on the post-flip-vs-fresh ratio, the zero-hiccup and
/// zero-unknown-object serving gates from the dual-generation cutover,
/// and the chain/budget bookkeeping around the flip. `None` when the
/// smoke has not run (or emitted only a partial row set — a
/// half-written report must not read as a passing one).
fn compact_report(all: &BTreeMap<String, Measurement>) -> Option<String> {
    let get = |key: &str| Some(all.get(&format!("compact/{key}"))?.ns_per_iter);
    let before = get("locate_before_ns")?;
    let after = get("locate_after_ns")?;
    let fresh = get("locate_fresh_ns")?;
    if fresh <= 0.0 {
        return None;
    }
    let ratio = after / fresh;
    let hiccups = get("hiccups")?;
    let unknown = get("unknown_objects")?;
    let count = |key: &str| get(key).unwrap_or(0.0);
    let mut raw = String::new();
    for (key, m) in all.iter().filter(|(k, _)| k.starts_with("compact/")) {
        if !raw.is_empty() {
            raw.push_str(",\n");
        }
        write!(
            raw,
            "    {{\"bench\": \"{key}\", \"ns_per_iter\": {:.3}}}",
            m.ns_per_iter
        )
        .expect("write to string");
    }
    Some(format!(
        "{{\n  \"locate_before_ns\": {before:.3},\n\
         \x20 \"locate_after_ns\": {after:.3},\n\
         \x20 \"locate_fresh_ns\": {fresh:.3},\n\
         \x20 \"locate_ratio\": {ratio:.4},\n\
         \x20 \"within_gate\": {},\n\
         \x20 \"hiccups\": {hiccups:.0},\n\
         \x20 \"zero_hiccups\": {},\n\
         \x20 \"unknown_objects\": {unknown:.0},\n\
         \x20 \"zero_unknown_objects\": {},\n\
         \x20 \"lookups_served\": {:.0},\n\
         \x20 \"chain_ops_before\": {:.0},\n\
         \x20 \"chain_ops_after\": {:.0},\n\
         \x20 \"generation\": {:.0},\n\
         \x20 \"moved_blocks\": {:.0},\n\
         \x20 \"total_blocks\": {:.0},\n\
         \x20 \"budget_before\": {:.0},\n\
         \x20 \"budget_after\": {:.0},\n\
         \x20 \"raw\": [\n{raw}\n  ]\n}}\n",
        ratio <= COMPACT_LOCATE_GATE,
        hiccups == 0.0,
        unknown == 0.0,
        count("lookups_served"),
        count("chain_ops_before"),
        count("chain_ops_after"),
        count("generation"),
        count("moved_blocks"),
        count("total_blocks"),
        count("budget_before"),
        count("budget_after"),
    ))
}

/// The `"cluster"` object for `BENCH_net.json`: the cluster-smoke
/// gates (routing errors, torn epochs), the scale-out migration delta
/// against its analytic expectation and 6σ bound, and the stale-map
/// client traffic counters. `None` when `cluster_smoke` has not run.
fn cluster_block(all: &BTreeMap<String, Measurement>) -> Option<String> {
    let get = |key: &str| Some(all.get(&format!("cluster/{key}"))?.ns_per_iter);
    let migrated = get("migrated_fraction")?;
    let expected = get("expected_fraction")?;
    let bound = get("bound_6sigma")?;
    let routing_errors = get("routing_errors")?;
    let torn_epochs = get("torn_epochs")?;
    let count = |key: &str| get(key).unwrap_or(0.0);
    Some(format!(
        "  \"cluster\": {{\n\
         \x20   \"routing_errors\": {routing_errors:.0},\n\
         \x20   \"torn_epochs\": {torn_epochs:.0},\n\
         \x20   \"moved_objects\": {:.0},\n\
         \x20   \"population\": {:.0},\n\
         \x20   \"migrated_fraction\": {migrated:.4},\n\
         \x20   \"expected_fraction\": {expected:.4},\n\
         \x20   \"bound_6sigma\": {bound:.4},\n\
         \x20   \"within_bound\": {},\n\
         \x20   \"served\": {:.0},\n\
         \x20   \"wrong_shard_bounces\": {:.0},\n\
         \x20   \"stale_map_hits\": {:.0},\n\
         \x20   \"map_refreshes\": {:.0},\n\
         \x20   \"client_errors\": {:.0},\n\
         \x20   \"map_version\": {:.0}\n\
         \x20 }},\n",
        count("moved_objects"),
        count("population"),
        migrated <= bound,
        count("served"),
        count("wrong_shard_bounces"),
        count("stale_map_hits"),
        count("map_refreshes"),
        count("client_errors"),
        count("map_version"),
    ))
}

/// The `BENCH_net.json` body: end-to-end locate latency percentiles
/// from the seeded loopback load run, throughput and error/violation
/// counts, and the instrumented/bare serving overhead ratio with the
/// ≤1.10 acceptance verdict, plus the raw `net_*` measurements (the
/// `net` codec/request-path bench rows ride along when present). When
/// the load run included the threaded reference (`--mode both`), the
/// event-loop/threaded A/B throughput pair and speedup are included;
/// when `cluster_smoke` has run, its gates and migration delta ride
/// along as a `"cluster"` object (alone, if the single-node load
/// harness did not run). `None` when neither has run.
fn net_report(all: &BTreeMap<String, Measurement>) -> Option<String> {
    let get = |key: &str| Some(all.get(key)?.ns_per_iter);
    let cluster = cluster_block(all);
    let mut raw = String::new();
    for (key, m) in all
        .iter()
        .filter(|(k, _)| k.starts_with("net_") || k.starts_with("cluster/"))
    {
        if !raw.is_empty() {
            raw.push_str(",\n");
        }
        write!(
            raw,
            "    {{\"bench\": \"{key}\", \"ns_per_iter\": {:.3}}}",
            m.ns_per_iter
        )
        .expect("write to string");
    }
    let load = get("net_load/locate_p50")
        .and_then(|p50| {
            Some((
                p50,
                get("net_load/locate_p95")?,
                get("net_load/locate_p99")?,
                get("net_load/locate_p999")?,
            ))
        })
        .and_then(|p| {
            Some((
                p,
                get("net_locate_overhead/bare")?,
                get("net_locate_overhead/instrumented")?,
            ))
        });
    let Some(((p50, p95, p99, p999), bare, inst)) = load else {
        // Cluster-only run (CI's cluster-smoke job): the migration
        // delta still lands in BENCH_net.json.
        let cluster = cluster?;
        return Some(format!("{{\n{cluster}  \"raw\": [\n{raw}\n  ]\n}}\n"));
    };
    if bare <= 0.0 {
        return None;
    }
    let ratio = inst / bare;
    let count = |key: &str| get(key).unwrap_or(0.0);
    // A/B block: present only when the load run included the threaded
    // reference (`--mode both`), so event-loop-only runs still report.
    let ab = get("net_load_threaded/throughput_rps")
        .filter(|&t| t > 0.0)
        .map(|threaded| {
            format!(
                "  \"threaded_throughput_rps\": {threaded:.1},\n\
                 \x20 \"event_loop_speedup\": {:.3},\n",
                count("net_load/throughput_rps") / threaded
            )
        })
        .unwrap_or_default();
    let cluster = cluster.unwrap_or_default();
    Some(format!(
        "{{\n  \"locate_latency_ns\": {{\"p50\": {p50:.0}, \"p95\": {p95:.0}, \"p99\": {p99:.0}, \"p999\": {p999:.0}}},\n\
         \x20 \"batch_p99_ns\": {:.0},\n\
         \x20 \"pipelined_p999_ns\": {:.0},\n\
         \x20 \"throughput_rps\": {:.1},\n\
         {ab}\
         {cluster}\
         \x20 \"requests\": {:.0},\n\
         \x20 \"errors\": {:.0},\n\
         \x20 \"protocol_errors\": {:.0},\n\
         \x20 \"consistency_violations\": {:.0},\n\
         \x20 \"epochs_observed\": {:.0},\n\
         \x20 \"overheads\": [\n    {{\"name\": \"locate\", \"bare_ns\": {bare:.3}, \"instrumented_ns\": {inst:.3}, \
         \"ratio\": {ratio:.4}, \"within_10pct\": {}}}\n  ],\n\
         \x20 \"raw\": [\n{raw}\n  ]\n}}\n",
        count("net_load/batch_p99"),
        count("net_load/pipelined_p999"),
        count("net_load/throughput_rps"),
        count("net_load/requests"),
        count("net_load/errors"),
        count("net_load/protocol_errors"),
        count("net_load/consistency_violations"),
        count("net_load/epochs_observed"),
        ratio <= 1.10,
    ))
}

fn main() {
    let json_dirs: Vec<std::path::PathBuf> = match std::env::var("BENCH_JSON_DIR") {
        Ok(dir) => vec![dir.into()],
        Err(_) => vec![
            "target/criterion-json".into(),
            "crates/bench/target/criterion-json".into(),
        ],
    };
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_remap.json".to_string());
    let all = load_measurements(&json_dirs);
    if all.is_empty() {
        eprintln!("bench_report: no measurements found; nothing written");
        std::process::exit(1);
    }

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut speedups = String::new();
    let mut push_ratio = |name: &str, baseline: &str, candidate: &str| {
        if let Some(ratio) = speedup(&all, baseline, candidate) {
            if !speedups.is_empty() {
                speedups.push_str(",\n");
            }
            write!(
                speedups,
                "    {{\"name\": \"{name}\", \"baseline\": \"{baseline}\", \"candidate\": \"{candidate}\", \"speedup\": {ratio:.3}}}"
            )
            .expect("write to string");
        }
    };
    for j in [8, 16, 32] {
        push_ratio(
            &format!("pipeline_fold_vs_records_j{j}"),
            &format!("x_fold/records/{j}"),
            &format!("x_fold/pipeline/{j}"),
        );
    }
    push_ratio(
        "parallel_vs_serial_plan_1m",
        "rf_plan_1m_blocks/serial",
        &format!("rf_plan_1m_blocks/parallel/{threads}"),
    );
    for j in [8, 32] {
        push_ratio(
            &format!("cached_vs_oracle_locate_j{j}"),
            &format!("af_cached_vs_oracle/oracle/{j}"),
            &format!("af_cached_vs_oracle/cached/{j}"),
        );
    }

    let mut raw = String::new();
    for (key, m) in &all {
        if !raw.is_empty() {
            raw.push_str(",\n");
        }
        write!(
            raw,
            "    {{\"bench\": \"{key}\", \"ns_per_iter\": {:.3}}}",
            m.ns_per_iter
        )
        .expect("write to string");
    }

    let report = format!(
        "{{\n  \"threads\": {threads},\n  \"speedups\": [\n{speedups}\n  ],\n  \"raw\": [\n{raw}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &report).expect("write report");
    println!(
        "bench_report: wrote {out_path} ({} measurements)",
        all.len()
    );

    if let Some(obs) = obs_report(&all) {
        let obs_path =
            std::env::var("BENCH_OBS_PATH").unwrap_or_else(|_| "BENCH_obs.json".to_string());
        std::fs::write(&obs_path, &obs).expect("write obs report");
        println!("bench_report: wrote {obs_path}");
    }

    if let Some(monitor) = monitor_report(&all) {
        let monitor_path = std::env::var("BENCH_MONITOR_PATH")
            .unwrap_or_else(|_| "BENCH_monitor.json".to_string());
        std::fs::write(&monitor_path, &monitor).expect("write monitor report");
        println!("bench_report: wrote {monitor_path}");
    }

    if let Some(net) = net_report(&all) {
        let net_path =
            std::env::var("BENCH_NET_PATH").unwrap_or_else(|_| "BENCH_net.json".to_string());
        std::fs::write(&net_path, &net).expect("write net report");
        println!("bench_report: wrote {net_path}");
    }

    if let Some(compact) = compact_report(&all) {
        let compact_path = std::env::var("BENCH_COMPACT_PATH")
            .unwrap_or_else(|_| "BENCH_compact.json".to_string());
        std::fs::write(&compact_path, &compact).expect("write compact report");
        println!("bench_report: wrote {compact_path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"bench": "remap", "results": [
      {"group": "x_fold", "bench": "records/8", "ns_per_iter": 120.5, "iterations": 1000},
      {"group": "x_fold", "bench": "pipeline/8", "ns_per_iter": 30.1, "iterations": 4000}
    ]}"#;

    #[test]
    fn parses_shim_report() {
        let rows = parse_results(SAMPLE);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "x_fold");
        assert_eq!(rows[0].1, "records/8");
        assert!((rows[0].2 - 120.5).abs() < 1e-9);
    }

    #[test]
    fn speedup_is_baseline_over_candidate() {
        let mut all = BTreeMap::new();
        for (g, b, n) in parse_results(SAMPLE) {
            all.insert(format!("{g}/{b}"), Measurement { ns_per_iter: n });
        }
        let s = speedup(&all, "x_fold/records/8", "x_fold/pipeline/8").unwrap();
        assert!((s - 120.5 / 30.1).abs() < 1e-9);
        assert!(speedup(&all, "missing", "x_fold/pipeline/8").is_none());
    }

    #[test]
    fn obs_report_carries_ratio_and_verdict() {
        let mut all = BTreeMap::new();
        for (key, ns) in [
            ("obs_locate_overhead/bare", 50.0),
            ("obs_locate_overhead/instrumented", 51.0),
            ("obs_plan_overhead/bare", 10_000.0),
            ("obs_plan_overhead/instrumented", 11_500.0),
            ("obs_profile_overhead/bare", 60.0),
            ("obs_profile_overhead/instrumented", 63.0),
            ("obs_primitives/counter_inc", 2.0),
        ] {
            all.insert(key.to_string(), Measurement { ns_per_iter: ns });
        }
        let report = obs_report(&all).expect("obs measurements present");
        assert!(report.contains("\"name\": \"locate\""));
        assert!(report.contains("\"ratio\": 1.0200"));
        assert!(report.contains("\"within_gate\": true"));
        // Plan at 1.15 is over the CI 1.10 gate.
        assert!(report.contains("\"ratio\": 1.1500"));
        assert!(report.contains("\"within_gate\": false"));
        // The armed-profiler path (1.05) sits inside the gate.
        assert!(report.contains("\"name\": \"profile\""));
        assert!(report.contains("\"ratio\": 1.0500"));
        assert!(report.contains("obs_primitives/counter_inc"));

        all.remove("obs_plan_overhead/bare");
        assert!(obs_report(&all).is_none(), "partial obs run emits nothing");
        all.insert(
            "obs_plan_overhead/bare".to_string(),
            Measurement {
                ns_per_iter: 10_000.0,
            },
        );
        all.remove("obs_profile_overhead/instrumented");
        assert!(
            obs_report(&all).is_none(),
            "a missing profile side emits nothing rather than a silently ungated report"
        );
    }

    #[test]
    fn monitor_report_carries_ratio_and_verdict() {
        let mut all = BTreeMap::new();
        for (key, ns) in [
            ("monitor_locate_overhead/detached", 50.0),
            ("monitor_locate_overhead/attached", 52.0),
            ("monitor_tick_overhead/detached", 1_000.0),
            ("monitor_tick_overhead/attached", 1_200.0),
            ("monitor_primitives/observe_census", 300.0),
        ] {
            all.insert(key.to_string(), Measurement { ns_per_iter: ns });
        }
        let report = monitor_report(&all).expect("monitor measurements present");
        assert!(report.contains("\"name\": \"locate\""));
        assert!(report.contains("\"ratio\": 1.0400"));
        assert!(report.contains("\"within_10pct\": true"));
        // Tick at 1.20 is over the 10% line.
        assert!(report.contains("\"ratio\": 1.2000"));
        assert!(report.contains("\"within_10pct\": false"));
        assert!(report.contains("monitor_primitives/observe_census"));

        all.remove("monitor_tick_overhead/attached");
        assert!(
            monitor_report(&all).is_none(),
            "partial monitor run emits nothing"
        );
    }

    #[test]
    fn net_report_carries_percentiles_and_gate_fields() {
        let mut all = BTreeMap::new();
        for (key, ns) in [
            ("net_load/locate_p50", 21_000.0),
            ("net_load/locate_p95", 48_000.0),
            ("net_load/locate_p99", 90_000.0),
            ("net_load/locate_p999", 180_000.0),
            ("net_load/batch_p99", 120_000.0),
            ("net_load/pipelined_p999", 95_000.0),
            ("net_load/throughput_rps", 410_000.0),
            ("net_load_threaded/throughput_rps", 205_000.0),
            ("net_load/requests", 4_800.0),
            ("net_load/errors", 0.0),
            ("net_load/protocol_errors", 0.0),
            ("net_load/consistency_violations", 0.0),
            ("net_load/epochs_observed", 3.0),
            ("net_locate_overhead/bare", 20_000.0),
            ("net_locate_overhead/instrumented", 21_000.0),
            ("net_codec/decode_locate", 18.0),
        ] {
            all.insert(key.to_string(), Measurement { ns_per_iter: ns });
        }
        let report = net_report(&all).expect("net measurements present");
        assert!(report.contains("\"p50\": 21000"));
        assert!(report.contains("\"p999\": 180000"));
        assert!(report.contains("\"protocol_errors\": 0"));
        assert!(report.contains("\"consistency_violations\": 0"));
        assert!(report.contains("\"ratio\": 1.0500"));
        assert!(report.contains("\"within_10pct\": true"));
        assert!(report.contains("\"pipelined_p999_ns\": 95000"));
        assert!(report.contains("\"threaded_throughput_rps\": 205000.0"));
        assert!(report.contains("\"event_loop_speedup\": 2.000"));
        assert!(report.contains("net_codec/decode_locate"));

        // The A/B block is optional: an event-loop-only run still reports.
        all.remove("net_load_threaded/throughput_rps");
        let solo = net_report(&all).expect("event-loop-only run still reports");
        assert!(!solo.contains("event_loop_speedup"));

        all.remove("net_locate_overhead/bare");
        assert!(net_report(&all).is_none(), "no load run, nothing written");
    }

    #[test]
    fn compact_report_carries_gates_and_refuses_partial_runs() {
        let mut all = BTreeMap::new();
        for (key, ns) in [
            ("compact/locate_before_ns", 61.0),
            ("compact/locate_after_ns", 35.0),
            ("compact/locate_fresh_ns", 34.0),
            ("compact/hiccups", 0.0),
            ("compact/unknown_objects", 0.0),
            ("compact/lookups_served", 9_568.0),
            ("compact/chain_ops_before", 8.0),
            ("compact/chain_ops_after", 0.0),
            ("compact/generation", 1.0),
            ("compact/moved_blocks", 42_048.0),
            ("compact/total_blocks", 48_000.0),
            ("compact/budget_before", 0.0),
            ("compact/budget_after", 8.0),
        ] {
            all.insert(key.to_string(), Measurement { ns_per_iter: ns });
        }
        let report = compact_report(&all).expect("compact measurements present");
        assert!(report.contains("\"locate_ratio\": 1.0294"));
        assert!(report.contains("\"within_gate\": true"));
        assert!(report.contains("\"zero_hiccups\": true"));
        assert!(report.contains("\"zero_unknown_objects\": true"));
        assert!(report.contains("\"chain_ops_after\": 0"));
        assert!(report.contains("\"budget_after\": 8"));
        assert!(report.contains("compact/moved_blocks"), "raw rows present");

        // A post-flip locate slower than 1.2x fresh flips the verdict.
        all.insert(
            "compact/locate_after_ns".to_string(),
            Measurement { ns_per_iter: 45.0 },
        );
        let slow = compact_report(&all).expect("report");
        assert!(slow.contains("\"within_gate\": false"));

        // A single mid-cutover hiccup flips its gate.
        all.insert(
            "compact/hiccups".to_string(),
            Measurement { ns_per_iter: 1.0 },
        );
        let hiccuped = compact_report(&all).expect("report");
        assert!(hiccuped.contains("\"zero_hiccups\": false"));

        // A partial emission is dropped, not half-gated.
        all.remove("compact/unknown_objects");
        assert!(
            compact_report(&all).is_none(),
            "missing gate row emits nothing"
        );
    }

    #[test]
    fn cluster_rows_ride_into_the_net_report() {
        let mut all = BTreeMap::new();
        for (key, ns) in [
            ("cluster/routing_errors", 0.0),
            ("cluster/torn_epochs", 0.0),
            ("cluster/moved_objects", 26.0),
            ("cluster/population", 96.0),
            ("cluster/migrated_fraction", 0.2708),
            ("cluster/expected_fraction", 0.25),
            ("cluster/bound_6sigma", 0.5152),
            ("cluster/wrong_shard_bounces", 31.0),
            ("cluster/map_refreshes", 2.0),
            ("cluster/map_version", 4.0),
        ] {
            all.insert(key.to_string(), Measurement { ns_per_iter: ns });
        }
        // Cluster-only run (the CI cluster-smoke job).
        let report = net_report(&all).expect("cluster rows alone still report");
        assert!(report.contains("\"cluster\": {"));
        assert!(report.contains("\"migrated_fraction\": 0.2708"));
        assert!(report.contains("\"within_bound\": true"));
        assert!(report.contains("\"wrong_shard_bounces\": 31"));
        assert!(!report.contains("locate_latency_ns"));
        assert!(report.contains("cluster/map_version"), "raw rows present");

        // Over the 6σ bound, the verdict flips.
        all.insert(
            "cluster/migrated_fraction".to_string(),
            Measurement { ns_per_iter: 0.60 },
        );
        let over = net_report(&all).expect("report");
        assert!(over.contains("\"within_bound\": false"));

        // Combined with a load run, both blocks appear.
        for (key, ns) in [
            ("net_load/locate_p50", 21_000.0),
            ("net_load/locate_p95", 48_000.0),
            ("net_load/locate_p99", 90_000.0),
            ("net_load/locate_p999", 180_000.0),
            ("net_load/throughput_rps", 410_000.0),
            ("net_locate_overhead/bare", 20_000.0),
            ("net_locate_overhead/instrumented", 21_000.0),
        ] {
            all.insert(key.to_string(), Measurement { ns_per_iter: ns });
        }
        let combined = net_report(&all).expect("combined report");
        assert!(combined.contains("locate_latency_ns"));
        assert!(combined.contains("\"cluster\": {"));
        assert!(combined.contains("\"torn_epochs\": 0"));

        // An incomplete cluster emission is dropped, not half-written.
        all.remove("cluster/bound_6sigma");
        let partial = net_report(&all).expect("load rows still report");
        assert!(!partial.contains("\"cluster\": {"));
    }
}
