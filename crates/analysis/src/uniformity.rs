//! Uniformity testing for load censuses (RO2 verification).
//!
//! The paper argues qualitatively that SCADDAR "maintains randomized
//! block placement"; the experiments make that quantitative with
//! Pearson's chi-square goodness-of-fit against the uniform distribution,
//! computed per census after every scaling operation.

/// Result of a chi-square uniformity test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// The statistic `sum((obs - exp)^2 / exp)`.
    pub statistic: f64,
    /// Degrees of freedom (`bins - 1`).
    pub degrees: usize,
    /// Approximate p-value (probability of a statistic at least this
    /// large under uniformity), via the Wilson–Hilferty normal
    /// approximation — accurate to ~1e-3 for `degrees >= 3`, ample for a
    /// pass/fail experiment readout.
    pub p_value: f64,
}

impl ChiSquare {
    /// Convenience: does the census pass at significance `alpha`
    /// (i.e. is there *no* evidence of non-uniformity)?
    pub fn is_uniform_at(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Chi-square test of a census against the uniform distribution.
///
/// **Single-bin censuses** (`census.len() == 1`) are *trivially
/// uniform*: with one disk there is exactly one way to distribute the
/// blocks, so the test degenerates (`degrees = 0`) and the defined
/// result is `statistic = 0`, `p_value = 1`. Callers that need a
/// *meaningful* test (the health monitor's RO2 probe, the harness)
/// should skip evaluation below two bins; this definition just makes
/// the degenerate case total instead of a panic.
///
/// # Panics
/// If the census is empty or has a zero total.
pub fn chi_square_uniform(census: &[u64]) -> ChiSquare {
    assert!(!census.is_empty(), "need at least one bin");
    let total: u64 = census.iter().sum();
    assert!(total > 0, "empty census");
    if census.len() == 1 {
        return ChiSquare {
            statistic: 0.0,
            degrees: 0,
            p_value: 1.0,
        };
    }
    let expected = total as f64 / census.len() as f64;
    let statistic: f64 = census
        .iter()
        .map(|&obs| {
            let d = obs as f64 - expected;
            d * d / expected
        })
        .sum();
    let degrees = census.len() - 1;
    ChiSquare {
        statistic,
        degrees,
        p_value: chi_square_sf(statistic, degrees),
    }
}

/// Survival function of the chi-square distribution via Wilson–Hilferty:
/// `(X/k)^(1/3)` is approximately normal with mean `1 - 2/(9k)` and
/// variance `2/(9k)`.
pub fn chi_square_sf(statistic: f64, degrees: usize) -> f64 {
    assert!(degrees > 0);
    if statistic <= 0.0 {
        return 1.0;
    }
    let k = degrees as f64;
    let z = ((statistic / k).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * k))) / (2.0 / (9.0 * k)).sqrt();
    normal_sf(z)
}

/// Survival function of the standard normal via Abramowitz–Stegun 7.1.26
/// (max absolute error ~1.5e-7).
pub fn normal_sf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    0.5 * erfc(x)
}

fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

/// Kolmogorov–Smirnov-style max relative deviation of a census from
/// uniform: `max_d |obs_d - mean| / mean`. A blunt, scale-free companion
/// to the chi-square readout.
pub fn max_relative_deviation(census: &[u64]) -> f64 {
    if census.is_empty() {
        return 0.0;
    }
    let mean = census.iter().sum::<u64>() as f64 / census.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    census
        .iter()
        .map(|&c| ((c as f64) - mean).abs() / mean)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_sf_reference_points() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_sf(1.96) - 0.025).abs() < 1e-3);
        assert!((normal_sf(-1.96) - 0.975).abs() < 1e-3);
        assert!(normal_sf(8.0) < 1e-10);
    }

    #[test]
    fn chi_square_sf_reference_points() {
        // chi2(k=9, x=16.92) ~ 0.05 (the classic 5% critical value).
        let p = chi_square_sf(16.92, 9);
        assert!((p - 0.05).abs() < 0.005, "p={p}");
        // chi2(k=4, x=9.49) ~ 0.05.
        let p = chi_square_sf(9.49, 4);
        assert!((p - 0.05).abs() < 0.005, "p={p}");
    }

    #[test]
    fn uniform_census_passes() {
        let census = vec![1000u64; 16];
        let t = chi_square_uniform(&census);
        assert_eq!(t.statistic, 0.0);
        assert!(t.is_uniform_at(0.05));
    }

    #[test]
    fn skewed_census_fails() {
        let mut census = vec![1000u64; 16];
        census[0] = 3000;
        census[1] = 10;
        let t = chi_square_uniform(&census);
        assert!(!t.is_uniform_at(0.05), "p={}", t.p_value);
    }

    #[test]
    fn binomially_noisy_census_passes() {
        // A census drawn from genuinely uniform placement should pass:
        // simulate with a deterministic mix.
        use scaddar_prng::{SeededRng, SplitMix64};
        let mut rng = SplitMix64::from_seed(77);
        let mut census = vec![0u64; 10];
        for _ in 0..100_000 {
            census[(rng.next_u64() % 10) as usize] += 1;
        }
        let t = chi_square_uniform(&census);
        assert!(
            t.is_uniform_at(0.01),
            "stat={} p={}",
            t.statistic,
            t.p_value
        );
    }

    #[test]
    fn max_relative_deviation_basics() {
        assert_eq!(max_relative_deviation(&[]), 0.0);
        assert_eq!(max_relative_deviation(&[5, 5, 5]), 0.0);
        // Census 0,10: mean 5 -> max deviation 1.
        assert!((max_relative_deviation(&[0, 10]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_bin_is_trivially_uniform() {
        // One disk admits exactly one distribution: the test degenerates
        // to a defined total result instead of panicking.
        let t = chi_square_uniform(&[4]);
        assert_eq!(t.statistic, 0.0);
        assert_eq!(t.degrees, 0);
        assert_eq!(t.p_value, 1.0);
        assert!(t.is_uniform_at(0.05));
    }

    #[test]
    #[should_panic(expected = "one bin")]
    fn empty_census_panics() {
        let _ = chi_square_uniform(&[]);
    }
}
