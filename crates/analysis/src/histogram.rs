//! Fixed-range histograms with an ASCII rendering, used by experiment
//! binaries to show load distributions at a glance.

use std::fmt;

/// A histogram over `[lo, hi)` with equal-width bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Samples below `lo` or at/above `hi`.
    outliers: u64,
}

impl Histogram {
    /// Creates an empty histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    /// If `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "empty range");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            outliers: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if v < self.lo || v >= self.hi || v.is_nan() {
            self.outliers += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((v - self.lo) / width) as usize;
        // Floating-point edge: clamp (v just below hi can round up).
        let idx = idx.min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Records many samples.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Out-of-range sample count.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total recorded (including outliers).
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.outliers
    }

    /// Bounds of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }
}

impl fmt::Display for Histogram {
    /// Renders rows like `[ 0.00,  0.25) ######## 812`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (i, &count) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let width = (count * 40 / max) as usize;
            writeln!(f, "[{lo:9.3}, {hi:9.3}) {:<40} {count}", "#".repeat(width))?;
        }
        if self.outliers > 0 {
            writeln!(f, "outliers: {}", self.outliers)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all([0.0, 1.9, 2.0, 9.999, 10.0, -0.1]);
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.outliers(), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn bin_range_is_consistent() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.bin_range(0), (0.0, 0.25));
        assert_eq!(h.bin_range(3), (0.75, 1.0));
    }

    #[test]
    fn nan_is_an_outlier() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.outliers(), 1);
    }

    #[test]
    fn display_renders_all_bins() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.record_all([0.5, 1.5, 1.6, 2.5]);
        let s = h.to_string();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
    }
}
