//! Ordinary least-squares fitting, for quantifying experiment trends
//! (e.g. the §5 figure's CoV growth rate after the fairness budget).

/// An OLS line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination (`1` = perfect linear fit; can be
    /// negative for fits worse than the mean if forced through data).
    pub r_squared: f64,
    /// Points fitted.
    pub n: usize,
}

impl LineFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a line to `(x, y)` pairs.
///
/// # Panics
/// With fewer than 2 points or zero x-variance (vertical line).
pub fn fit_line(points: &[(f64, f64)]) -> LineFit {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "x values are constant — no line to fit");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LineFit {
        slope,
        intercept,
        r_squared,
        n: points.len(),
    }
}

/// Fits an exponential `y = a·e^(b·x)` by OLS on `ln y` (requires
/// `y > 0`). Returns `(a, b, r_squared of the log fit)`. The natural
/// model for range-thinning effects, which compound multiplicatively.
pub fn fit_exponential(points: &[(f64, f64)]) -> (f64, f64, f64) {
    assert!(
        points.iter().all(|&(_, y)| y > 0.0),
        "exponential fit needs positive y"
    );
    let logged: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x, y.ln())).collect();
    let fit = fit_line(&logged);
    (fit.intercept.exp(), fit.slope, fit.r_squared)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = fit_line(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 58.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_fits_reasonably() {
        // Deterministic "noise" from a fixed pattern.
        let noise = [0.3, -0.2, 0.1, -0.4, 0.25, -0.1, 0.05, -0.3, 0.2, 0.1];
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| (i as f64, 2.0 * i as f64 + 1.0 + noise[i]))
            .collect();
        let fit = fit_line(&pts);
        assert!((fit.slope - 2.0).abs() < 0.05, "slope {}", fit.slope);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn flat_data_has_zero_slope_and_perfect_r2() {
        let pts: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 7.0)).collect();
        let fit = fit_line(&pts);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0); // syy == 0 convention
    }

    #[test]
    fn exponential_recovery() {
        let pts: Vec<(f64, f64)> = (0..8)
            .map(|i| (i as f64, 0.5 * (0.7 * i as f64).exp()))
            .collect();
        let (a, b, r2) = fit_exponential(&pts);
        assert!((a - 0.5).abs() < 1e-9);
        assert!((b - 0.7).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn single_point_panics() {
        let _ = fit_line(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn vertical_line_panics() {
        let _ = fit_line(&[(1.0, 1.0), (1.0, 2.0)]);
    }
}
