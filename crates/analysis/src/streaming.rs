//! Streaming variants of the [`uniformity`](crate::uniformity) checks:
//! a sliding window of per-disk load censuses with incrementally
//! maintained aggregates, so a live monitor can re-evaluate chi-square
//! and CoV after every sample without rescanning history.
//!
//! The window holds the last `capacity` census snapshots (e.g. one per
//! simulator round, fed from the `cmsim_disk_load_blocks` gauges).
//! Per-disk sums are updated in `O(disks)` on push/evict — never
//! `O(window · disks)` — and the statistics are computed over the
//! window *mean* census, so repeated snapshots of the same population
//! smooth noise instead of inflating the chi-square statistic.
//!
//! A window is tied to one array shape: pushing a census with a
//! different disk count (a scaling operation landed) resets the window,
//! because the expected distribution changed underneath the samples.

use crate::uniformity::{chi_square_uniform, ChiSquare};
use std::collections::VecDeque;

/// A bounded ring of per-disk censuses with O(disks) incremental
/// aggregates.
#[derive(Debug, Clone)]
pub struct CensusWindow {
    capacity: usize,
    window: VecDeque<Vec<u64>>,
    /// Per-disk sums over the retained window.
    sums: Vec<u64>,
    /// Total blocks across `sums`.
    total: u64,
}

impl CensusWindow {
    /// An empty window retaining at most `capacity` censuses (at
    /// least 1).
    pub fn new(capacity: usize) -> Self {
        CensusWindow {
            capacity: capacity.max(1),
            window: VecDeque::new(),
            sums: Vec::new(),
            total: 0,
        }
    }

    /// Number of censuses currently retained.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Disk count of the retained samples (0 while empty).
    pub fn disks(&self) -> usize {
        self.sums.len()
    }

    /// Per-disk sums over the window.
    pub fn sums(&self) -> &[u64] {
        &self.sums
    }

    /// Drops every sample (e.g. after a scaling operation).
    pub fn clear(&mut self) {
        self.window.clear();
        self.sums.clear();
        self.total = 0;
    }

    /// Pushes one census snapshot, evicting the oldest beyond capacity.
    /// A census with a different disk count resets the window first
    /// (the uniform hypothesis changed shape). Empty censuses are
    /// ignored.
    pub fn push(&mut self, census: &[u64]) {
        if census.is_empty() {
            return;
        }
        if census.len() != self.sums.len() && !self.window.is_empty() {
            self.clear();
        }
        if self.sums.len() != census.len() {
            self.sums = vec![0; census.len()];
        }
        if self.window.len() == self.capacity {
            let evicted = self.window.pop_front().expect("non-empty at capacity");
            for (s, v) in self.sums.iter_mut().zip(&evicted) {
                *s -= v;
                self.total -= v;
            }
        }
        for (s, &v) in self.sums.iter_mut().zip(census) {
            *s += v;
            self.total += v;
        }
        self.window.push_back(census.to_vec());
    }

    /// The window-mean census (per-disk sums divided by the sample
    /// count, rounded down). Empty while no samples are retained.
    pub fn mean_census(&self) -> Vec<u64> {
        let n = self.window.len() as u64;
        if n == 0 {
            return Vec::new();
        }
        self.sums.iter().map(|&s| s / n).collect()
    }

    /// Incremental chi-square uniformity test over the window-mean
    /// census. `None` when the test is undefined or degenerate: no
    /// samples, fewer than two disks (a single bin is trivially
    /// uniform — see [`chi_square_uniform`]), or a zero block total.
    pub fn chi_square(&self) -> Option<ChiSquare> {
        let mean = self.mean_census();
        if mean.len() < 2 || mean.iter().sum::<u64>() == 0 {
            return None;
        }
        Some(chi_square_uniform(&mean))
    }

    /// Coefficient of variation of the per-disk sums (scale-invariant,
    /// so identical over sums or the mean census). `None` when fewer
    /// than two disks are represented or the window is empty.
    pub fn cov(&self) -> Option<f64> {
        if self.sums.len() < 2 || self.total == 0 {
            return None;
        }
        let n = self.sums.len() as f64;
        let mean = self.total as f64 / n;
        let var = self
            .sums
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        Some(var.sqrt() / mean)
    }

    /// Max relative deviation of the per-disk sums from their mean —
    /// the streaming companion of
    /// [`max_relative_deviation`](crate::uniformity::max_relative_deviation).
    pub fn max_relative_deviation(&self) -> f64 {
        crate::uniformity::max_relative_deviation(&self.sums)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use crate::uniformity::max_relative_deviation;

    #[test]
    fn empty_window_is_defined_everywhere() {
        let w = CensusWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.disks(), 0);
        assert!(w.chi_square().is_none());
        assert!(w.cov().is_none());
        assert_eq!(w.mean_census(), Vec::<u64>::new());
        assert_eq!(w.max_relative_deviation(), 0.0);
    }

    #[test]
    fn aggregates_match_batch_computation_under_eviction() {
        let censuses: Vec<Vec<u64>> = (0..10)
            .map(|i| (0..5).map(|d| 100 + (i * 7 + d * 13) % 40).collect())
            .collect();
        let mut w = CensusWindow::new(4);
        for (i, c) in censuses.iter().enumerate() {
            w.push(c);
            // Batch recomputation over the retained tail.
            let tail = &censuses[i.saturating_sub(3)..=i];
            let mut sums = vec![0u64; 5];
            for c in tail {
                for (s, &v) in sums.iter_mut().zip(c) {
                    *s += v;
                }
            }
            assert_eq!(w.sums(), &sums[..], "after push {i}");
            assert_eq!(w.len(), tail.len());
            let cov = Summary::of_counts(&sums).cov;
            assert!((w.cov().unwrap() - cov).abs() < 1e-12, "after push {i}");
            assert!((w.max_relative_deviation() - max_relative_deviation(&sums)).abs() < 1e-12);
        }
    }

    #[test]
    fn chi_square_uses_the_mean_census_not_the_sum() {
        // Pushing the same census W times must not inflate the
        // statistic: the snapshots are not independent samples.
        let census = vec![1_000u64, 1_030, 970, 1_005];
        let batch = chi_square_uniform(&census);
        let mut w = CensusWindow::new(8);
        for _ in 0..8 {
            w.push(&census);
        }
        let streamed = w.chi_square().unwrap();
        assert!((streamed.statistic - batch.statistic).abs() < 1e-9);
        assert_eq!(streamed.degrees, batch.degrees);
    }

    #[test]
    fn disk_count_change_resets_the_window() {
        let mut w = CensusWindow::new(4);
        w.push(&[10, 10, 10]);
        w.push(&[10, 10, 10]);
        assert_eq!(w.len(), 2);
        w.push(&[5, 5, 5, 5]);
        assert_eq!(w.len(), 1, "scale op resets the window");
        assert_eq!(w.disks(), 4);
        assert_eq!(w.sums(), &[5, 5, 5, 5]);
    }

    #[test]
    fn single_disk_window_is_guarded_not_panicking() {
        let mut w = CensusWindow::new(4);
        w.push(&[42]);
        assert_eq!(w.len(), 1);
        assert!(w.chi_square().is_none(), "one bin: no meaningful test");
        assert!(w.cov().is_none());
    }

    #[test]
    fn empty_census_pushes_are_ignored() {
        let mut w = CensusWindow::new(4);
        w.push(&[]);
        assert!(w.is_empty());
        w.push(&[3, 3]);
        w.push(&[]);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn uniform_stream_passes_and_skew_fails() {
        let mut w = CensusWindow::new(6);
        for _ in 0..6 {
            w.push(&[1_000, 990, 1_010, 1_000, 1_001, 999]);
        }
        assert!(w.chi_square().unwrap().is_uniform_at(0.05));
        for _ in 0..6 {
            w.push(&[3_000, 10, 1_000, 1_000, 1_000, 990]);
        }
        assert!(!w.chi_square().unwrap().is_uniform_at(0.05));
    }
}
