//! A small CSV writer so experiments can emit machine-readable series
//! next to their stdout tables (no external dependency needed for the
//! subset of CSV we produce: RFC 4180 quoting of delimiter/quote/newline).

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Escapes one CSV field per RFC 4180.
pub fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// An in-memory CSV document with a fixed header.
#[derive(Debug, Clone)]
pub struct Csv {
    columns: usize,
    buffer: String,
}

impl Csv {
    /// Starts a CSV with the given header.
    pub fn new<S: AsRef<str>, I: IntoIterator<Item = S>>(header: I) -> Self {
        let cells: Vec<String> = header
            .into_iter()
            .map(|s| escape_field(s.as_ref()))
            .collect();
        let columns = cells.len();
        assert!(columns > 0, "CSV needs at least one column");
        let mut buffer = cells.join(",");
        buffer.push('\n');
        Csv { columns, buffer }
    }

    /// Appends a row; width must match the header.
    pub fn row<S: AsRef<str>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells
            .into_iter()
            .map(|s| escape_field(s.as_ref()))
            .collect();
        assert_eq!(cells.len(), self.columns, "CSV row width mismatch");
        self.buffer.push_str(&cells.join(","));
        self.buffer.push('\n');
        self
    }

    /// The document text.
    pub fn as_str(&self) -> &str {
        &self.buffer
    }

    /// Writes the document to `path`, creating parent directories.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(path)?;
        f.write_all(self.buffer.as_bytes())
    }
}

/// The conventional output directory for experiment CSVs:
/// `target/experiments/` under the workspace (overridable with
/// `SCADDAR_EXPERIMENT_DIR`).
pub fn experiment_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("SCADDAR_EXPERIMENT_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from("target/experiments")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_rules() {
        assert_eq!(escape_field("plain"), "plain");
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape_field("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn document_assembly() {
        let mut csv = Csv::new(["op", "moved"]);
        csv.row(["add,1", "42"]);
        assert_eq!(csv.as_str(), "op,moved\n\"add,1\",42\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_panics() {
        let mut csv = Csv::new(["a"]);
        csv.row(["x", "y"]);
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("scaddar-csv-test");
        let path = dir.join("nested/out.csv");
        let mut csv = Csv::new(["k"]);
        csv.row(["v"]);
        csv.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "k\nv\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
