//! Descriptive statistics used across the experiments.
//!
//! The paper's §5 metric is the **coefficient of variation** of per-disk
//! block counts ("the standard deviation divided by the average number of
//! blocks across all disks"); everything here exists to compute that and
//! its supporting numbers reproducibly.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance (divide by `n`, matching the paper's usage on
    /// complete censuses rather than samples).
    pub variance: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Coefficient of variation `stddev / mean` (0 when the mean is 0).
    pub cov: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice of counts (the common case: a load census).
    pub fn of_counts(census: &[u64]) -> Summary {
        Summary::of_values(census.iter().map(|&c| c as f64))
    }

    /// Summarizes any sequence of values.
    pub fn of_values<I: IntoIterator<Item = f64>>(values: I) -> Summary {
        let mut count = 0usize;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        // Welford's algorithm: numerically stable one-pass moments.
        for v in values {
            count += 1;
            let delta = v - mean;
            mean += delta / count as f64;
            m2 += delta * (v - mean);
            min = min.min(v);
            max = max.max(v);
        }
        if count == 0 {
            return Summary {
                count: 0,
                mean: 0.0,
                variance: 0.0,
                stddev: 0.0,
                cov: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let variance = m2 / count as f64;
        let stddev = variance.sqrt();
        Summary {
            count,
            mean,
            variance,
            stddev,
            cov: if mean == 0.0 { 0.0 } else { stddev / mean },
            min,
            max,
        }
    }

    /// Empirical unfairness of a census: `max/min - 1`, the sampled
    /// analogue of the paper's §4.3 unfairness coefficient. Infinite if
    /// some disk is empty.
    pub fn empirical_unfairness(&self) -> f64 {
        if self.min <= 0.0 {
            f64::INFINITY
        } else {
            self.max / self.min - 1.0
        }
    }
}

/// Mean of a slice of f64 (empty -> 0).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Percentile via linear interpolation on a sorted copy
/// (`q` in `0.0..=1.0`).
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Geometric mean of positive values; the §4.3 rule of thumb's
/// "average number of disks" is an arithmetic average, but the proof
/// passes through the geometric mean — we expose both for E4.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean needs positives"
    );
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_matches_hand_computation() {
        // Census 2, 4, 4, 4, 5, 5, 7, 9: mean 5, pop stddev 2.
        let s = Summary::of_counts(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.0).abs() < 1e-12);
        assert!((s.cov - 0.4).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.empirical_unfairness() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let e = Summary::of_counts(&[]);
        assert_eq!(e.count, 0);
        assert_eq!(e.cov, 0.0);
        let z = Summary::of_counts(&[0, 0]);
        assert_eq!(z.cov, 0.0);
        assert_eq!(z.empirical_unfairness(), f64::INFINITY);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_never_exceeds_arithmetic() {
        let v = [4.0, 5.0, 6.0, 8.0, 16.0];
        assert!(geometric_mean(&v) <= mean(&v));
        // Equal values: equal means.
        let u = [3.0, 3.0, 3.0];
        assert!((geometric_mean(&u) - 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_welford_matches_naive(values in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let s = Summary::of_values(values.iter().copied());
            let n = values.len() as f64;
            let m = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / n;
            prop_assert!((s.mean - m).abs() < 1e-6 * m.abs().max(1.0));
            prop_assert!((s.variance - var).abs() < 1e-5 * var.abs().max(1.0));
        }

        #[test]
        fn prop_percentile_is_monotone(
            values in proptest::collection::vec(-1e9f64..1e9, 2..100),
            a in 0.0f64..1.0,
            b in 0.0f64..1.0,
        ) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(percentile(&values, lo) <= percentile(&values, hi) + 1e-9);
        }
    }
}
