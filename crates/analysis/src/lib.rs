//! # scaddar-analysis — statistics, uniformity tests, and reporting
//!
//! The measurement toolkit behind the experiment suite:
//!
//! * [`stats`] — one-pass summaries (mean/variance/CoV — the paper's §5
//!   load-balance metric), percentiles, geometric mean;
//! * [`uniformity`] — chi-square goodness-of-fit against uniform
//!   placement (quantifying RO2) and max-relative-deviation;
//! * [`streaming`] — sliding-window incremental chi-square/CoV over a
//!   ring of recent censuses (the health monitor's RO2 feed);
//! * [`randtests`] — Knuth-style empirical generator tests (runs, gaps,
//!   serial correlation);
//! * [`regression`] — OLS line/exponential fits for trend quantification;
//! * [`histogram`] — ASCII histograms for load distributions;
//! * [`report`] — the monospace tables every experiment prints;
//! * [`csv`] — machine-readable output next to the tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod histogram;
pub mod randtests;
pub mod regression;
pub mod report;
pub mod stats;
pub mod streaming;
pub mod uniformity;

pub use csv::{experiment_dir, Csv};
pub use histogram::Histogram;
pub use randtests::{gap_test, runs_test, serial_correlation, GapTest, RunsTest};
pub use regression::{fit_exponential, fit_line, LineFit};
pub use report::{fmt_f64, fmt_pct, Align, Table};
pub use stats::{geometric_mean, mean, percentile, Summary};
pub use streaming::CensusWindow;
pub use uniformity::{chi_square_uniform, max_relative_deviation, ChiSquare};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: a uniform census summarizes and tests as uniform.
    #[test]
    fn toolkit_agrees_on_a_uniform_census() {
        let census = vec![1_000u64, 1_020, 980, 1_005, 995];
        let summary = Summary::of_counts(&census);
        assert!(summary.cov < 0.02);
        let chi = chi_square_uniform(&census);
        assert!(chi.is_uniform_at(0.05));
        assert!(max_relative_deviation(&census) < 0.03);
    }
}
