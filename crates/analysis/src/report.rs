//! ASCII table rendering for experiment stdout.
//!
//! Every experiment binary prints its results as a table whose rows
//! mirror the series the paper reports; this module keeps the formatting
//! consistent (and diff-able in `EXPERIMENTS.md`).

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers; numeric columns
    /// default to right alignment except the first.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides one column's alignment.
    pub fn align(mut self, column: usize, align: Align) -> Self {
        self.aligns[column] = align;
        self
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[i] {
                    Align::Left => write!(f, "{:<width$}", cells[i], width = widths[i])?,
                    Align::Right => write!(f, "{:>width$}", cells[i], width = widths[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimals, rendering non-finite values
/// readably (`inf`, `nan`).
pub fn fmt_f64(v: f64, digits: usize) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "inf" } else { "-inf" }.to_string()
    } else {
        format!("{v:.digits$}")
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn fmt_pct(v: f64) -> String {
    if v.is_finite() {
        format!("{:.2}%", v * 100.0)
    } else {
        fmt_f64(v, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["op", "moved", "cov"]);
        t.row(["add+1", "2000", "0.0123"]);
        t.row(["remove", "41", "0.0200"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("op"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right alignment: the numbers end at the same column.
        let end = |line: &str, col_text: &str| line.find(col_text).map(|p| p + col_text.len());
        assert_eq!(
            end(lines[2], "2000"),
            end(lines[3], "41").map(|_| end(lines[2], "2000").unwrap())
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::INFINITY, 2), "inf");
        assert_eq!(fmt_f64(f64::NAN, 2), "nan");
        assert_eq!(fmt_pct(0.2), "20.00%");
        assert_eq!(fmt_pct(f64::INFINITY), "inf");
    }

    #[test]
    fn emptiness() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
