//! Classical empirical randomness tests (Knuth TAOCP vol. 2 §3.3), used
//! to vet the placement generators beyond the chi-square census test:
//!
//! * [`runs_test`] — runs above/below the median: too few runs means
//!   positive serial correlation, too many means negative;
//! * [`serial_correlation`] — lag-1 autocorrelation of the sequence;
//! * [`gap_test`] — chi-square on the gaps between visits to a value
//!   band.
//!
//! These back experiment E14's claim that every generator family in the
//! suite is comfortably above what SCADDAR's analysis needs.

use crate::uniformity::{chi_square_sf, normal_sf};

/// Result of the runs test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunsTest {
    /// Observed runs above/below the median.
    pub runs: u64,
    /// Expected runs under independence.
    pub expected: f64,
    /// Z-score of the observation.
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Wald–Wolfowitz runs test against the sample median.
///
/// # Panics
/// If the sample has fewer than 16 values.
pub fn runs_test(values: &[u64]) -> RunsTest {
    assert!(values.len() >= 16, "runs test needs a real sample");
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    // Lower median with a <=/> dichotomy: robust even when the sample
    // concentrates on few distinct values (u64 samples rarely tie, but
    // adversarial inputs do).
    let median = sorted[(sorted.len() - 1) / 2];
    let signs: Vec<bool> = values.iter().map(|&v| v > median).collect();
    let n1 = signs.iter().filter(|&&s| s).count() as f64;
    let n2 = signs.len() as f64 - n1;
    let mut runs = 1u64;
    for pair in signs.windows(2) {
        if pair[0] != pair[1] {
            runs += 1;
        }
    }
    let expected = 2.0 * n1 * n2 / (n1 + n2) + 1.0;
    let var =
        (2.0 * n1 * n2 * (2.0 * n1 * n2 - n1 - n2)) / ((n1 + n2) * (n1 + n2) * (n1 + n2 - 1.0));
    let z = if var > 0.0 {
        (runs as f64 - expected) / var.sqrt()
    } else {
        0.0
    };
    let p_value = 2.0 * normal_sf(z.abs());
    RunsTest {
        runs,
        expected,
        z,
        p_value,
    }
}

/// Lag-1 serial correlation coefficient of the sequence, in `[-1, 1]`.
/// Independent uniform values give ~0 (±2/sqrt(n)).
pub fn serial_correlation(values: &[u64]) -> f64 {
    assert!(values.len() >= 3);
    let xs: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = xs
        .windows(2)
        .map(|w| (w[0] - mean) * (w[1] - mean))
        .sum::<f64>()
        / (n - 1.0);
    cov / var
}

/// Result of the gap test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapTest {
    /// Chi-square statistic over the gap-length histogram.
    pub statistic: f64,
    /// Degrees of freedom.
    pub degrees: usize,
    /// p-value.
    pub p_value: f64,
}

/// Knuth's gap test: gaps between successive values falling in
/// `[0, p·2^64)` should be geometric with parameter `p`.
///
/// `p` must be in `(0, 1)`; `max_gap` buckets individual gap lengths
/// `0..max_gap` plus one tail bucket.
pub fn gap_test(values: &[u64], p: f64, max_gap: usize) -> GapTest {
    assert!((0.0..1.0).contains(&p) && p > 0.0);
    assert!(max_gap >= 2);
    let threshold = (p * u64::MAX as f64) as u64;
    let mut histogram = vec![0u64; max_gap + 1];
    let mut gap = 0usize;
    let mut gaps_total = 0u64;
    for &v in values {
        if v < threshold {
            histogram[gap.min(max_gap)] += 1;
            gaps_total += 1;
            gap = 0;
        } else {
            gap += 1;
        }
    }
    assert!(gaps_total >= 50, "too few marks for a gap test");
    // Expected geometric probabilities.
    let mut statistic = 0.0;
    for (g, &obs) in histogram.iter().enumerate() {
        let prob = if g < max_gap {
            p * (1.0 - p).powi(g as i32)
        } else {
            (1.0 - p).powi(max_gap as i32)
        };
        let expected = prob * gaps_total as f64;
        if expected > 0.0 {
            let d = obs as f64 - expected;
            statistic += d * d / expected;
        }
    }
    let degrees = max_gap; // buckets - 1
    GapTest {
        statistic,
        degrees,
        p_value: chi_square_sf(statistic, degrees),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaddar_prng::{SeededRng, SplitMix64};

    fn sample(n: usize, seed: u64) -> Vec<u64> {
        let mut g = SplitMix64::from_seed(seed);
        (0..n).map(|_| g.next_u64()).collect()
    }

    #[test]
    fn good_generator_passes_all_three() {
        let values = sample(20_000, 5);
        let runs = runs_test(&values);
        assert!(runs.p_value > 0.01, "runs p={}", runs.p_value);
        let sc = serial_correlation(&values);
        assert!(sc.abs() < 0.03, "serial correlation {sc}");
        let gaps = gap_test(&values, 0.1, 30);
        assert!(gaps.p_value > 0.01, "gap p={}", gaps.p_value);
    }

    #[test]
    fn monotone_sequence_fails_runs_and_correlation() {
        let values: Vec<u64> = (0..10_000u64).map(|i| i * 1_000).collect();
        let runs = runs_test(&values);
        assert!(runs.p_value < 1e-6, "monotone data passed runs test");
        let sc = serial_correlation(&values);
        assert!(
            sc > 0.9,
            "monotone data should be strongly correlated: {sc}"
        );
    }

    #[test]
    fn alternating_sequence_has_too_many_runs() {
        let values: Vec<u64> = (0..10_000u64)
            .map(|i| if i % 2 == 0 { 1 } else { u64::MAX - 1 })
            .collect();
        let runs = runs_test(&values);
        assert!(runs.z > 10.0, "alternation not detected: z={}", runs.z);
    }

    #[test]
    fn clustered_marks_fail_gap_test() {
        // Values below the threshold always arrive in bursts of 5.
        let mut values = Vec::new();
        let mut g = SplitMix64::from_seed(9);
        for _ in 0..2_000 {
            for _ in 0..5 {
                values.push(g.next_u64() % (u64::MAX / 10)); // marked
            }
            for _ in 0..45 {
                values.push(u64::MAX / 10 + g.next_u64() % (u64::MAX / 2)); // unmarked
            }
        }
        let gaps = gap_test(&values, 0.1, 30);
        assert!(
            gaps.p_value < 1e-6,
            "bursty marks passed: p={}",
            gaps.p_value
        );
    }

    #[test]
    fn constant_series_has_zero_correlation_by_convention() {
        let values = vec![7u64; 100];
        assert_eq!(serial_correlation(&values), 0.0);
    }
}
