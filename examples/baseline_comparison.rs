//! Every strategy, one schedule, one table: the trade-off space the
//! paper positions SCADDAR in, on your terminal.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use scaddar::analysis::{fmt_f64, fmt_pct, Table};
use scaddar::baselines::{
    run_schedule, synthetic_population, ConsistentHashStrategy, DirectoryStrategy,
    FullRedistStrategy, JumpHashStrategy, NaiveStrategy, PlacementStrategy, RoundRobinStrategy,
    ScaddarStrategy,
};
use scaddar::prelude::*;

fn main() {
    let keys = synthetic_population(100_000, 2026);
    let schedule = vec![
        ScalingOp::Add { count: 2 },
        ScalingOp::Add { count: 1 },
        ScalingOp::remove_one(4),
        ScalingOp::Add { count: 2 },
        ScalingOp::remove_one(0),
        ScalingOp::Add { count: 1 },
    ];
    println!(
        "100k blocks, 8 disks, schedule of {} mixed operations\n",
        schedule.len()
    );

    let mut dir = DirectoryStrategy::new(8, 5).unwrap();
    dir.register(&keys);
    let strategies: Vec<Box<dyn PlacementStrategy>> = vec![
        Box::new(ScaddarStrategy::new(8).unwrap()),
        Box::new(NaiveStrategy::new(8).unwrap()),
        Box::new(dir),
        Box::new(FullRedistStrategy::new(8).unwrap()),
        Box::new(RoundRobinStrategy::new(8).unwrap()),
        Box::new(JumpHashStrategy::new(8).unwrap()),
        Box::new(ConsistentHashStrategy::new(8, 256).unwrap()),
    ];

    let mut table = Table::new([
        "strategy",
        "total moved",
        "vs optimal",
        "worst CoV",
        "final CoV",
    ]);
    for mut s in strategies {
        let stats = run_schedule(s.as_mut(), &keys, &schedule).expect("valid schedule");
        let moved: u64 = stats.iter().map(|s| s.moved).sum();
        let optimal: f64 = stats
            .iter()
            .map(|s| s.optimal_fraction * s.total_blocks as f64)
            .sum();
        let worst_cov = stats.iter().map(|s| s.load_cov()).fold(0.0f64, f64::max);
        table.row([
            stats[0].strategy.to_string(),
            fmt_pct(moved as f64 / (keys.len() as f64 * schedule.len() as f64)),
            format!("{}x", fmt_f64(moved as f64 / optimal, 2)),
            fmt_f64(worst_cov, 4),
            fmt_f64(stats.last().unwrap().load_cov(), 4),
        ]);
    }
    println!("{table}");
    println!("how to read it:");
    println!("  - 'vs optimal' is RO1: SCADDAR and the directory sit at ~1x; complete");
    println!("    redistribution and round-robin restriping pay ~5-8x.");
    println!("  - 'worst CoV' is RO2: naive collapses after the second operation; finite");
    println!("    vnodes make consistent hashing lumpy; SCADDAR stays at binomial noise");
    println!("    for the §4.3-budgeted number of operations.");
    println!("  - the directory achieves both — at the cost of a per-block table and a");
    println!("    table-rewrite on every operation (Appendix A's rejected design).");
}
