//! Capacity planning: from drive physics to a provisioned CM server.
//!
//! Walks the classic CM-server sizing exercise — pick a block size, get a
//! service round, get streams-per-disk — then builds the simulated server
//! from those grounded numbers and proves the plan with a live run and a
//! mid-run scale-up.
//!
//! Run with: `cargo run --release --example capacity_planning`

use cmsim::{provisioning_table, DiskModel, ServerConfig, Simulation, WorkloadConfig};
use scaddar_core::ScalingOp;

fn main() {
    // The media: 4 Mbit/s MPEG-2 -> 0.5 MB/s consumption per stream.
    let consume_bps = 0.5e6;
    let model = DiskModel::cheetah_2001();
    println!(
        "drive: 15k RPM, {:.1} ms avg seek, {:.0} MB/s transfer",
        model.avg_seek_s * 1e3,
        model.transfer_bps / 1e6
    );
    println!(
        "media: 4 Mbit/s MPEG-2 ({} KB/s per stream)\n",
        consume_bps as u64 / 1000
    );

    println!("provisioning table (continuous-display rounds):");
    println!("{:>10}  {:>9}  {:>13}", "block", "round", "streams/disk");
    for (bytes, round_s, streams) in provisioning_table(&model, consume_bps) {
        println!(
            "{:>7} KiB  {:>7.3} s  {:>13}",
            bytes / 1024,
            round_s,
            streams
        );
    }

    // Choose 256 KiB blocks (a typical latency/throughput compromise).
    let block_bytes = 256 * 1024;
    let (round_s, per_disk) = model.round_for_rate(block_bytes, consume_bps);
    println!("\nchosen: 256 KiB blocks -> {round_s:.3} s rounds, {per_disk} streams/disk");

    // Target: 300 concurrent viewers with 20% headroom -> disks needed.
    let target_streams = 300.0;
    let disks = (target_streams / (f64::from(per_disk) * 0.8)).ceil() as u32;
    println!("target 300 viewers at 80% utilization -> {disks} disks\n");

    // Build the simulator from the plan and prove it.
    let config = ServerConfig::new(disks)
        .with_disk_model(&model, block_bytes, consume_bps)
        .with_redistribution_bandwidth(4)
        .with_catalog_seed(1);
    // A two-hour movie at 0.5 MB/s is ~3.4 GB = ~14k blocks; use 20
    // titles of 14k blocks.
    let mut sim = Simulation::new(config, WorkloadConfig::interactive(0.6), 7, 20, 14_000)
        .expect("simulation builds");
    sim.run(800);
    println!(
        "after 800 rounds (~{:.0} minutes of service): {} viewers, {} hiccups, {} rejections",
        800.0 * round_s / 60.0,
        sim.server().active_streams(),
        sim.server().metrics().total_hiccups(),
        sim.rejected(),
    );

    // Demand outgrows the plan: add a disk group, online, mid-service.
    let queued = sim.server_mut().scale(ScalingOp::Add { count: 4 }).unwrap();
    let mut rounds = 0;
    while sim.server().backlog() > 0 {
        sim.round();
        rounds += 1;
    }
    println!(
        "scale-up by 4 disks: {queued} blocks migrated over {rounds} rounds ({:.1} min), hiccups total: {}",
        f64::from(rounds) * round_s / 60.0,
        sim.server().metrics().total_hiccups(),
    );
    sim.run(200);
    let census = sim.server().load_census();
    let summary = scaddar::analysis::Summary::of_counts(&census);
    println!(
        "final: {} disks, load CoV {:.4}, residency consistent: {}",
        census.len(),
        summary.cov,
        sim.server().residency_consistent(),
    );
    println!(
        "hiccup rate across the whole run: {:.3}% of requests — the price of \
planning at 80% utilization with Zipf-correlated demand (random placement's \
guarantees are statistical; size the margin to your tail tolerance)",
        sim.server().metrics().hiccup_rate() * 100.0,
    );
}
