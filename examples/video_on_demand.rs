//! A video-on-demand provider's year, compressed: the server grows from
//! 8 to 14 disks across three maintenance windows **while customers keep
//! watching** — the paper's §1 scenario end to end.
//!
//! Run with: `cargo run --release --example video_on_demand`

use scaddar::prelude::*;
use scaddar_core::ScalingOp;

fn main() {
    // A catalog of 20 titles, Zipf-popular, interactive viewers
    // (pause/resume/seek), ~40% utilization.
    let mut sim = Simulation::new(
        ServerConfig::new(8)
            .with_bandwidth(32)
            .with_redistribution_bandwidth(4)
            .with_catalog_seed(7),
        WorkloadConfig::interactive(0.15),
        2026,
        20,
        800,
    )
    .expect("simulation builds");

    println!("quarter 0: 8 disks, filling with viewers...");
    sim.run(600);
    report(&sim, "steady state");

    // Maintenance window 1: demand grew, add a group of 2 disks.
    println!("\nquarter 1: adding a 2-disk group (online)...");
    let queued = sim.server_mut().scale(ScalingOp::Add { count: 2 }).unwrap();
    let drained = drain(&mut sim);
    println!("  queued {queued} block moves, drained in {drained} rounds of background copying");
    report(&sim, "after growth to 10 disks");

    // Maintenance window 2: one early disk shows SMART errors — retire it.
    println!("\nquarter 2: retiring suspect disk 3 (online)...");
    let queued = sim.server_mut().scale(ScalingOp::remove_one(3)).unwrap();
    let drained = drain(&mut sim);
    println!("  drained its {queued} blocks in {drained} rounds; disk unplugged");
    report(&sim, "after retirement to 9 disks");

    // Maintenance window 3: holiday season — a 5-disk group.
    println!("\nquarter 3: holiday capacity, adding 5 disks (online)...");
    let queued = sim.server_mut().scale(ScalingOp::Add { count: 5 }).unwrap();
    let drained = drain(&mut sim);
    println!("  queued {queued} moves, drained in {drained} rounds");
    sim.run(400);
    report(&sim, "year end, 14 disks");

    let m = sim.server().metrics();
    println!(
        "\nthe year in numbers: {} blocks served, {} hiccups ({:.4}% of requests), {} admission rejections",
        m.total_served(),
        m.total_hiccups(),
        m.hiccup_rate() * 100.0,
        sim.rejected(),
    );
    assert!(
        sim.server().residency_consistent(),
        "placement and residency must agree at year end"
    );
    let fairness = sim.server().engine().fairness();
    println!(
        "fairness budget used: sigma={} after {} ops; next op safe? {}",
        fairness.sigma,
        fairness.operations,
        sim.server().next_op_is_safe(&ScalingOp::Add { count: 1 }),
    );
}

fn drain(sim: &mut Simulation) -> u32 {
    let mut rounds = 0;
    while sim.server().backlog() > 0 {
        sim.round();
        rounds += 1;
    }
    rounds
}

fn report(sim: &Simulation, label: &str) {
    let census = sim.server().load_census();
    let total: u64 = census.iter().sum();
    let mean = total as f64 / census.len() as f64;
    let worst = census
        .iter()
        .map(|&c| ((c as f64 - mean) / mean).abs())
        .fold(0.0f64, f64::max);
    println!(
        "  [{label}] {} viewers, {} disks, {} blocks stored, worst disk deviation {:.1}%, hiccups so far: {}",
        sim.server().active_streams(),
        sim.server().disks().disks(),
        total,
        worst * 100.0,
        sim.server().metrics().total_hiccups(),
    );
}
