//! Retiring a generation of disks with mirroring armed (§6): group
//! removal, draining, and what the `f(N) = N/2` mirror offset buys when
//! a disk dies *without* warning mid-retirement.
//!
//! Run with: `cargo run --release --example disk_retirement`

use cmsim::{availability_census, mirror_of, CmServer, ServerConfig};
use scaddar::prelude::*;
use scaddar_core::DiskIndex;

fn main() {
    // An aging 10-disk array, half of it from the old generation.
    let mut server = CmServer::new(
        ServerConfig::new(10)
            .with_bandwidth(32)
            .with_redistribution_bandwidth(8)
            .with_catalog_seed(99),
    )
    .unwrap();
    for _ in 0..10 {
        server.add_object(10_000).unwrap();
    }
    println!(
        "array: 10 disks, {} blocks; old generation = disks 0..5",
        server.store().len()
    );

    // Mirror math: every block is also reachable at offset N/2.
    let sample = server.engine().locate(ObjectId(0), 0).unwrap();
    println!(
        "sample block: primary {sample}, mirror {} (offset {})",
        mirror_of(sample, 10),
        10 / 2
    );

    // Surprise failure before the retirement even starts.
    let (readable, lost) = availability_census(&server, &[DiskIndex(2)]).unwrap();
    println!("disk 2 dies unexpectedly: {readable} blocks readable, {lost} lost (mirroring holds)");
    assert_eq!(lost, 0);

    // Planned retirement of the old generation, two disks per window so
    // bandwidth stays available for viewers.
    println!("\nretiring the old generation (disks 0..5), two per window:");
    for window in 0..2 {
        // After renumbering, the oldest disks are always at the front.
        let op = ScalingOp::Remove { disks: vec![0, 1] };
        assert!(server.next_op_is_safe(&op), "fairness budget exhausted");
        let queued = server.scale(op).unwrap();
        let mut rounds = 0;
        while server.backlog() > 0 {
            server.tick();
            rounds += 1;
        }
        println!(
            "  window {window}: moved {queued} blocks over {rounds} rounds; now {} disks, draining {} left",
            server.disks().disks(),
            server.draining_disks().len(),
        );
        assert!(server.residency_consistent());
    }

    // Final state: 6 disks, balanced, mirrors intact at the new offset.
    let census = server.load_census();
    let total: u64 = census.iter().sum();
    let mean = total as f64 / census.len() as f64;
    println!("\nfinal load census across {} disks:", census.len());
    for (d, &c) in census.iter().enumerate() {
        println!(
            "  disk {d}: {c} blocks ({:+.1}% vs mean)",
            (c as f64 - mean) / mean * 100.0
        );
    }
    let (readable, lost) = availability_census(&server, &[DiskIndex(0)]).unwrap();
    println!("single-failure check after retirement: {readable} readable, {lost} lost");
    assert_eq!(lost, 0);
    println!(
        "fairness: sigma={} after {} operations — {}",
        server.engine().fairness().sigma,
        server.engine().fairness().operations,
        if server.next_op_is_safe(&ScalingOp::Add { count: 1 }) {
            "budget remains for more scaling"
        } else {
            "schedule a full redistribution next"
        }
    );
}
