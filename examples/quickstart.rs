//! Quickstart: place an object, scale the array, watch SCADDAR keep its
//! three promises (minimal movement, balanced load, directory-free
//! lookup).
//!
//! Run with: `cargo run --release --example quickstart`

use scaddar::prelude::*;

fn print_loads(label: &str, loads: &[u64]) {
    let total: u64 = loads.iter().sum();
    let mean = total as f64 / loads.len() as f64;
    print!("{label:<28}");
    for &l in loads {
        print!(" {l:>6}");
    }
    let worst = loads
        .iter()
        .map(|&l| ((l as f64 - mean) / mean).abs())
        .fold(0.0f64, f64::max);
    println!("   (worst deviation {:.1}%)", worst * 100.0);
}

fn main() {
    // A server with 4 disks; paper defaults (32-bit randomness, eps=5%).
    let mut engine = Scaddar::new(ScaddarConfig::new(4).with_catalog_seed(2026)).unwrap();

    // Store a two-hour movie: 100k quarter-megabyte blocks.
    let movie = engine.add_object(100_000);
    println!(
        "stored one object, {} blocks, on {} disks",
        100_000,
        engine.disks()
    );
    print_loads("initial load:", &engine.load_distribution());

    // Any block is locatable from (seed, index) alone — no directory.
    let d = engine.locate(movie, 31_337).unwrap();
    println!("block 31337 lives on {d} — computed, not looked up\n");

    // Grow the array: add a group of 2 disks.
    let plan = engine.scale(ScalingOp::Add { count: 2 }).unwrap();
    println!(
        "added 2 disks: moved {} of {} blocks ({:.2}%; optimal is {:.2}%)",
        plan.moves.len(),
        plan.total_blocks,
        plan.moved_fraction() * 100.0,
        plan.optimal_fraction * 100.0,
    );
    assert!(
        plan.moves.iter().all(|m| m.to.0 >= 4),
        "moves target only new disks"
    );
    print_loads("after adding 2:", &engine.load_distribution());

    // Retire a disk. Only its blocks move, scattered over the survivors.
    let plan = engine.scale(ScalingOp::remove_one(1)).unwrap();
    println!(
        "\nremoved disk 1: moved {} blocks ({:.2}%; optimal {:.2}%)",
        plan.moves.len(),
        plan.moved_fraction() * 100.0,
        plan.optimal_fraction * 100.0,
    );
    print_loads("after removing 1:", &engine.load_distribution());

    // The same lookup still works; the chain of remaps is the directory.
    let d = engine.locate(movie, 31_337).unwrap();
    println!("\nblock 31337 now lives on {d} — same computation, longer chain");

    // And §4.3 tells us how much longer this can continue.
    let report = engine.fairness();
    println!(
        "fairness after {} ops: sigma={}, unfairness bound {:.4} (eps budget 0.05)",
        report.operations, report.sigma, report.unfairness_bound
    );
    println!(
        "rule of thumb at ~6 disks, b=32, eps=5%: {} operations before full redistribution",
        rule_of_thumb_max_ops(Bits::B32, 6.0, 0.05)
    );
}
