//! Cross-crate integration: the full simulated server driven through a
//! realistic life, with invariants checked at every stage.

use cmsim::{CmServer, ServerConfig, Simulation, WorkloadConfig};
use scaddar::prelude::*;

fn drained(server: &mut CmServer) -> u32 {
    let mut rounds = 0;
    while server.backlog() > 0 {
        server.tick();
        rounds += 1;
        assert!(rounds < 100_000, "drain diverged");
    }
    rounds
}

#[test]
fn server_lifetime_with_mixed_scaling_and_content_churn() {
    let mut server = CmServer::new(
        ServerConfig::new(6)
            .with_bandwidth(32)
            .with_redistribution_bandwidth(8)
            .with_catalog_seed(1234),
    )
    .unwrap();

    // Content arrives over time.
    let first = server.add_object(8_000).unwrap();
    server.add_object(12_000).unwrap();
    assert!(server.residency_consistent());

    // Grow online.
    server.scale(ScalingOp::Add { count: 2 }).unwrap();
    drained(&mut server);
    assert!(server.residency_consistent());

    // More content lands on the *expanded* array.
    let third = server.add_object(10_000).unwrap();
    assert!(server.residency_consistent());

    // Old content retired; a disk too.
    server.remove_object(first).unwrap();
    server.scale(ScalingOp::remove_one(1)).unwrap();
    drained(&mut server);
    assert!(server.residency_consistent());

    // Final accounting.
    assert_eq!(server.store().len(), 22_000);
    let census = server.load_census();
    assert_eq!(census.len(), 7);
    assert_eq!(census.iter().sum::<u64>(), 22_000);
    let summary = scaddar::analysis::Summary::of_counts(&census);
    assert!(summary.cov < 0.05, "load became unbalanced: {census:?}");

    // Blocks of the remaining objects are all reachable.
    for blk in (0..10_000).step_by(997) {
        let d = server.engine().locate(third, blk).unwrap();
        assert!(d.0 < 7);
    }
}

#[test]
fn overlapping_online_scalings_converge() {
    let mut server = CmServer::new(
        ServerConfig::new(4)
            .with_redistribution_bandwidth(2)
            .with_catalog_seed(55),
    )
    .unwrap();
    server.add_object(30_000).unwrap();
    // Fire three additions without waiting for drains.
    server.scale(ScalingOp::Add { count: 1 }).unwrap();
    for _ in 0..3 {
        server.tick();
    }
    server.scale(ScalingOp::Add { count: 1 }).unwrap();
    for _ in 0..3 {
        server.tick();
    }
    server.scale(ScalingOp::Add { count: 2 }).unwrap();
    drained(&mut server);
    assert_eq!(server.disks().disks(), 8);
    assert!(server.residency_consistent());
}

#[test]
fn simulation_under_continuous_churn_stays_clean() {
    let mut sim = Simulation::new(
        ServerConfig::new(8)
            .with_bandwidth(32)
            .with_redistribution_bandwidth(4)
            .with_catalog_seed(9),
        WorkloadConfig::interactive(0.1),
        17,
        10,
        600,
    )
    .unwrap();
    sim.run(300);
    // Four maintenance events interleaved with service.
    for (i, op) in [
        ScalingOp::Add { count: 1 },
        ScalingOp::remove_one(2),
        ScalingOp::Add { count: 2 },
        ScalingOp::remove_one(7),
    ]
    .into_iter()
    .enumerate()
    {
        assert!(sim.server().next_op_is_safe(&op), "op {i} exceeded budget");
        sim.server_mut().scale(op).unwrap();
        while sim.server().backlog() > 0 {
            sim.round();
        }
        assert!(sim.server().residency_consistent(), "after op {i}");
    }
    sim.run(200);
    assert_eq!(
        sim.server().metrics().total_hiccups(),
        0,
        "maintenance must be invisible at this load"
    );
    assert_eq!(sim.server().disks().disks(), 9); // 8 +1 -1 +2 -1
}

#[test]
fn full_redistribution_endgame() {
    // Burn through the fairness budget, then reset exactly as the paper
    // prescribes, and keep operating.
    let mut engine = Scaddar::new(
        ScaddarConfig::new(8)
            .with_catalog_seed(31)
            .with_epsilon(0.05),
    )
    .unwrap();
    engine.add_object(50_000);
    let mut ops = 0;
    while engine.next_op_is_safe(8) {
        engine.scale(ScalingOp::remove_one(0)).unwrap();
        engine.scale(ScalingOp::Add { count: 1 }).unwrap();
        ops += 2;
        assert!(ops < 100);
    }
    let census_before = engine.load_distribution();
    let moved = engine.full_redistribution();
    assert!(moved > 30_000, "full redistribution is near-total: {moved}");
    assert_eq!(engine.epoch(), 0);
    let census_after = engine.load_distribution();
    let cov_after = scaddar::analysis::Summary::of_counts(&census_after).cov;
    let cov_before = scaddar::analysis::Summary::of_counts(&census_before).cov;
    assert!(
        cov_after <= cov_before + 0.01,
        "reset must not worsen balance"
    );
    assert!(engine.next_op_is_safe(8), "budget restored");
}
