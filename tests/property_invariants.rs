//! Property-based integration tests: random scaling schedules against
//! the algorithm's invariants, spanning core + baselines + analysis.

use proptest::prelude::*;
use scaddar::baselines::{run_schedule, synthetic_population, PhysicalMap, ScaddarStrategy};
use scaddar::prelude::*;

/// Generates a random valid schedule of up to `max_ops` operations,
/// tracking the disk count so removals are always legal and the array
/// never shrinks below 2 or grows above 64.
fn schedules(max_ops: usize) -> impl Strategy<Value = (u32, Vec<ScalingOp>)> {
    (
        2u32..12,
        proptest::collection::vec((0u32..4, any::<u64>()), 1..=max_ops),
    )
        .prop_map(|(initial, raw)| {
            let mut disks = initial;
            let mut ops = Vec::new();
            for (kind, pick) in raw {
                if kind == 0 && disks > 2 {
                    // Remove one pseudo-randomly chosen disk.
                    let victim = (pick % u64::from(disks)) as u32;
                    ops.push(ScalingOp::remove_one(victim));
                    disks -= 1;
                } else if kind == 1 && disks > 4 {
                    // Remove a small group.
                    let a = (pick % u64::from(disks)) as u32;
                    let b = (a + 1 + (pick >> 32) as u32 % (disks - 1)) % disks;
                    if a != b {
                        ops.push(ScalingOp::Remove { disks: vec![a, b] });
                        disks -= 2;
                    }
                } else {
                    let count = 1 + (pick % 3) as u32;
                    if disks + count <= 64 {
                        ops.push(ScalingOp::Add { count });
                        disks += count;
                    }
                }
            }
            (initial, ops)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every block is always locatable on a live disk, at every epoch,
    /// for arbitrary valid schedules.
    #[test]
    fn locate_is_total_and_in_range((initial, ops) in schedules(10)) {
        let mut engine = Scaddar::new(ScaddarConfig::new(initial).with_catalog_seed(7)).unwrap();
        let obj = engine.add_object(2_000);
        for op in ops {
            engine.scale(op).unwrap();
            let n = engine.disks();
            for blk in (0..2_000).step_by(37) {
                let d = engine.locate(obj, blk).unwrap();
                prop_assert!(d.0 < n, "block {blk} out of range: {d} of {n}");
            }
        }
    }

    /// RO1 as a universal law: per operation, the observed physical
    /// movement matches the optimal fraction within binomial noise.
    #[test]
    fn movement_is_always_near_optimal((initial, ops) in schedules(8)) {
        prop_assume!(!ops.is_empty());
        let keys = synthetic_population(30_000, 99);
        let mut strategy = ScaddarStrategy::new(initial).unwrap();
        let stats = run_schedule(&mut strategy, &keys, &ops).unwrap();
        for s in &stats {
            // 4-sigma binomial tolerance around z_j.
            let z = s.optimal_fraction;
            let sigma = (z * (1.0 - z) / s.total_blocks as f64).sqrt();
            prop_assert!(
                (s.moved_fraction() - z).abs() < 4.0 * sigma + 1e-9,
                "op {}: moved {} vs z {z} (sigma {sigma})",
                s.op_index,
                s.moved_fraction()
            );
        }
    }

    /// Conservation: blocks are never lost or duplicated — every census
    /// sums to the population, at every step.
    #[test]
    fn census_conserves_blocks((initial, ops) in schedules(8)) {
        prop_assume!(!ops.is_empty());
        let keys = synthetic_population(10_000, 3);
        let mut strategy = ScaddarStrategy::new(initial).unwrap();
        let stats = run_schedule(&mut strategy, &keys, &ops).unwrap();
        for s in &stats {
            prop_assert_eq!(s.load_census.iter().sum::<u64>(), 10_000u64);
            prop_assert_eq!(s.load_census.len() as u32, s.disks_after);
        }
    }

    /// The physical map and the scaling log agree on disk counts for any
    /// schedule (cross-crate numbering consistency).
    #[test]
    fn physical_map_and_log_agree((initial, ops) in schedules(12)) {
        let mut map = PhysicalMap::new(initial);
        let mut log = ScalingLog::new(initial).unwrap();
        for op in &ops {
            map.apply(op).unwrap();
            log.push(op).unwrap();
            prop_assert_eq!(map.disks(), log.current_disks());
        }
    }

    /// Determinism: the same schedule and seeds yield bit-identical
    /// placements (the reproducibility SCADDAR's directory-freeness
    /// rests on).
    #[test]
    fn placement_is_deterministic((initial, ops) in schedules(6)) {
        let build = |_: ()| {
            let mut e = Scaddar::new(ScaddarConfig::new(initial).with_catalog_seed(5)).unwrap();
            let id = e.add_object(500);
            for op in &ops {
                e.scale(op.clone()).unwrap();
            }
            (0..500).map(|b| e.locate(id, b).unwrap().0).collect::<Vec<_>>()
        };
        prop_assert_eq!(build(()), build(()));
    }

    /// The fairness tracker's sigma matches a direct product over the
    /// log's disk counts, for any schedule.
    #[test]
    fn sigma_matches_direct_product((initial, ops) in schedules(12)) {
        let mut log = ScalingLog::new(initial).unwrap();
        for op in &ops {
            log.push(op).unwrap();
        }
        let tracker = FairnessTracker::from_log(Bits::B32, &log);
        let direct: u128 = log
            .disk_counts()
            .iter()
            .fold(1u128, |acc, &n| acc.saturating_mul(u128::from(n)));
        prop_assert_eq!(tracker.sigma(), direct);
    }
}
