//! Property-based equivalence tests for the bulk location engine: the
//! compiled [`RemapPipeline`], the epoch-tagged X-cache behind
//! [`Scaddar::locate`], and the parallel planner must all agree with the
//! stateless reference fold, for arbitrary valid scaling histories.

use proptest::prelude::*;
use scaddar::core::address::x_at_current_epoch;
use scaddar::core::xcache::XCache;
use scaddar::prelude::*;

/// Random valid schedules (same shape as `property_invariants`): a mix
/// of single/group removals and additions, disk count kept in 2..=64.
fn schedules(max_ops: usize) -> impl Strategy<Value = (u32, Vec<ScalingOp>)> {
    (
        2u32..12,
        proptest::collection::vec((0u32..4, any::<u64>()), 1..=max_ops),
    )
        .prop_map(|(initial, raw)| {
            let mut disks = initial;
            let mut ops = Vec::new();
            for (kind, pick) in raw {
                if kind == 0 && disks > 2 {
                    let victim = (pick % u64::from(disks)) as u32;
                    ops.push(ScalingOp::remove_one(victim));
                    disks -= 1;
                } else if kind == 1 && disks > 4 {
                    let a = (pick % u64::from(disks)) as u32;
                    let b = (a + 1 + (pick >> 32) as u32 % (disks - 1)) % disks;
                    if a != b {
                        ops.push(ScalingOp::Remove { disks: vec![a, b] });
                        disks -= 2;
                    }
                } else {
                    let count = 1 + (pick % 3) as u32;
                    if disks + count <= 64 {
                        ops.push(ScalingOp::Add { count });
                        disks += count;
                    }
                }
            }
            (initial, ops)
        })
}

fn log_of(initial: u32, ops: &[ScalingOp]) -> ScalingLog {
    let mut log = ScalingLog::new(initial).unwrap();
    for op in ops {
        log.push(op).unwrap();
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compiled pipeline's fold is the reference fold, for arbitrary
    /// op sequences and arbitrary `X_0` — including incremental
    /// compilation via `extend_from` after every operation.
    #[test]
    fn pipeline_fold_equals_reference_fold(
        (initial, ops) in schedules(10),
        x0s in proptest::collection::vec(any::<u64>(), 16),
    ) {
        let mut log = ScalingLog::new(initial).unwrap();
        let mut pipeline = RemapPipeline::compile(&log);
        for op in &ops {
            log.push(op).unwrap();
            pipeline.extend_from(&log);
            prop_assert_eq!(pipeline.epoch(), log.epoch());
            prop_assert_eq!(pipeline.current_disks(), log.current_disks());
            for &x0 in &x0s {
                prop_assert_eq!(
                    pipeline.fold(x0),
                    x_at_current_epoch(x0, &log),
                    "x0 {} at epoch {}", x0, log.epoch()
                );
                prop_assert_eq!(pipeline.locate(x0), locate(x0, &log));
            }
        }
        // One-shot compilation of the full log agrees with incremental.
        prop_assert_eq!(RemapPipeline::compile(&log), pipeline);
    }

    /// The parallel planner produces the *identical* `MovePlan` as the
    /// serial planner — moves in the same order, same censuses — for any
    /// history, any thread count.
    #[test]
    fn parallel_plan_equals_serial_plan(
        (initial, ops) in schedules(6),
        threads in 1usize..9,
    ) {
        prop_assume!(!ops.is_empty());
        let mut catalog = Catalog::new(RngKind::SplitMix64, Bits::B32, 11);
        catalog.add_object(1_500);
        catalog.add_object(700);
        let log = log_of(initial, &ops);
        let serial = plan_last_op(&catalog, &log);
        let parallel = plan_last_op_parallel(&catalog, &log, threads);
        prop_assert_eq!(parallel, serial);
    }

    /// The engine's cached-X lookups agree with the stateless O(j)
    /// oracle at every epoch of a random history, through object churn.
    #[test]
    fn cached_locate_equals_oracle((initial, ops) in schedules(8)) {
        let mut engine = Scaddar::new(
            ScaddarConfig::new(initial).with_catalog_seed(13),
        ).unwrap();
        let first = engine.add_object(800);
        let second = engine.add_object(300);
        let mut removed_one = false;
        for (i, op) in ops.iter().enumerate() {
            engine.scale(op.clone()).unwrap();
            if i == 1 {
                // Mid-history churn: the cache must track both kinds.
                engine.remove_object(second).unwrap();
                removed_one = true;
                engine.add_object(200);
            }
            for &(id, blocks) in &[(first, 800u64), (second, 300)] {
                if id == second && removed_one {
                    prop_assert!(engine.locate(id, 0).is_err());
                    continue;
                }
                let obj = *engine.catalog().object(id).unwrap();
                let bulk = engine.locate_all(id).unwrap();
                for block in (0..blocks).step_by(53) {
                    let x0 = engine.catalog().x0(&obj, block);
                    let oracle = locate(x0, engine.log());
                    prop_assert_eq!(
                        engine.locate(id, block).unwrap(), oracle,
                        "{} block {} after op {}", id, block, i
                    );
                    prop_assert_eq!(bulk[block as usize], oracle);
                }
            }
        }
    }

    /// The X-cache advanced incrementally (one REMAP per epoch bump)
    /// matches a from-scratch rebuild at every epoch.
    #[test]
    fn incremental_cache_equals_rebuild((initial, ops) in schedules(8)) {
        let mut catalog = Catalog::new(RngKind::SplitMix64, Bits::B32, 5);
        let id = catalog.add_object(600);
        let mut log = ScalingLog::new(initial).unwrap();
        let mut pipeline = RemapPipeline::compile(&log);
        let mut cache = XCache::rebuild(&catalog, &pipeline);
        for op in &ops {
            log.push(op).unwrap();
            pipeline.extend_from(&log);
            cache.advance_to(&pipeline);
            let rebuilt = XCache::rebuild(&catalog, &pipeline);
            prop_assert_eq!(cache.epoch(), rebuilt.epoch());
            prop_assert_eq!(cache.xs(id), rebuilt.xs(id));
        }
    }
}
