//! Cross-crate integration: the redundancy and integrity machinery
//! (mirroring, declustered parity, failures, scrubbing, snapshots)
//! working together over one server lifetime.

use cmsim::{availability_census, CmServer, DeclusteredParity, Scrubber, ServerConfig};
use scaddar_core::{DiskIndex, ScalingOp};

fn drained(server: &mut CmServer) {
    let mut rounds = 0;
    while server.backlog() > 0 {
        server.tick();
        rounds += 1;
        assert!(rounds < 100_000, "drain diverged");
    }
}

#[test]
fn mirror_and_parity_agree_on_single_failure_safety() {
    let mut server = CmServer::new(ServerConfig::new(10).with_catalog_seed(3)).unwrap();
    server.add_object(8_000).unwrap();
    let parity = DeclusteredParity::build(&server, 4).unwrap();
    for d in 0..10 {
        let failed = [DiskIndex(d)];
        let (_, mirror_lost) = availability_census(&server, &failed).unwrap();
        let (_, parity_lost) = parity.availability(&server, &failed).unwrap();
        assert_eq!(mirror_lost, 0, "mirroring lost data on disk {d}");
        assert_eq!(parity_lost, 0, "declustered parity lost data on disk {d}");
    }
}

#[test]
fn failure_scaling_scrub_snapshot_lifecycle() {
    let mut server = CmServer::new(
        ServerConfig::new(8)
            .with_bandwidth(32)
            .with_redistribution_bandwidth(8)
            .with_catalog_seed(12),
    )
    .unwrap();
    let obj = server.add_object(10_000).unwrap();
    let mut parity = DeclusteredParity::build(&server, 5).unwrap();
    let mut scrubber = Scrubber::new();

    // Grow, repair parity, scrub clean.
    server.scale(ScalingOp::Add { count: 2 }).unwrap();
    drained(&mut server);
    parity.repair(&server).unwrap();
    assert_eq!(parity.conflicted_groups(&server).unwrap(), 0);
    loop {
        let r = scrubber.scrub(&server, 4_096);
        assert!(r.corrupt.is_empty(), "scrub found corruption after growth");
        if r.completed_pass {
            break;
        }
    }

    // A disk dies; the operator pulls it; parity regroups.
    let dead = server.fail_disk(DiskIndex(4));
    server.scale(ScalingOp::remove_one(4)).unwrap();
    drained(&mut server);
    assert_eq!(server.store().blocks_on(dead), 0);
    parity.repair(&server).unwrap();
    assert_eq!(parity.conflicted_groups(&server).unwrap(), 0);
    assert!(server.residency_consistent());

    // Single-failure safety holds on the reshaped array.
    for d in 0..server.disks().disks() {
        let (_, lost) = parity.availability(&server, &[DiskIndex(d)]).unwrap();
        assert_eq!(lost, 0, "disk {d} after lifecycle");
    }

    // Snapshot, restore, and verify the restored server serves the same
    // placement and scrubs clean.
    let bytes = server.snapshot().unwrap();
    let restored = CmServer::restore(ServerConfig::new(8).with_catalog_seed(12), &bytes).unwrap();
    for blk in (0..10_000).step_by(503) {
        assert_eq!(
            restored.engine().locate(obj, blk).unwrap(),
            server.engine().locate(obj, blk).unwrap()
        );
    }
    let mut scrubber = Scrubber::new();
    loop {
        let r = scrubber.scrub(&restored, 4_096);
        assert!(r.corrupt.is_empty());
        assert_eq!(r.in_transit, 0);
        if r.completed_pass {
            break;
        }
    }
}

#[test]
fn double_failure_beyond_redundancy_is_detected_not_hidden() {
    // Mirror partners at N=6: disks 0 and 3.
    let mut server = CmServer::new(ServerConfig::new(6).with_catalog_seed(9)).unwrap();
    let obj = server.add_object(4_000).unwrap();
    let (_, lost) = availability_census(&server, &[DiskIndex(0), DiskIndex(3)]).unwrap();
    assert!(lost > 0, "the fatal pair must lose data");

    // Live server: fail both, streams on affected blocks stall rather
    // than silently reading garbage.
    for _ in 0..20 {
        server.open_stream(obj).unwrap();
    }
    server.fail_disk(DiskIndex(0));
    server.fail_disk(DiskIndex(3));
    for _ in 0..40 {
        server.tick();
    }
    assert!(server.metrics().total_hiccups() > 0);
    // Non-partner double failure on a fresh server: zero loss.
    let server2 = {
        let mut s = CmServer::new(ServerConfig::new(6).with_catalog_seed(9)).unwrap();
        s.add_object(4_000).unwrap();
        s
    };
    let (_, lost) = availability_census(&server2, &[DiskIndex(0), DiskIndex(2)]).unwrap();
    assert_eq!(lost, 0);
}
