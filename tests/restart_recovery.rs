//! Restart and recovery: the directory-freeness claim under the
//! operational lens. A CM server that crashes or restarts must relocate
//! every block from durable metadata alone — the object seeds and the
//! scaling log — and a rebuilt block store must agree with the old one.

use cmsim::{CmServer, ServerConfig};
use scaddar::prelude::*;

/// Replays a "persisted" description (config + object sizes + ops) into
/// a fresh server, as a restart would.
fn replay(config: ServerConfig, objects: &[u64], ops: &[ScalingOp]) -> CmServer {
    let mut server = CmServer::new(config).unwrap();
    for &blocks in objects {
        server.add_object(blocks).unwrap();
    }
    for op in ops {
        server.scale_offline(op.clone()).unwrap();
    }
    server
}

#[test]
fn restart_reconstructs_identical_placement() {
    let config = ServerConfig::new(5).with_catalog_seed(777);
    let objects = [4_000u64, 6_000, 2_000];
    let ops = [
        ScalingOp::Add { count: 2 },
        ScalingOp::remove_one(3),
        ScalingOp::Add { count: 1 },
    ];

    let a = replay(config, &objects, &ops);
    let b = replay(config, &objects, &ops);

    for (i, &blocks) in objects.iter().enumerate() {
        let id = ObjectId(i as u64);
        for blk in (0..blocks).step_by(101) {
            assert_eq!(
                a.engine().locate(id, blk).unwrap(),
                b.engine().locate(id, blk).unwrap(),
                "object {i} block {blk} diverged across restart"
            );
            assert_eq!(
                a.store().locate(BlockRef {
                    object: id,
                    block: blk
                }),
                b.store().locate(BlockRef {
                    object: id,
                    block: blk
                }),
            );
        }
    }
    assert_eq!(a.load_census(), b.load_census());
}

#[test]
fn restart_with_different_catalog_seed_diverges() {
    // Sanity check of the test itself: the seed genuinely drives
    // placement — a wrong seed would corrupt recovery.
    let objects = [4_000u64];
    let ops = [ScalingOp::Add { count: 1 }];
    let a = replay(ServerConfig::new(5).with_catalog_seed(1), &objects, &ops);
    let b = replay(ServerConfig::new(5).with_catalog_seed(2), &objects, &ops);
    let same = (0..4_000)
        .filter(|&blk| {
            a.engine().locate(ObjectId(0), blk).unwrap()
                == b.engine().locate(ObjectId(0), blk).unwrap()
        })
        .count();
    // ~1/6 agree by chance on 6 disks; identical placement would be 4000.
    assert!(same < 1_000, "placements should diverge, {same} matched");
}

/// A golden snapshot with some history: the corruption-fuzz target.
fn golden_engine() -> scaddar::core::Scaddar {
    let config = scaddar::core::ScaddarConfig::new(5).with_catalog_seed(99);
    let mut engine = scaddar::core::Scaddar::new(config).unwrap();
    engine.add_object(700);
    engine.add_object(300);
    engine.scale(ScalingOp::Add { count: 2 }).unwrap();
    engine
        .scale(ScalingOp::Remove { disks: vec![1, 4] })
        .unwrap();
    engine.scale(ScalingOp::add_one()).unwrap();
    engine
}

/// Placement fingerprint of an engine: every block's disk, in catalog
/// order. Two engines with equal fingerprints serve identical reads.
fn placement_of(engine: &scaddar::core::Scaddar) -> Vec<u32> {
    let mut out = Vec::new();
    for obj in engine.catalog().objects() {
        out.extend(engine.locate_all(obj.id).unwrap().iter().map(|d| d.0));
    }
    out
}

/// Corruption fuzz, truncation sweep: *every* proper prefix of a golden
/// snapshot must fail to decode. A truncation that decoded successfully
/// could silently recover an older epoch and serve every block from the
/// wrong disk — the worst failure a directory-free design admits.
#[test]
fn every_truncation_fails_to_decode() {
    let bytes = golden_engine().snapshot();
    for len in 0..bytes.len() {
        let decoded = scaddar::core::persist::decode(&bytes[..len]);
        assert!(
            decoded.is_err(),
            "truncation to {len}/{} bytes decoded successfully",
            bytes.len()
        );
        assert_eq!(
            scaddar::core::persist::validate(&bytes[..len]).is_err(),
            decoded.is_err(),
            "validate and decode disagree at {len}"
        );
    }
}

/// Corruption fuzz, bit-flip sweep: flipping any single bit anywhere in
/// the snapshot must yield a decode error — never a *wrong placement*.
/// The CRC32 trailer guarantees detection of all 1-bit errors, so a
/// clean decode of a flipped snapshot would be a checksum-coverage bug;
/// the placement comparison is belt and braces in case that guarantee
/// is ever weakened to "decode but identical".
#[test]
fn every_single_bit_flip_is_detected_or_harmless() {
    let engine = golden_engine();
    let bytes = engine.snapshot();
    let golden_placement = placement_of(&engine);
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << bit;
            match scaddar::core::Scaddar::from_snapshot(&corrupt, 0.05) {
                Err(_) => {}
                Ok(recovered) => {
                    assert_eq!(
                        placement_of(&recovered),
                        golden_placement,
                        "bit {bit} of byte {byte}: flipped snapshot decoded \
                         to a DIFFERENT placement"
                    );
                }
            }
        }
    }
}

#[test]
fn interrupted_redistribution_can_resume_after_replay() {
    // A crash mid-redistribution: on restart, the engine's AF() already
    // points at the new epoch; re-deriving the residual move set from
    // (AF target != current residency) and executing it converges to a
    // consistent state. We simulate the crash by replaying into a server
    // that has only *partially* executed the op's moves.
    let config = ServerConfig::new(4).with_catalog_seed(3);
    let mut server = CmServer::new(config).unwrap();
    server.add_object(10_000).unwrap();
    server.scale(ScalingOp::Add { count: 1 }).unwrap();
    // Execute only a few rounds, then "crash".
    for _ in 0..3 {
        server.tick();
    }
    assert!(server.backlog() > 0, "crash must interrupt mid-drain");
    // Recovery: keep draining (the queue in a real system is re-derived
    // by scanning residency vs AF(); here the executor state doubles as
    // that scan's result).
    while server.backlog() > 0 {
        server.tick();
    }
    assert!(server.residency_consistent());
}
