//! Integration tests asserting the paper's claims across crate
//! boundaries — every numbered claim of the paper, as a test.

use scaddar::baselines::{run_schedule, synthetic_population, NaiveStrategy, ScaddarStrategy};
use scaddar::prelude::*;

/// Definition 3.4 RO1 — additions: exactly `(N_j - N_{j-1})/N_j` of
/// blocks move (binomially), and only onto added disks.
#[test]
fn ro1_addition_moves_optimal_fraction() {
    for (n0, added) in [(4u32, 1u32), (8, 2), (5, 5), (16, 4)] {
        let mut engine = Scaddar::new(ScaddarConfig::new(n0).with_catalog_seed(1)).unwrap();
        engine.add_object(200_000);
        let plan = engine.scale(ScalingOp::Add { count: added }).unwrap();
        let z = f64::from(added) / f64::from(n0 + added);
        assert!(
            (plan.moved_fraction() - z).abs() < 0.01,
            "N0={n0}+{added}: moved {} vs z={z}",
            plan.moved_fraction()
        );
        assert!(
            plan.moves.iter().all(|m| m.to.0 >= n0),
            "N0={n0}+{added}: a block moved onto an old disk"
        );
    }
}

/// Definition 3.4 RO1 — removals: exactly the removed disks' blocks move.
#[test]
fn ro1_removal_moves_only_victims() {
    let mut engine = Scaddar::new(ScaddarConfig::new(8).with_catalog_seed(2)).unwrap();
    let obj = engine.add_object(100_000);
    // Record who lives on disks 2 and 5.
    let victims: Vec<u64> = (0..100_000)
        .filter(|&b| {
            let d = engine.locate(obj, b).unwrap().0;
            d == 2 || d == 5
        })
        .collect();
    let plan = engine
        .scale(ScalingOp::Remove { disks: vec![2, 5] })
        .unwrap();
    assert_eq!(plan.moves.len(), victims.len());
    let moved: std::collections::HashSet<u64> = plan.moves.iter().map(|m| m.block.block).collect();
    assert_eq!(moved, victims.into_iter().collect());
}

/// RO2 — randomization is maintained: after each budgeted operation the
/// load census passes a chi-square uniformity test at 1%.
#[test]
fn ro2_uniformity_holds_within_budget() {
    let mut engine = Scaddar::new(ScaddarConfig::new(8).with_catalog_seed(3)).unwrap();
    for _ in 0..20 {
        engine.add_object(5_000);
    }
    let schedule = [
        ScalingOp::Add { count: 1 },
        ScalingOp::remove_one(0),
        ScalingOp::Add { count: 2 },
        ScalingOp::remove_one(4),
        ScalingOp::Add { count: 1 },
        ScalingOp::remove_one(2),
    ];
    for op in schedule {
        assert!(
            engine.next_op_is_safe(engine.disks()),
            "budget exhausted early"
        );
        engine.scale(op).unwrap();
        let census = engine.load_distribution();
        let chi = scaddar::analysis::chi_square_uniform(&census);
        assert!(
            chi.is_uniform_at(0.01),
            "census failed uniformity after an op: {census:?} (p={})",
            chi.p_value
        );
    }
}

/// AO1 — block location is pure arithmetic: a rebuilt engine (fresh
/// process, same seeds, same log) computes identical locations, with no
/// state beyond catalog + log.
#[test]
fn ao1_lookup_is_replayable_from_metadata() {
    let build = || {
        let mut e = Scaddar::new(ScaddarConfig::new(6).with_catalog_seed(44)).unwrap();
        let id = e.add_object(10_000);
        e.scale(ScalingOp::Add { count: 3 }).unwrap();
        e.scale(ScalingOp::Remove { disks: vec![1, 7] }).unwrap();
        e.scale(ScalingOp::Add { count: 1 }).unwrap();
        (e, id)
    };
    let (a, id) = build();
    let (b, _) = build();
    for blk in (0..10_000).step_by(7) {
        assert_eq!(a.locate(id, blk).unwrap(), b.locate(id, blk).unwrap());
    }
    // The metadata truly is tiny (§1's storage claim).
    assert!(a.log().metadata_bytes() < 64);
}

/// §4.1 / Figure 1 — the naive scheme's RO2 violation is real and
/// SCADDAR fixes it: compare the source census of blocks arriving on the
/// newest disk after two additions.
#[test]
fn naive_biases_sources_scaddar_does_not() {
    let keys = synthetic_population(120_000, 5);
    let ops = [ScalingOp::Add { count: 1 }, ScalingOp::Add { count: 1 }];

    let census_of = |stats: &[scaddar::baselines::OpStats]| stats[1].load_census.clone();
    let mut naive = NaiveStrategy::new(4).unwrap();
    let naive_stats = run_schedule(&mut naive, &keys, &ops).unwrap();
    let mut scad = ScaddarStrategy::new(4).unwrap();
    let scad_stats = run_schedule(&mut scad, &keys, &ops).unwrap();

    // Both move near-optimal amounts (RO1 holds for both)...
    assert!((naive_stats[1].moved_fraction() - 1.0 / 6.0).abs() < 0.01);
    assert!((scad_stats[1].moved_fraction() - 1.0 / 6.0).abs() < 0.01);
    // ...but the naive census is visibly skewed and SCADDAR's is not.
    let naive_cov = scaddar::analysis::Summary::of_counts(&census_of(&naive_stats)).cov;
    let scad_cov = scaddar::analysis::Summary::of_counts(&census_of(&scad_stats)).cov;
    assert!(
        naive_cov > 10.0 * scad_cov,
        "naive CoV {naive_cov} should dwarf SCADDAR's {scad_cov}"
    );
}

/// §4.3 — the paper's two rule-of-thumb instances.
#[test]
fn rule_of_thumb_matches_paper_numbers() {
    assert_eq!(rule_of_thumb_max_ops(Bits::B64, 16.0, 0.01), 13);
    assert_eq!(rule_of_thumb_max_ops(Bits::B32, 8.0, 0.05), 8);
}

/// §4.2.1 — both worked examples, through the public API.
#[test]
fn worked_examples_via_public_api() {
    let mut log = ScalingLog::new(6).unwrap();
    log.push(&ScalingOp::remove_one(4)).unwrap();
    // Moved case: X = 28 -> X_j = 4, 4th surviving disk.
    assert_eq!(locate(28, &log), DiskIndex(4));
    // Staying case: X = 41 -> X_j = 34, still the (renumbered) disk 5.
    assert_eq!(locate(41, &log), DiskIndex(4));
    let steps = scaddar::core::trace(41, &log);
    assert_eq!(steps[1].x, 34);
    assert!(!steps[1].moved);
}
