//! # scaddar — SCAling Disks for Data Arranged Randomly
//!
//! A complete, from-scratch reproduction of
//!
//! > Ashish Goel, Cyrus Shahabi, Shu-Yuen Didi Yao, Roger Zimmermann.
//! > *SCADDAR: An Efficient Randomized Technique to Reorganize Continuous
//! > Media Blocks.* USC CS-TR-742 (2001) / ICDE 2002.
//!
//! SCADDAR stores continuous-media blocks pseudo-randomly across a disk
//! array and, when disks are added or removed, computes every block's new
//! location with a chain of cheap `mod`/`div` remaps — moving the
//! *minimum* number of blocks, keeping the load *balanced*, and requiring
//! *no per-block directory*: only the object seeds and a tiny log of
//! scaling operations.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] ([`scaddar_core`]) — the algorithm: `REMAP_j`, `AF()`,
//!   `RF()`, the §4.3 fairness analysis;
//! * [`prng`] ([`scaddar_prng`]) — reproducible seeded generators
//!   (`p_r(s)`) with indexed access;
//! * [`baselines`] ([`scaddar_baselines`]) — everything SCADDAR is
//!   compared against, naive remap to jump consistent hashing;
//! * [`cmsim`] — a round-based continuous-media server simulator with
//!   online redistribution, streams, mirroring, and heterogeneous disks;
//! * [`analysis`] ([`scaddar_analysis`]) — the measurement toolkit.
//!
//! ## Sixty seconds to a scaled server
//!
//! ```
//! use scaddar::prelude::*;
//!
//! // 1. A placement engine on 4 disks (paper defaults: b=32, eps=5%).
//! let mut engine = Scaddar::new(ScaddarConfig::new(4)).unwrap();
//! let movie = engine.add_object(100_000);
//!
//! // 2. Look up any block — no directory, just arithmetic.
//! let disk = engine.locate(movie, 31_337).unwrap();
//! assert!(disk.0 < 4);
//!
//! // 3. Add a disk group. Only ~1/3 of blocks move (the optimum), all
//! //    onto the new disks, and lookups follow automatically.
//! let plan = engine.scale(ScalingOp::Add { count: 2 }).unwrap();
//! assert!((plan.moved_fraction() - 1.0 / 3.0).abs() < 0.01);
//!
//! // 4. The §4.3 guard says how long this can go on before a full
//! //    redistribution is advisable.
//! assert!(engine.next_op_is_safe(7));
//! ```
//!
//! For the full simulated server (streams, bandwidth, online moves), see
//! [`cmsim::CmServer`] and `examples/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cmsim;
pub use scaddar_analysis as analysis;
pub use scaddar_baselines as baselines;
pub use scaddar_core as core;
pub use scaddar_prng as prng;

/// One-stop imports for the common API surface.
pub mod prelude {
    pub use crate::core::{
        locate, plan_last_op, plan_last_op_parallel, rule_of_thumb_max_ops, BlockRef, Catalog,
        DiskIndex, FairnessTracker, MovePlan, ObjectId, RemapPipeline, Scaddar, ScaddarConfig,
        ScaddarError, ScalingLog, ScalingOp, XCache,
    };
    pub use crate::prng::{Bits, BlockRandoms, RngKind};
    pub use cmsim::{CmServer, ServerConfig, Simulation, WorkloadConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let mut engine = Scaddar::new(ScaddarConfig::new(2)).unwrap();
        let obj = engine.add_object(10);
        assert!(engine.locate(obj, 0).unwrap().0 < 2);
        let server = CmServer::new(ServerConfig::new(2)).unwrap();
        assert_eq!(server.disks().disks(), 2);
    }
}
